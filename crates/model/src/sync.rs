//! Instrumented drop-in replacements for the sync primitives the engine
//! uses (`AtomicU64`, `AtomicUsize`, `Mutex`, `RwLock`, fences).
//!
//! Under an active [`Model::check`](crate::Model::check) session, every
//! operation is a schedule point routed through the runtime: the scheduler
//! decides who performs it, atomic histories feed the memory model, and
//! lock waits become blocking edges the deadlock detector sees. Outside a
//! session the wrappers degrade to plain `std` primitives, so the same
//! types work in ordinary unit tests.
//!
//! Every method carries `#[track_caller]`, so schedule traces point at the
//! production source line that performed the operation, not at this shim.
//!
//! Known limitation: `get_mut`/`into_inner` touch the backing cell without
//! a schedule point (they require `&mut`/ownership, so no model thread can
//! race them, but a mutation made through them is invisible to the model's
//! store history). Model tests must drive state through shared references.

// aib-lint: allow-file(atomics-order) — the Relaxed operations here are
// mirror writes into the backing cell, which the model's own store history
// (not the hardware) orders; the audit discipline applies to the production
// code *using* the shim, not to the runtime implementing it.
// aib-lint: allow-file(no-panic) — a model runtime surfaces violations by
// panicking (that is its reporting channel), and `expect` on session state
// encodes scheduler invariants that hold by construction.

use std::panic::Location;
use std::sync::Arc;

use crate::runtime::{self, LockKindPub, Session};

pub use std::sync::atomic::Ordering;

fn session() -> Option<(Arc<Session>, usize)> {
    runtime::current()
}

/// An instrumented 64-bit atomic integer.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    cell: std::sync::atomic::AtomicU64,
}

/// An instrumented pointer-sized atomic integer (modelled in 64 bits).
#[derive(Debug, Default)]
pub struct AtomicUsize {
    cell: std::sync::atomic::AtomicUsize,
}

macro_rules! atomic_impl {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// A new atomic holding `value`.
            #[must_use]
            pub const fn new(value: $prim) -> Self {
                Self {
                    cell: <std::sync::atomic::$name>::new(value),
                }
            }

            fn addr(&self) -> usize {
                std::ptr::from_ref(&self.cell) as usize
            }

            /// The value the newest store left behind (mirror of the model
            /// history); requires exclusive access, so never a race.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.cell.get_mut()
            }

            /// Loads the value; under a model session the memory model
            /// picks which store is observed (see the `runtime` module).
            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $prim {
                let caller = Location::caller();
                if let Some((s, tid)) = session() {
                    let init = self.cell.load(Ordering::Relaxed) as u64;
                    if let Some(v) = s.atomic_load(tid, self.addr(), init, ord, caller) {
                        return v as $prim;
                    }
                }
                self.cell.load(ord)
            }

            /// Stores `value`.
            #[track_caller]
            pub fn store(&self, value: $prim, ord: Ordering) {
                let caller = Location::caller();
                if let Some((s, tid)) = session() {
                    let init = self.cell.load(Ordering::Relaxed) as u64;
                    if s.atomic_store(tid, self.addr(), init, value as u64, ord, caller)
                        .is_some()
                    {
                        // Mirror into the backing cell so teardown-bypass
                        // reads observe the newest modification-order value.
                        self.cell.store(value, Ordering::Relaxed);
                        return;
                    }
                }
                self.cell.store(value, ord);
            }

            /// Swaps in `value`, returning the previous value.
            #[track_caller]
            pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                self.rmw("swap", move |_| value as u64, ord)
            }

            /// Adds `delta`, returning the previous value.
            #[track_caller]
            pub fn fetch_add(&self, delta: $prim, ord: Ordering) -> $prim {
                self.rmw("fetch_add", move |v| v.wrapping_add(delta as u64), ord)
            }

            /// Subtracts `delta`, returning the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, delta: $prim, ord: Ordering) -> $prim {
                self.rmw("fetch_sub", move |v| v.wrapping_sub(delta as u64), ord)
            }

            /// Stores the maximum of the current value and `value`,
            /// returning the previous value.
            #[track_caller]
            pub fn fetch_max(&self, value: $prim, ord: Ordering) -> $prim {
                self.rmw("fetch_max", move |v| v.max(value as u64), ord)
            }

            #[track_caller]
            fn rmw(&self, what: &str, f: impl Fn(u64) -> u64, ord: Ordering) -> $prim {
                let caller = Location::caller();
                if let Some((s, tid)) = session() {
                    let init = self.cell.load(Ordering::Relaxed) as u64;
                    let mut new = 0u64;
                    let g = |v: u64| {
                        new = f(v);
                        new
                    };
                    if let Some(old) = s.atomic_rmw(tid, self.addr(), init, what, g, ord, caller) {
                        self.cell.store(new as $prim, Ordering::Relaxed);
                        return old as $prim;
                    }
                    // Teardown bypass: apply directly to the backing cell.
                    let old = self.cell.load(Ordering::Relaxed);
                    self.cell.store(f(old as u64) as $prim, Ordering::Relaxed);
                    return old;
                }
                // No session: a CAS loop on the backing cell serves every
                // operator (swap included: its closure ignores the input).
                let mut cur = self.cell.load(Ordering::Relaxed);
                loop {
                    let next = f(cur as u64) as $prim;
                    match self
                        .cell
                        .compare_exchange_weak(cur, next, ord, Ordering::Relaxed)
                    {
                        Ok(prev) => return prev,
                        Err(actual) => cur = actual,
                    }
                }
            }

            /// Compare-and-exchange; the model always operates on the
            /// newest store (C11 modification order).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                expect: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let caller = Location::caller();
                if let Some((s, tid)) = session() {
                    let init = self.cell.load(Ordering::Relaxed) as u64;
                    if let Some(r) = s.atomic_cas(
                        tid,
                        self.addr(),
                        init,
                        expect as u64,
                        new as u64,
                        success,
                        failure,
                        caller,
                    ) {
                        if r.is_ok() {
                            self.cell.store(new, Ordering::Relaxed);
                        }
                        return r.map(|v| v as $prim).map_err(|v| v as $prim);
                    }
                }
                self.cell.compare_exchange(expect, new, success, failure)
            }

            /// Like [`compare_exchange`](Self::compare_exchange); the model
            /// does not inject spurious failures (callers loop anyway, so
            /// spurious failure adds schedules, not behaviours).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                expect: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(expect, new, success, failure)
            }
        }
    };
}

atomic_impl!(AtomicU64, u64);
atomic_impl!(AtomicUsize, usize);

/// An atomic fence. Under the model this is a schedule point that carries
/// **no ordering** (nothing in the checked protocols uses fences; a
/// protocol that needs them must extend the runtime first — the trace
/// says so out loud).
#[track_caller]
pub fn fence(ord: Ordering) {
    let caller = Location::caller();
    if let Some((s, tid)) = session() {
        s.fence(tid, ord, caller);
        return;
    }
    std::sync::atomic::fence(ord);
}

fn unpoison_lock<'a, T>(
    r: Result<std::sync::MutexGuard<'a, T>, std::sync::PoisonError<std::sync::MutexGuard<'a, T>>>,
) -> std::sync::MutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An instrumented mutex with the `parking_lot` calling convention
/// (`lock()` returns the guard directly; poisoning is swallowed).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; release is a schedule point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    // Option so Drop can release the real lock *after* the model release.
    guard: Option<std::sync::MutexGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Mutex<T> {
    /// A new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquires the mutex, blocking (in model time) until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let caller = Location::caller();
        let scheduled = match session() {
            Some((s, tid)) => s.lock_acquire(tid, self.addr(), LockKindPub::Mutex, true, caller),
            None => false,
        };
        // The model grants the lock exclusively before we touch the real
        // mutex, so this cannot block except momentarily during teardown.
        let guard = unpoison_lock(self.inner.lock());
        MutexGuard {
            lock: self,
            guard: Some(guard),
            scheduled,
        }
    }

    /// Mutable access without locking; requires `&mut`, so no model thread
    /// can race it.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if self.scheduled {
            if let Some((s, tid)) = session() {
                s.lock_release(tid, self.lock.addr(), true, Location::caller());
            }
        }
        self.guard = None;
    }
}

fn unpoison_read<'a, T>(
    r: Result<
        std::sync::RwLockReadGuard<'a, T>,
        std::sync::PoisonError<std::sync::RwLockReadGuard<'a, T>>,
    >,
) -> std::sync::RwLockReadGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn unpoison_write<'a, T>(
    r: Result<
        std::sync::RwLockWriteGuard<'a, T>,
        std::sync::PoisonError<std::sync::RwLockWriteGuard<'a, T>>,
    >,
) -> std::sync::RwLockWriteGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An instrumented reader-writer lock with the `parking_lot` calling
/// convention.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    scheduled: bool,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    scheduled: bool,
}

impl<T> RwLock<T> {
    /// A new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquires a shared (read) guard.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let caller = Location::caller();
        let scheduled = match session() {
            Some((s, tid)) => s.lock_acquire(tid, self.addr(), LockKindPub::RwLock, false, caller),
            None => false,
        };
        let guard = unpoison_read(self.inner.read());
        RwLockReadGuard {
            lock: self,
            guard: Some(guard),
            scheduled,
        }
    }

    /// Acquires an exclusive (write) guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let caller = Location::caller();
        let scheduled = match session() {
            Some((s, tid)) => s.lock_acquire(tid, self.addr(), LockKindPub::RwLock, true, caller),
            None => false,
        };
        let guard = unpoison_write(self.inner.write());
        RwLockWriteGuard {
            lock: self,
            guard: Some(guard),
            scheduled,
        }
    }

    /// Mutable access without locking; requires `&mut`, so no model thread
    /// can race it.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if self.scheduled {
            if let Some((s, tid)) = session() {
                s.lock_release(tid, self.lock.addr(), false, Location::caller());
            }
        }
        self.guard = None;
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if self.scheduled {
            if let Some((s, tid)) = session() {
                s.lock_release(tid, self.lock.addr(), true, Location::caller());
            }
        }
        self.guard = None;
    }
}
