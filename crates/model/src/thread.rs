//! Model-aware thread spawn/join.
//!
//! Inside a [`Model::check`](crate::Model::check) session, [`spawn`]
//! registers the child with the scheduler: `spawn` is a schedule point
//! carrying a happens-before edge into the child, the child's sync
//! operations are interleaved under scheduler control, and
//! [`JoinHandle::join`] blocks (in model time) until the child finishes,
//! joining its clock. Outside a session both degrade to `std::thread`.

// aib-lint: allow-file(no-panic) — spawn/join failures inside the model
// runtime are scheduler invariant breaches; panicking is the runtime's
// reporting channel.

use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::Arc;

use crate::runtime;

/// Handle returned by [`spawn`].
pub struct JoinHandle {
    /// Model thread id when spawned under a session.
    model_tid: Option<usize>,
    /// Real handle when spawned outside a session (under a session the
    /// real handle is owned by the session and joined at execution end).
    real: Option<std::thread::JoinHandle<()>>,
}

/// Spawns a model thread running `f`.
///
/// # Panics
/// When the per-execution thread cap ([`crate::runtime::MAX_THREADS`]) is
/// exceeded, or (outside a session) when the OS refuses the thread.
#[track_caller]
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let caller = Location::caller();
    if let Some((session, tid)) = runtime::current() {
        let child = session.register_child(tid, caller);
        let sess = Arc::clone(&session);
        let real = std::thread::Builder::new()
            .name(format!("aib-model-t{child}"))
            .spawn(move || {
                runtime::install_current(Arc::clone(&sess), child);
                let outcome = catch_unwind(AssertUnwindSafe(f));
                if let Err(payload) = outcome {
                    sess.record_thread_panic(child, payload);
                }
                sess.finish_thread(child);
            })
            .expect("failed to spawn model thread");
        session.adopt_handle(real);
        return JoinHandle {
            model_tid: Some(child),
            real: None,
        };
    }
    let real = std::thread::spawn(f);
    JoinHandle {
        model_tid: None,
        real: Some(real),
    }
}

impl JoinHandle {
    /// Waits for the thread to finish.
    ///
    /// # Panics
    /// Outside a session, propagates the child's panic (like
    /// `std::thread::JoinHandle::join().unwrap()`).
    #[track_caller]
    pub fn join(mut self) {
        let caller = Location::caller();
        if let Some(target) = self.model_tid {
            if let Some((session, tid)) = runtime::current() {
                session.join_thread(tid, target, caller);
                return;
            }
            return;
        }
        if let Some(real) = self.real.take() {
            if let Err(payload) = real.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}
