//! Distilled models of engine protocols that live above the `aib_core`
//! layer (WAL commit ordering, engine lock ordering).
//!
//! The snapshot, deferred-drain, and budget protocols are model-checked
//! directly against the production code in `aib-core`/`aib-storage`
//! (compiled onto the instrumented shim under `cfg(aib_model)`). The WAL
//! and lock-order protocols involve disk I/O and the whole engine stack,
//! so the model checks these distilled skeletons instead: each mirrors the
//! exact lock/atomic structure of `crates/engine/src/db.rs` with the I/O
//! replaced by counters, and DESIGN §7 cross-links each skeleton to the
//! production code lines it stands in for.
//!
//! Each skeleton carries a seeded-bug arm under `cfg(model_seeded_bug =
//! "...")` — a deliberately wrong variant the checker must catch, proving
//! the model is not vacuous.

use crate::sync::{AtomicU64, Mutex, Ordering, RwLock};

/// Skeleton of the WAL commit protocol: `Database` applies a mutation in
/// memory and appends the corresponding WAL record under one durability
/// critical section, so any observer holding the durability lock (the
/// checkpointer, recovery) sees `logged >= applied` — write-ahead in the
/// literal sense: no applied mutation can be missing from the log.
///
/// Seeded bug `wal_unlocked_log` moves the append outside the critical
/// section (apply publishes, log lags), which lets a checkpoint observe an
/// applied-but-unlogged mutation — exactly the crash-window bug a WAL
/// exists to prevent.
#[derive(Debug, Default)]
pub struct WalModel {
    /// Records appended to the log.
    logged: AtomicU64,
    /// Mutations applied to the in-memory space.
    applied: AtomicU64,
    /// The durability lock (`Database::durability` in the engine).
    durability: Mutex<()>,
}

impl WalModel {
    /// An empty WAL model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// One committed mutation: append the WAL record, then apply, both
    /// under the durability lock.
    pub fn commit(&self) {
        #[cfg(not(model_seeded_bug = "wal_unlocked_log"))]
        {
            let _durability = self.durability.lock();
            self.logged.fetch_add(1, Ordering::AcqRel);
            self.applied.fetch_add(1, Ordering::AcqRel);
        }
        #[cfg(model_seeded_bug = "wal_unlocked_log")]
        {
            // WRONG: the apply is published inside the critical section but
            // the log append happens after it is released, so a checkpoint
            // can run in between and see applied > logged.
            {
                let _durability = self.durability.lock();
                self.applied.fetch_add(1, Ordering::AcqRel);
            }
            self.logged.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// A checkpoint-style observation under the durability lock; returns
    /// `(logged, applied)`.
    #[must_use]
    pub fn checkpoint(&self) -> (u64, u64) {
        let _durability = self.durability.lock();
        let logged = self.logged.load(Ordering::Acquire);
        let applied = self.applied.load(Ordering::Acquire);
        (logged, applied)
    }
}

/// Skeleton of the multi-shard lock-ordering discipline: `write_all` /
/// `sync_all` in `ShardedSpace` take shard locks in **ascending index
/// order**, which is what makes concurrent whole-space operations
/// deadlock-free.
///
/// Seeded bug `abba_shard_locks` reverses the order in `sync_all`,
/// producing the classic ABBA deadlock the runtime's wait-for analysis
/// must report.
#[derive(Debug, Default)]
pub struct ShardPair {
    shard0: RwLock<u64>,
    shard1: RwLock<u64>,
}

impl ShardPair {
    /// A two-shard skeleton with zeroed contents.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whole-space write: ascending lock order, bump both shards.
    pub fn write_all(&self) {
        let mut s0 = self.shard0.write();
        let mut s1 = self.shard1.write();
        *s0 += 1;
        *s1 += 1;
    }

    /// Whole-space sync: must use the same ascending order as
    /// [`write_all`](Self::write_all); returns the shard totals.
    #[must_use]
    pub fn sync_all(&self) -> (u64, u64) {
        #[cfg(not(model_seeded_bug = "abba_shard_locks"))]
        {
            let s0 = self.shard0.write();
            let s1 = self.shard1.write();
            (*s0, *s1)
        }
        #[cfg(model_seeded_bug = "abba_shard_locks")]
        {
            // WRONG: descending order — concurrent write_all (holding
            // shard0, wanting shard1) and sync_all (holding shard1,
            // wanting shard0) deadlock.
            let s1 = self.shard1.write();
            let s0 = self.shard0.write();
            (*s0, *s1)
        }
    }
}

/// Skeleton of the group-commit leader/follower handoff
/// (`crates/engine/src/commit.rs`): writers stage a frame (ticket) and then
/// wait; a follower whose ticket is already covered acks off the published
/// atomic watermark without touching the WAL mutex (the lock-free fast
/// path that lets covered writers stage their next commit while a leader
/// lingers), while the first waiter to find its ticket not yet durable
/// takes the mutex and becomes the leader: it "fsyncs" the staged batch
/// (modeled as an atomic the mutex does not guard — bytes on the platter)
/// and only then publishes the durable watermark. The protocol's
/// happens-before obligation: whichever path a follower acks on, the
/// covering fsync must already have landed — `fsynced >= ticket`.
///
/// Seeded bug `commit_ack_before_fsync` publishes the watermark first and
/// fsyncs after releasing the mutex, so a follower can ack a commit whose
/// bytes are still in flight — the silent-data-loss bug group commit must
/// never introduce.
#[derive(Debug, Default)]
pub struct CommitQueueModel {
    /// Highest ticket staged on the commit queue.
    staged: AtomicU64,
    /// Highest ticket covered by a completed fsync. Deliberately *not*
    /// guarded by the WAL mutex: it models the platter, which the OS
    /// mutates during `sync_data`, not the leader's bookkeeping.
    fsynced: AtomicU64,
    /// The published durable watermark — the lock-free ack gate
    /// (`CommitPipeline::clean_durable`).
    durable: AtomicU64,
    /// The WAL mutex guarding the leader's bookkeeping (`WalState`).
    wal: Mutex<u64>,
}

impl CommitQueueModel {
    /// An empty commit-queue model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages one frame, returning its ticket.
    pub fn stage(&self) -> u64 {
        self.staged.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Waits until `ticket` is durable, leading the batch if this thread
    /// finds it undone. Returns the fsync watermark observed **at ack
    /// time** — the checked invariant is `ack >= ticket`.
    pub fn wait_durable(&self, ticket: u64) -> u64 {
        loop {
            // Lock-free ack fast path: a covered follower never takes the
            // WAL mutex (mirrors `CommitPipeline::wait_durable`).
            if self.durable.load(Ordering::Acquire) >= ticket {
                return self.fsynced.load(Ordering::Acquire);
            }
            let mut durable_seq = self.wal.lock();
            if *durable_seq >= ticket {
                // Ack: the follower returns to its caller here.
                return self.fsynced.load(Ordering::Acquire);
            }
            // Leader turn: drain everything staged, fsync it, publish.
            let batch_end = self.staged.load(Ordering::Acquire);
            #[cfg(not(model_seeded_bug = "commit_ack_before_fsync"))]
            {
                // The fsync completes before either watermark moves; the
                // atomic store (and the mutex release) is the follower's
                // wake-up.
                self.fsynced.store(batch_end, Ordering::Release);
                *durable_seq = batch_end;
                self.durable.store(batch_end, Ordering::Release);
            }
            #[cfg(model_seeded_bug = "commit_ack_before_fsync")]
            {
                // WRONG: the watermarks move (and the mutex wakes
                // followers) while the fsync is still in flight — a
                // follower can ack with fsynced < ticket.
                *durable_seq = batch_end;
                self.durable.store(batch_end, Ordering::Release);
                drop(durable_seq);
                self.fsynced.store(batch_end, Ordering::Release);
            }
        }
    }
}
