//! `aib-model` — a zero-dependency, loom-style deterministic schedule
//! explorer for the engine's lock-free protocols.
//!
//! PR 6 made the hot read path lock-free (epoch-stamped snapshots
//! validated against Release-published shard epochs); stress tests
//! exercise that protocol but cannot *enumerate* its interleavings. This
//! crate can, within bounds: a model is a closure spawning
//! [`thread`]-module threads that exercise [`sync`]-module primitives, and
//! [`Model::check`] runs it under every thread interleaving a
//! bounded-preemption DFS reaches, tracking happens-before from
//! Acquire/Release edges so stale reads, lost updates, and deadlocks
//! surface as violations with a replayable schedule trace.
//!
//! The production crates reach these primitives through the sync shim
//! (`aib_core::sync`): plain `std`/`parking_lot` in normal builds, this
//! crate's instrumented runtime under `cfg(aib_model)`. The model harness
//! (`tests/harness.rs`) drives the `cfg(aib_model)` builds, including a
//! seeded-bug corpus (`cfg(model_seeded_bug = "...")`) of deliberately
//! wrong protocol variants the checker must catch.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use aib_model::{sync::{AtomicU64, Ordering}, thread, Model};
//!
//! Model::new("counter").check(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::AcqRel);
//!     });
//!     n.fetch_add(1, Ordering::AcqRel);
//!     t.join();
//!     assert_eq!(n.load(Ordering::Acquire), 2);
//! });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod runtime;

pub mod protocols;
pub mod sync;
pub mod thread;

pub use runtime::{Model, Report, Violation, MAX_THREADS};
