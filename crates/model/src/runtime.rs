//! The schedule-exploring execution engine.
//!
//! [`Model::check`] runs a closure-per-thread concurrency model over and
//! over, each time under a different thread interleaving, until either the
//! bounded-preemption DFS exhausts the schedule space or an execution
//! fails. Threads are real OS threads, but only **one runs at a time**: a
//! token is handed from operation to operation by an explicit scheduler
//! decision, so every execution is a deterministic function of its
//! *schedule* — the sequence of decisions — and any failure can be replayed
//! from the printed schedule string alone.
//!
//! # Memory model
//!
//! Atomic histories are tracked per location as a vector of stores, each
//! stamped with the writing thread's vector clock. The observability rule a
//! load obeys is deliberately **stronger than C11** and is documented here
//! because the seeded-bug corpus depends on it being exactly this:
//!
//! * A load may never observe a store older than the newest one
//!   happened-before the loading thread, nor older than the newest one this
//!   thread has already observed at the location (per-location coherence).
//! * A `Release`-or-stronger store becomes **promptly visible**: once it
//!   executes, every later `Acquire`-or-stronger load of that location
//!   reads it (or something newer). This mirrors the promptness of real
//!   hardware (store buffers drain in nanoseconds) and makes ordering
//!   *downgrades* honestly detectable: demote a `Release` store or an
//!   `Acquire` load to `Relaxed` and the load may now legally observe any
//!   sufficiently recent stale value — exactly the window the DFS then
//!   drives an assertion through.
//! * A `Relaxed` store may lag: until something orders it, loads choose
//!   *any* observable value, and each choice is a scheduling branch the
//!   DFS explores.
//! * Read-modify-writes always operate on the newest store (C11's
//!   modification-order rule), so CAS loops cannot act on phantoms.
//!
//! The trade-off is stated plainly: the model over-synchronises `Release`
//! stores (a bug whose window is the latency of a release store on real
//! hardware is out of scope); in exchange, correct `Acquire`/`Release`
//! protocols verify with no false alarms and every seeded downgrade is
//! caught. Fences are schedule points but carry no ordering (nothing in
//! the checked protocols uses them; a protocol that needs fences must
//! extend the runtime first).
//!
//! # Locks
//!
//! Model [`Mutex`](crate::sync::Mutex)/[`RwLock`](crate::sync::RwLock)
//! acquisition and release are schedule points; blocking parks the thread
//! until a release makes it runnable. When no thread is runnable and not
//! all have finished, the execution is reported as a **deadlock** with the
//! full wait-for picture. Lock acquisition joins the lock's release clock
//! (acquire/release edges), so lock-protected data is always ordered.

// aib-lint: allow-file(no-index) — the runtime indexes its own dense
// per-thread and per-store vectors with ids it allocated itself; a slip is
// a checker bug and a loud panic here is strictly better than a silent
// wrong exploration.
// aib-lint: allow-file(no-panic) — panicking IS this crate's reporting
// channel: violations surface as panics that carry the replayable
// schedule, and poisoned internal locks are recovered via `into_inner`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Hard cap on model threads per execution; vector clocks are fixed-width
/// arrays of this many lamport counters.
pub const MAX_THREADS: usize = 8;

/// Panic payload used to tear down secondary threads once a failure is
/// recorded; never reported as a violation itself.
struct AbortExecution;

/// A vector clock: one Lamport counter per model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct VClock {
    t: [u32; MAX_THREADS],
}

impl VClock {
    fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.t[i] = self.t[i].max(other.t[i]);
        }
    }

    /// True when every component of `self` is at least `other`'s — i.e.
    /// the event stamped `other` happened-before the holder of `self`.
    fn dominates(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.t[i] >= other.t[i])
    }

    fn tick(&mut self, tid: usize) {
        self.t[tid] += 1;
    }
}

/// One entry in a location's modification order.
struct StoreRecord {
    value: u64,
    /// The writer's vector clock at the store (after its tick).
    clock: VClock,
    /// Whether the store was `Release`-class (`Release`/`AcqRel`/`SeqCst`).
    release: bool,
}

struct LocationState {
    /// Small dense id for traces ("a0", "a1", ...).
    id: usize,
    /// Modification order; index 0 is the initial value.
    stores: Vec<StoreRecord>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LockKind {
    Mutex,
    RwLock,
}

struct LockState {
    id: usize,
    kind: LockKind,
    writer: Option<usize>,
    readers: Vec<usize>,
    /// Joined by every acquirer: carries release→acquire happens-before.
    release_clock: VClock,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockedOn {
    /// Waiting for a lock (by state-map key); `true` = write intent.
    Lock(usize, bool),
    /// Waiting for a thread to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// Set by a scheduler decision: this thread performs the next step.
    granted: bool,
    /// Per-location floor on observable stores (read-read coherence).
    seen: HashMap<usize, usize>,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState {
            status: Status::Runnable,
            clock,
            granted: false,
            seen: HashMap::new(),
        }
    }
}

/// One scheduler decision. The schedule — the decision sequence — fully
/// determines an execution; `alternatives` holds the not-yet-explored
/// siblings the DFS will come back for.
#[derive(Clone, Debug)]
enum Decision {
    /// Which thread performs the next operation.
    Thread {
        chosen: usize,
        alternatives: Vec<usize>,
    },
    /// Which store (by modification-order index) a load observes.
    Value {
        chosen: usize,
        alternatives: Vec<usize>,
    },
}

impl Decision {
    fn token(&self) -> String {
        match self {
            Decision::Thread { chosen, .. } => format!("t{chosen}"),
            Decision::Value { chosen, .. } => format!("v{chosen}"),
        }
    }
}

/// A detected violation, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The panic message or deadlock description.
    pub message: String,
    /// Comma-separated decision tokens; feed back via `AIB_MODEL_SCHEDULE`.
    pub schedule: String,
    /// Human-readable step-by-step trace of the failing execution.
    pub trace: Vec<String>,
}

/// Outcome of [`Model::check_report`].
#[derive(Debug)]
pub struct Report {
    /// Executions (schedules) run.
    pub executions: usize,
    /// Whether the bounded schedule space was exhausted.
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
}

struct ExecState {
    threads: Vec<ThreadState>,
    locations: HashMap<usize, LocationState>,
    locks: HashMap<usize, LockState>,
    next_loc_id: usize,
    next_lock_id: usize,
    /// Replayed prefix plus decisions appended by this execution.
    schedule: Vec<Decision>,
    cursor: usize,
    preemptions: usize,
    /// Thread that performed the most recent operation.
    last_ran: usize,
    /// Thread that owns the decision duty (it just ran user code and will
    /// decide at its next arrival); `None` while a grant is outstanding.
    token: Option<usize>,
    step: usize,
    trace: Vec<String>,
    failure: Option<Violation>,
    max_preemptions: usize,
    max_steps: usize,
}

impl ExecState {
    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn schedule_string(&self) -> String {
        let tokens: Vec<String> = self.schedule.iter().map(Decision::token).collect();
        tokens.join(",")
    }

    fn push_trace(&mut self, tid: usize, what: String, caller: &Location<'_>) {
        self.step += 1;
        let step = self.step;
        self.trace.push(format!(
            "step {step:>3}: t{tid} {what}  [{}]",
            short_loc(caller)
        ));
    }

    fn record_failure(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Violation {
                message,
                schedule: self.schedule_string(),
                trace: self.trace.clone(),
            });
        }
    }
}

fn short_loc(caller: &Location<'_>) -> String {
    let file = caller.file();
    let tail: Vec<&str> = file.rsplit(['/', '\\']).take(2).collect();
    let mut parts: Vec<&str> = tail.into_iter().rev().collect();
    if parts.is_empty() {
        parts.push(file);
    }
    format!("{}:{}", parts.join("/"), caller.line())
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

pub(crate) struct Session {
    state: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Session>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn set_current(v: Option<(Arc<Session>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Binds the calling OS thread to a model thread id for the session's
/// lifetime (used by [`crate::thread::spawn`]'s child wrapper).
pub(crate) fn install_current(session: Arc<Session>, tid: usize) {
    set_current(Some((session, tid)));
}

pub(crate) fn current() -> Option<(Arc<Session>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Session {
    fn new(schedule: Vec<Decision>, max_preemptions: usize, max_steps: usize) -> Self {
        let threads = vec![ThreadState::new(VClock::default())];
        Session {
            state: Mutex::new(ExecState {
                threads,
                locations: HashMap::new(),
                locks: HashMap::new(),
                next_loc_id: 0,
                next_lock_id: 0,
                schedule,
                cursor: 0,
                preemptions: 0,
                last_ran: 0,
                token: Some(0),
                step: 0,
                trace: Vec::new(),
                failure: None,
                max_preemptions,
                max_steps,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Blocks thread `tid` until a scheduler decision grants it the next
    /// operation, making that decision itself when it holds the token.
    /// Returns the state guard to perform the operation under, or `None`
    /// when a failure is already recorded and the caller is unwinding (the
    /// operation then bypasses the scheduler so teardown cannot wedge).
    fn arrive(&self, tid: usize) -> Option<MutexGuard<'_, ExecState>> {
        let mut st = unpoison(self.state.lock());
        loop {
            if st.failure.is_some() {
                drop(st);
                if std::thread::panicking() {
                    return None;
                }
                std::panic::panic_any(AbortExecution);
            }
            if st.threads[tid].granted {
                st.threads[tid].granted = false;
                st.token = Some(tid);
                st.last_ran = tid;
                return Some(st);
            }
            if st.token == Some(tid) {
                st.token = None;
                self.decide(&mut st);
                continue;
            }
            st = unpoison(self.cv.wait(st));
        }
    }

    /// Picks the thread that performs the next operation (replaying the
    /// schedule prefix, then extending it under the preemption bound),
    /// grants it, and wakes everyone. Detects deadlock and termination.
    ///
    /// Single-choice points (exactly one runnable thread) are granted
    /// without recording a decision — the schedule only contains genuine
    /// branches, which keeps replay strings short and the DFS frontier
    /// tight.
    fn decide(&self, st: &mut ExecState) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if !st.all_finished() {
                let picture = self.deadlock_picture(st);
                st.record_failure(format!("deadlock: no runnable thread\n{picture}"));
            }
            self.cv.notify_all();
            return;
        }
        if runnable.len() == 1 {
            let only = runnable[0];
            st.threads[only].granted = true;
            self.cv.notify_all();
            return;
        }
        let prev = st.last_ran;
        let prev_runnable = st.threads[prev].status == Status::Runnable;
        let chosen = if st.cursor < st.schedule.len() {
            match &st.schedule[st.cursor] {
                Decision::Thread { chosen, .. } => *chosen,
                Decision::Value { .. } => {
                    st.record_failure(
                        "schedule desync: thread decision expected (checker bug)".to_string(),
                    );
                    self.cv.notify_all();
                    return;
                }
            }
        } else {
            let default = if prev_runnable { prev } else { runnable[0] };
            let budget_left = st.preemptions < st.max_preemptions;
            let alternatives: Vec<usize> = runnable
                .iter()
                .copied()
                .filter(|&t| t != default)
                // Switching away from a still-runnable thread is a
                // preemption and must fit the bound; a forced switch (the
                // previous thread blocked or finished) is free.
                .filter(|_| !prev_runnable || budget_left)
                .collect();
            st.schedule.push(Decision::Thread {
                chosen: default,
                alternatives,
            });
            default
        };
        st.cursor += 1;
        if chosen != prev && prev_runnable {
            st.preemptions += 1;
        }
        debug_assert!(st.threads[chosen].status == Status::Runnable);
        st.threads[chosen].granted = true;
        self.cv.notify_all();
    }

    /// Consumes one value decision: which of `observable` (modification-
    /// order indices) the load reads. Single-choice loads record nothing,
    /// mirroring [`decide`](Self::decide).
    fn decide_value(&self, st: &mut ExecState, observable: &[usize]) -> usize {
        if observable.len() == 1 {
            return observable[0];
        }
        let chosen = if st.cursor < st.schedule.len() {
            match &st.schedule[st.cursor] {
                Decision::Value { chosen, .. } => *chosen,
                Decision::Thread { .. } => {
                    // Desync would mean non-deterministic replay; fail loud.
                    st.record_failure(
                        "schedule desync: value decision expected (checker bug)".to_string(),
                    );
                    *observable.last().unwrap_or(&0)
                }
            }
        } else {
            let newest = *observable.last().expect("observable set never empty");
            let alternatives: Vec<usize> = observable
                .iter()
                .copied()
                .filter(|&i| i != newest)
                .collect();
            st.schedule.push(Decision::Value {
                chosen: newest,
                alternatives,
            });
            newest
        };
        st.cursor += 1;
        chosen
    }

    fn deadlock_picture(&self, st: &ExecState) -> String {
        let mut lines = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            let what = match t.status {
                Status::Runnable => continue,
                Status::Finished => continue,
                Status::Blocked(BlockedOn::Join(target)) => {
                    format!("blocked joining t{target}")
                }
                Status::Blocked(BlockedOn::Lock(key, write)) => {
                    let lock = &st.locks[&key];
                    let holder = match lock.writer {
                        Some(w) => format!("write-held by t{w}"),
                        None => format!("read-held by {:?}", lock.readers),
                    };
                    let intent = if write { "write" } else { "read" };
                    format!(
                        "blocked on {:?} L{} ({intent}), {holder}",
                        lock.kind, lock.id
                    )
                }
            };
            lines.push(format!("  t{tid}: {what}"));
        }
        lines.join("\n")
    }

    fn location_entry(st: &mut ExecState, addr: usize, init: u64) -> &mut LocationState {
        let next_id = st.next_loc_id;
        let entry = st.locations.entry(addr).or_insert_with(|| LocationState {
            id: next_id,
            stores: vec![StoreRecord {
                value: init,
                clock: VClock::default(),
                release: false,
            }],
        });
        if entry.id == next_id {
            st.next_loc_id += 1;
        }
        entry
    }

    fn check_step_budget(&self, st: &mut ExecState) {
        if st.step > st.max_steps {
            st.record_failure(format!(
                "step budget exceeded ({} steps): livelock or unbounded retry loop",
                st.max_steps
            ));
            self.cv.notify_all();
        }
    }

    // ---- atomic operations ---------------------------------------------

    /// A load: picks an observable store per the memory model (see module
    /// docs), branching the DFS when more than one is observable.
    pub(crate) fn atomic_load(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        init: u64,
        ord: Ordering,
        caller: &Location<'_>,
    ) -> Option<u64> {
        let mut st = self.arrive(tid)?;
        let loc_id;
        let observable: Vec<usize>;
        {
            let clock = st.threads[tid].clock;
            let seen = st.threads[tid].seen.get(&addr).copied().unwrap_or(0);
            let loc = Self::location_entry(&mut st, addr, init);
            loc_id = loc.id;
            let newest = loc.stores.len() - 1;
            let mut lo = (0..=newest)
                .rev()
                .find(|&i| clock.dominates(&loc.stores[i].clock))
                .unwrap_or(0)
                .max(seen);
            if is_acquire(ord) {
                // Prompt visibility of Release-class stores (see module
                // docs): an Acquire load never reads past the newest one.
                let newest_release = (0..=newest).rev().find(|&i| loc.stores[i].release);
                if let Some(r) = newest_release {
                    lo = lo.max(r);
                }
            }
            observable = (lo..=newest).collect();
        }
        let chosen = self.decide_value(&mut st, &observable);
        let (value, release, store_clock) = {
            let loc = st.locations.get(&addr).expect("location just touched");
            let rec = &loc.stores[chosen];
            (rec.value, rec.release, rec.clock)
        };
        if is_acquire(ord) && release {
            st.threads[tid].clock.join(&store_clock);
        }
        st.threads[tid].seen.insert(addr, chosen);
        let newest = st.locations[&addr].stores.len() - 1;
        let stale = if chosen < newest {
            format!(" (stale: {} newer store(s) unobserved)", newest - chosen)
        } else {
            String::new()
        };
        st.push_trace(
            tid,
            format!("a{loc_id}.load({ord:?}) -> {value}{stale}"),
            caller,
        );
        self.check_step_budget(&mut st);
        Some(value)
    }

    pub(crate) fn atomic_store(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        init: u64,
        value: u64,
        ord: Ordering,
        caller: &Location<'_>,
    ) -> Option<()> {
        let mut st = self.arrive(tid)?;
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock;
        let loc = Self::location_entry(&mut st, addr, init);
        let loc_id = loc.id;
        loc.stores.push(StoreRecord {
            value,
            clock,
            release: is_release(ord),
        });
        let idx = loc.stores.len() - 1;
        st.threads[tid].seen.insert(addr, idx);
        st.push_trace(tid, format!("a{loc_id}.store({value}, {ord:?})"), caller);
        self.check_step_budget(&mut st);
        Some(())
    }

    /// A read-modify-write: always reads the newest store (modification
    /// order), applies `f`, and appends the result.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_rmw(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        init: u64,
        what: &str,
        f: impl FnOnce(u64) -> u64,
        ord: Ordering,
        caller: &Location<'_>,
    ) -> Option<u64> {
        let mut st = self.arrive(tid)?;
        let (old, was_release, old_clock) = {
            let loc = Self::location_entry(&mut st, addr, init);
            let rec = loc.stores.last().expect("history never empty");
            (rec.value, rec.release, rec.clock)
        };
        if is_acquire(ord) && was_release {
            st.threads[tid].clock.join(&old_clock);
        }
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock;
        let new = f(old);
        let loc = Self::location_entry(&mut st, addr, init);
        let loc_id = loc.id;
        loc.stores.push(StoreRecord {
            value: new,
            clock,
            release: is_release(ord),
        });
        let idx = loc.stores.len() - 1;
        st.threads[tid].seen.insert(addr, idx);
        st.push_trace(
            tid,
            format!("a{loc_id}.{what}({ord:?}) {old} -> {new}"),
            caller,
        );
        self.check_step_budget(&mut st);
        Some(old)
    }

    /// Compare-exchange: reads the newest store; on mismatch acts as a
    /// load with the failure ordering. No spurious failures are modelled
    /// (callers loop anyway; spurious failure adds schedules, not
    /// behaviours).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        init: u64,
        expect: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        caller: &Location<'_>,
    ) -> Option<Result<u64, u64>> {
        let mut st = self.arrive(tid)?;
        let (old, was_release, old_clock) = {
            let loc = Self::location_entry(&mut st, addr, init);
            let rec = loc.stores.last().expect("history never empty");
            (rec.value, rec.release, rec.clock)
        };
        let result = if old == expect {
            if is_acquire(success) && was_release {
                st.threads[tid].clock.join(&old_clock);
            }
            st.threads[tid].clock.tick(tid);
            let clock = st.threads[tid].clock;
            let loc = Self::location_entry(&mut st, addr, init);
            let loc_id = loc.id;
            loc.stores.push(StoreRecord {
                value: new,
                clock,
                release: is_release(success),
            });
            let idx = loc.stores.len() - 1;
            st.threads[tid].seen.insert(addr, idx);
            st.push_trace(
                tid,
                format!("a{loc_id}.compare_exchange {old} -> {new} (ok)"),
                caller,
            );
            Ok(old)
        } else {
            if is_acquire(failure) && was_release {
                st.threads[tid].clock.join(&old_clock);
            }
            let loc = Self::location_entry(&mut st, addr, init);
            let loc_id = loc.id;
            let idx = loc.stores.len() - 1;
            st.threads[tid].seen.insert(addr, idx);
            st.push_trace(
                tid,
                format!("a{loc_id}.compare_exchange expected {expect}, found {old} (err)"),
                caller,
            );
            Err(old)
        };
        self.check_step_budget(&mut st);
        Some(result)
    }

    pub(crate) fn fence(self: &Arc<Self>, tid: usize, ord: Ordering, caller: &Location<'_>) {
        let Some(mut st) = self.arrive(tid) else {
            return;
        };
        st.push_trace(
            tid,
            format!("fence({ord:?}) [no ordering modelled]"),
            caller,
        );
        self.check_step_budget(&mut st);
    }

    // ---- lock operations -----------------------------------------------

    /// Acquire loop shared by mutex lock / rwlock read / rwlock write.
    /// Returns `false` when the session is tearing down (bypass mode).
    pub(crate) fn lock_acquire(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        kind: LockKindPub,
        write: bool,
        caller: &Location<'_>,
    ) -> bool {
        let kind = match kind {
            LockKindPub::Mutex => LockKind::Mutex,
            LockKindPub::RwLock => LockKind::RwLock,
        };
        loop {
            let Some(mut st) = self.arrive(tid) else {
                return false;
            };
            let next_id = st.next_lock_id;
            let (lock_id, free, release_clock) = {
                let lock = st.locks.entry(addr).or_insert_with(|| LockState {
                    id: next_id,
                    kind,
                    writer: None,
                    readers: Vec::new(),
                    release_clock: VClock::default(),
                });
                let free = if write {
                    lock.writer.is_none() && lock.readers.is_empty()
                } else {
                    lock.writer.is_none()
                };
                if free {
                    if write {
                        lock.writer = Some(tid);
                    } else {
                        lock.readers.push(tid);
                    }
                }
                (lock.id, free, lock.release_clock)
            };
            if lock_id == next_id {
                st.next_lock_id += 1;
            }
            if free {
                st.threads[tid].clock.join(&release_clock);
                let verb = match (kind, write) {
                    (LockKind::Mutex, _) => "lock",
                    (LockKind::RwLock, true) => "write",
                    (LockKind::RwLock, false) => "read",
                };
                st.push_trace(tid, format!("L{lock_id}.{verb}() acquired"), caller);
                self.check_step_budget(&mut st);
                return true;
            }
            st.threads[tid].status = Status::Blocked(BlockedOn::Lock(addr, write));
            st.token = None;
            self.decide(&mut st);
            // Loop: arrive() parks until a release makes us runnable and a
            // decision grants us; then we retry the acquisition.
        }
    }

    pub(crate) fn lock_release(
        self: &Arc<Self>,
        tid: usize,
        addr: usize,
        write: bool,
        caller: &Location<'_>,
    ) {
        let Some(mut st) = self.arrive(tid) else {
            return;
        };
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock;
        let Some(lock) = st.locks.get_mut(&addr) else {
            return;
        };
        let lock_id = lock.id;
        if write {
            lock.writer = None;
        } else {
            lock.readers.retain(|&r| r != tid);
        }
        // Conservative: reader release also joins the release clock, so
        // reader→writer (and reader→reader) edges always exist. This only
        // adds ordering — it can hide no stale read the real lock permits
        // on the data it protects.
        lock.release_clock.join(&clock);
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(BlockedOn::Lock(addr, true))
                || t.status == Status::Blocked(BlockedOn::Lock(addr, false))
            {
                t.status = Status::Runnable;
            }
        }
        st.push_trace(
            tid,
            format!(
                "L{lock_id}.release({})",
                if write { "write" } else { "read" }
            ),
            caller,
        );
        self.check_step_budget(&mut st);
    }

    // ---- thread operations ---------------------------------------------

    pub(crate) fn register_child(self: &Arc<Self>, tid: usize, caller: &Location<'_>) -> usize {
        let mut st = self
            .arrive(tid)
            .expect("spawn during teardown is not supported");
        assert!(
            st.threads.len() < MAX_THREADS,
            "aib-model supports at most {MAX_THREADS} threads per execution"
        );
        st.threads[tid].clock.tick(tid);
        let mut child_clock = st.threads[tid].clock;
        let child = st.threads.len();
        child_clock.tick(child);
        st.threads.push(ThreadState::new(child_clock));
        st.push_trace(tid, format!("spawn -> t{child}"), caller);
        self.check_step_budget(&mut st);
        child
    }

    pub(crate) fn adopt_handle(&self, handle: std::thread::JoinHandle<()>) {
        unpoison(self.handles.lock()).push(handle);
    }

    /// Parks until `target` finishes, then joins its clock (join edge).
    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize, target: usize, caller: &Location<'_>) {
        loop {
            let Some(mut st) = self.arrive(tid) else {
                return;
            };
            if st.threads[target].status == Status::Finished {
                let target_clock = st.threads[target].clock;
                st.threads[tid].clock.join(&target_clock);
                st.push_trace(tid, format!("join(t{target})"), caller);
                self.check_step_budget(&mut st);
                return;
            }
            st.threads[tid].status = Status::Blocked(BlockedOn::Join(target));
            st.token = None;
            self.decide(&mut st);
        }
    }

    pub(crate) fn record_thread_panic(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<AbortExecution>().is_some() {
            return;
        }
        let message = panic_message(payload.as_ref());
        let mut st = unpoison(self.state.lock());
        st.record_failure(format!("t{tid} panicked: {message}"));
        self.cv.notify_all();
    }

    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = unpoison(self.state.lock());
        st.threads[tid].status = Status::Finished;
        // A thread that finished without ever arriving may still carry an
        // unconsumed grant; clear it so it cannot be mistaken for an
        // outstanding scheduling duty.
        st.threads[tid].granted = false;
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(BlockedOn::Join(tid)) {
                t.status = Status::Runnable;
            }
        }
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        // Only decide if the scheduling duty actually falls to us:
        // either we hold the token, or nobody does and no grant is
        // outstanding (we finished without performing a single sync op and
        // the scheduler granted us the step we never took). Deciding while
        // another grant is live would let two threads run at once and
        // destroy replay determinism.
        let outstanding = st.threads.iter().any(|t| t.granted);
        if st.token == Some(tid) {
            st.token = None;
            self.decide(&mut st);
        } else if st.token.is_none() && !outstanding {
            self.decide(&mut st);
        } else {
            self.cv.notify_all();
        }
    }
}

/// Public lock-kind tag for the sync shim (the runtime's own enum stays
/// private).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LockKindPub {
    Mutex,
    RwLock,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A concurrency model: configure bounds, then [`check`](Model::check) a
/// closure that spawns [`crate::thread`] threads and exercises
/// [`crate::sync`] primitives.
#[derive(Clone, Debug)]
pub struct Model {
    name: String,
    max_preemptions: usize,
    max_executions: usize,
    max_steps: usize,
    replay: Option<String>,
}

impl Model {
    /// A model named `name` (the name is printed in violation reports)
    /// with default bounds: 3 preemptions, 200 000 executions, 20 000
    /// steps per execution.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            max_preemptions: 3,
            max_executions: 200_000,
            max_steps: 20_000,
            replay: None,
        }
    }

    /// Pins the exploration to exactly one schedule (a string from a
    /// previous violation report). Takes precedence over the
    /// `AIB_MODEL_SCHEDULE` environment variable.
    #[must_use]
    pub fn replay_schedule(mut self, schedule: impl Into<String>) -> Self {
        self.replay = Some(schedule.into());
        self
    }

    /// Caps context switches away from a still-runnable thread per
    /// execution. Two preemptions catch most real protocol bugs; the
    /// schedule space grows combinatorially with this bound.
    pub fn max_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Caps the number of schedules explored.
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// Runs the DFS and panics with a replayable report on the first
    /// violation (assertion failure inside the model, deadlock, or step
    /// budget blow-up).
    ///
    /// Set `AIB_MODEL_SCHEDULE` to a schedule string from a previous
    /// report to replay exactly that execution.
    ///
    /// # Panics
    /// When a violation is found — that is the reporting channel.
    pub fn check<F>(self, f: F)
    where
        F: Fn(),
    {
        let name = self.name.clone();
        let report = self.check_report(f);
        if let Some(v) = &report.violation {
            let trace = v.trace.join("\n");
            panic!(
                "aib-model violation in `{name}` (execution {n} of this run):\n\
                 {msg}\n\
                 schedule trace:\n{trace}\n\
                 replay: AIB_MODEL_SCHEDULE=\"{sched}\"",
                n = report.executions,
                msg = v.message,
                sched = v.schedule,
            );
        }
    }

    /// Like [`check`](Model::check) but returns the [`Report`] instead of
    /// panicking — the entry point for the checker's own tests, which
    /// assert that violations *are* found.
    pub fn check_report<F>(self, f: F) -> Report
    where
        F: Fn(),
    {
        let replay = self
            .replay
            .clone()
            .or_else(|| std::env::var("AIB_MODEL_SCHEDULE").ok())
            .filter(|s| !s.is_empty());
        let mut schedule: Vec<Decision> = match &replay {
            Some(s) => parse_schedule(s),
            None => Vec::new(),
        };
        let mut executions = 0;
        loop {
            executions += 1;
            let (failure, final_schedule) = self.run_one(&f, schedule);
            if failure.is_some() {
                return Report {
                    executions,
                    complete: false,
                    violation: failure,
                };
            }
            if replay.is_some() {
                return Report {
                    executions,
                    complete: false,
                    violation: None,
                };
            }
            if executions >= self.max_executions {
                return Report {
                    executions,
                    complete: false,
                    violation: None,
                };
            }
            match next_schedule(final_schedule) {
                Some(next) => schedule = next,
                None => {
                    return Report {
                        executions,
                        complete: true,
                        violation: None,
                    }
                }
            }
        }
    }

    fn run_one<F>(&self, f: &F, schedule: Vec<Decision>) -> (Option<Violation>, Vec<Decision>)
    where
        F: Fn(),
    {
        let session = Arc::new(Session::new(schedule, self.max_preemptions, self.max_steps));
        set_current(Some((Arc::clone(&session), 0)));
        let outcome = catch_unwind(AssertUnwindSafe(f));
        if let Err(payload) = outcome {
            session.record_thread_panic(0, payload);
        }
        session.finish_thread(0);
        {
            let mut st = unpoison(session.state.lock());
            while !st.all_finished() {
                st = unpoison(session.cv.wait(st));
            }
        }
        set_current(None);
        let handles = std::mem::take(&mut *unpoison(session.handles.lock()));
        for h in handles {
            // Child panics were already caught inside the child wrapper.
            let _ = h.join();
        }
        let mut st = unpoison(session.state.lock());
        (st.failure.take(), std::mem::take(&mut st.schedule))
    }
}

/// DFS backtracking: promote the deepest decision with unexplored
/// alternatives, discarding everything after it.
fn next_schedule(mut schedule: Vec<Decision>) -> Option<Vec<Decision>> {
    loop {
        let last = schedule.last_mut()?;
        let (chosen, alternatives) = match last {
            Decision::Thread {
                chosen,
                alternatives,
            } => (chosen, alternatives),
            Decision::Value {
                chosen,
                alternatives,
            } => (chosen, alternatives),
        };
        match alternatives.pop() {
            Some(next) => {
                *chosen = next;
                return Some(schedule);
            }
            None => {
                schedule.pop();
            }
        }
    }
}

fn parse_schedule(s: &str) -> Vec<Decision> {
    s.split(',')
        .filter(|tok| !tok.is_empty())
        .map(|tok| {
            let (kind, num) = tok.split_at(1);
            let n: usize = num
                .parse()
                .unwrap_or_else(|_| panic!("bad AIB_MODEL_SCHEDULE token `{tok}`"));
            match kind {
                "t" => Decision::Thread {
                    chosen: n,
                    alternatives: Vec::new(),
                },
                "v" => Decision::Value {
                    chosen: n,
                    alternatives: Vec::new(),
                },
                _ => panic!("bad AIB_MODEL_SCHEDULE token `{tok}`"),
            }
        })
        .collect()
}
