//! Model checks for the five load-bearing concurrency protocols of the
//! Adaptive Index Buffer (ISSUE PR 8, tentpole item 3).
//!
//! This file only compiles under `--cfg aib_model`, where `aib-storage` and
//! `aib-core` route every atomic and lock through the instrumented
//! `aib_model` runtime. The companion `tests/harness.rs` (compiled *without*
//! the cfg) re-invokes cargo with the cfg set — once clean, expecting every
//! test here to pass under exhaustive bounded exploration, and once per
//! seeded bug (`--cfg model_seeded_bug="..."`), expecting at least one test
//! here to report a violation with a replayable schedule.
//!
//! Each test is one closed concurrent program small enough to explore
//! exhaustively yet faithful to the real call graph: the threads call the
//! *production* entry points (`shard_write`, `space_snapshot`, `defer`,
//! `try_reserve`, ...), not re-implementations.
#![cfg(aib_model)]

use std::sync::Arc;

use aib_core::{AdaptationBatch, BufferConfig, ShardedSpace, SpaceConfig, StagedPage};
use aib_model::protocols::{CommitQueueModel, ShardPair, WalModel};
use aib_model::sync::{AtomicU64, Ordering};
use aib_model::{thread, Model};
use aib_storage::{BudgetComponent, MemoryBudget, Rid, Value};

fn one_shard() -> SpaceConfig {
    SpaceConfig {
        shards: 1,
        ..SpaceConfig::default()
    }
}

/// Protocol 1 — snapshot validation vs a concurrent `with_buffer_mut`-class
/// writer. The epoch sentinel parked by `shard_write` must fail validation
/// *closed*: once the writer's mutation is observable anywhere (here via a
/// `Release`-published mirror flag), no reader may still be served the
/// pre-write snapshot.
///
/// Catches: `missing_sentinel` (reader validates the stale cached snapshot
/// while the writer is mid-critical-section).
#[test]
fn snapshot_validation_vs_writer() {
    Model::new("snapshot_validation_vs_writer").check(|| {
        let space = Arc::new(ShardedSpace::new(one_shard()));
        let b0 = space.register("b", BufferConfig::default(), vec![1; 2]);
        // Publish a valid pre-write snapshot for the writer to stale.
        let _ = space.space_snapshot();
        let mirror = Arc::new(AtomicU64::new(0));

        let writer = {
            let space = Arc::clone(&space);
            let mirror = Arc::clone(&mirror);
            thread::spawn(move || {
                let mut guard = space.shard_write(0);
                guard.reset_counters(b0, vec![0; 2]);
                // Evidence the mutation happened, published from inside the
                // critical section: any reader that observes it must also
                // observe the parked sentinel (program-order-first in the
                // write window).
                mirror.store(1, Ordering::Release);
                drop(guard);
            })
        };

        let m = mirror.load(Ordering::Acquire);
        let snap = space.space_snapshot();
        if m == 1 {
            let buf = snap.buffer(b0).expect("buffer survives the write");
            assert!(
                buf.fully_skippable(2),
                "reader observed the write's mirror but was served a stale \
                 snapshot (validation did not fail closed)"
            );
        }
        writer.join();
    });
}

/// Protocol 2 — `generation` bump vs `add_buffer` (DDL). A reader that has
/// evidence the DDL completed must see the new buffer in its snapshot: the
/// roster generation is the cross-shard invalidation edge.
///
/// Catches: `stale_snapshot_cache` (any non-empty cached snapshot is served
/// without validation, hiding the registered buffer).
#[test]
fn generation_vs_add_buffer() {
    Model::new("generation_vs_add_buffer").check(|| {
        let space = Arc::new(ShardedSpace::new(one_shard()));
        let _b0 = space.register("b0", BufferConfig::default(), vec![1; 1]);
        let _ = space.space_snapshot();
        let added = Arc::new(AtomicU64::new(0));

        let ddl = {
            let space = Arc::clone(&space);
            let added = Arc::clone(&added);
            thread::spawn(move || {
                let _b1 = space.register("b1", BufferConfig::default(), vec![1; 1]);
                added.store(1, Ordering::Release);
            })
        };

        let a = added.load(Ordering::Acquire);
        let snap = space.space_snapshot();
        if a == 1 {
            assert_eq!(
                snap.buffers().count(),
                2,
                "DDL completed (mirror observed) but the snapshot still \
                 shows the pre-DDL roster"
            );
        }
        ddl.join();
    });
}

/// Protocol 3 — deferred-tick drain vs concurrent lock-free `defer`. Every
/// Table II event deferred from the fast path must be applied to the
/// history exactly once, however drains (shard write windows) interleave
/// with defers.
///
/// Catches: `missing_drain` (events never applied) and `drain_load_store`
/// (a defer landing between the drain's load and store is lost).
#[test]
fn deferred_drain_vs_displacement() {
    Model::new("deferred_drain_vs_displacement").check(|| {
        let space = Arc::new(ShardedSpace::new(one_shard()));
        let b0 = space.register("b", BufferConfig::default(), vec![1; 1]);
        let c0 = space.shard_read(0).buffer(b0).history().clock();
        let pend = Arc::clone(space.shard_read(0).pending(b0));

        let fast_path = thread::spawn(move || {
            pend.defer(1, 0, 0);
            pend.defer(1, 0, 0);
        });
        let drainer = {
            let space = Arc::clone(&space);
            // A displacement-class write window: acquiring the shard write
            // lock drains the pending cells into the history.
            thread::spawn(move || drop(space.shard_write(0)))
        };

        fast_path.join();
        drainer.join();
        // Final drain picks up whatever the concurrent window left behind.
        drop(space.shard_write(0));
        let clock = space.shard_read(0).buffer(b0).history().clock();
        assert_eq!(
            clock,
            c0 + 2,
            "deferred ticks were lost or duplicated across a concurrent drain"
        );
    });
}

/// Protocol 4 — cross-component admission under the shared total. Two
/// components race 60-byte reservations against a 100-byte shared cap:
/// exactly one may win, and the loser must be counted and rolled back.
///
/// Catches: `budget_check_then_act` (both components read the pre-claim
/// total and both admit, jointly overshooting the cap).
#[test]
fn budget_cross_pressure() {
    Model::new("budget_cross_pressure").check(|| {
        let budget = Arc::new(MemoryBudget::with_total(100));
        let ra = Arc::new(AtomicU64::new(0));
        let rb = Arc::new(AtomicU64::new(0));

        let pool = {
            let budget = Arc::clone(&budget);
            let ra = Arc::clone(&ra);
            thread::spawn(move || {
                if budget.try_reserve(BudgetComponent::BufferPool, 60) {
                    ra.store(1, Ordering::Release);
                }
            })
        };
        let index = {
            let budget = Arc::clone(&budget);
            let rb = Arc::clone(&rb);
            thread::spawn(move || {
                if budget.try_reserve(BudgetComponent::IndexSpace, 60) {
                    rb.store(1, Ordering::Release);
                }
            })
        };
        pool.join();
        index.join();

        let admitted = ra.load(Ordering::Acquire) + rb.load(Ordering::Acquire);
        assert_eq!(admitted, 1, "exactly one 60B claim fits a 100B total");
        assert_eq!(budget.total_used(), 60);
        assert_eq!(budget.denials(), 1);
        assert!(
            budget.high_water() <= 100,
            "admitted usage overshot the cap"
        );
    });
}

/// Protocol 4b — charge/release accounting under concurrency. Two threads
/// each charge and release the same component; all accounting must return
/// to zero.
///
/// Catches: `budget_release_lost` (a load-then-store release overwrites a
/// concurrent charge or release, leaving the slot permanently skewed).
#[test]
fn budget_release_reconciles() {
    Model::new("budget_release_reconciles").check(|| {
        let budget = Arc::new(MemoryBudget::unlimited());
        let spawn_churn = |budget: &Arc<MemoryBudget>| {
            let budget = Arc::clone(budget);
            thread::spawn(move || {
                budget.charge(BudgetComponent::IndexSpace, 60);
                budget.release(BudgetComponent::IndexSpace, 60);
            })
        };
        let a = spawn_churn(&budget);
        let b = spawn_churn(&budget);
        a.join();
        b.join();
        assert_eq!(budget.used(BudgetComponent::IndexSpace), 0);
        assert_eq!(budget.total_used(), 0);
    });
}

/// Protocol 5 — WAL append happens-before apply. A checkpoint may never
/// observe more applied than logged commits; the durability lock is the
/// edge that orders `logged += 1` before `applied += 1` for each commit.
///
/// Catches: `wal_unlocked_log` (the log append escapes the lock, so a
/// checkpoint between a commit's apply and its log sees applied > logged).
#[test]
fn wal_append_happens_before_apply() {
    Model::new("wal_append_happens_before_apply").check(|| {
        let wal = Arc::new(WalModel::new());
        let committer = |wal: &Arc<WalModel>| {
            let wal = Arc::clone(wal);
            thread::spawn(move || wal.commit())
        };
        let a = committer(&wal);
        let b = committer(&wal);
        let (logged, applied) = wal.checkpoint();
        assert!(
            applied <= logged,
            "checkpoint observed applied={applied} > logged={logged}"
        );
        a.join();
        b.join();
        let (logged, applied) = wal.checkpoint();
        assert_eq!((logged, applied), (2, 2));
    });
}

/// Protocol 6 — shard lock ordering. `write_all`-class multi-shard sweeps
/// must take shard locks in ascending index; the model's lock-order
/// tracking reports the ABBA deadlock as a violation rather than hanging.
///
/// Catches: `abba_shard_locks` (`sync_all` descends while `write_all`
/// ascends).
#[test]
fn shard_lock_ordering() {
    Model::new("shard_lock_ordering").check(|| {
        let pair = Arc::new(ShardPair::new());
        let writer = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || pair.write_all())
        };
        let syncer = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let _ = pair.sync_all();
            })
        };
        writer.join();
        syncer.join();
    });
}

/// Protocol 7 — group-commit handoff (PR 9): frame staged → leader fsync
/// → follower ack, in that happens-before order. Two writers stage and
/// wait; whichever becomes leader fsyncs the staged batch before
/// publishing the durable watermark, so at every ack the fsync watermark
/// already covers the acked ticket.
///
/// Catches: `commit_ack_before_fsync` (the watermark — and the mutex
/// release that wakes followers — precedes the fsync, so a follower acks
/// a commit whose bytes are still in flight).
#[test]
fn commit_ack_happens_after_covering_fsync() {
    Model::new("commit_ack_happens_after_covering_fsync").check(|| {
        let queue = Arc::new(CommitQueueModel::new());
        let writer = |queue: &Arc<CommitQueueModel>| {
            let queue = Arc::clone(queue);
            thread::spawn(move || {
                let ticket = queue.stage();
                let fsynced_at_ack = queue.wait_durable(ticket);
                assert!(
                    fsynced_at_ack >= ticket,
                    "ticket {ticket} acked with fsync watermark {fsynced_at_ack} \
                     — commit acknowledged before its covering fsync"
                );
            })
        };
        let a = writer(&queue);
        let b = writer(&queue);
        a.join();
        b.join();
    });
}

/// Protocol 8 — queued adaptation apply vs a DDL-class writer (PR 10). A
/// planned scan parks an epoch-stamped batch; a concurrent writer clears
/// the buffer and resets the counters (the `redefine_coverage` shape,
/// which bumps the shard epoch). However push and drain interleave with
/// the write window, the batch must never resurrect pre-DDL entries:
/// either it applied *before* the clear (and was wiped with everything
/// else) or its epoch stamp is stale at drain time and it is dropped.
///
/// Catches: `queued_apply_skips_epoch_check` (the drain applies every
/// batch regardless of its stamp, so a parked batch re-inserts entries the
/// DDL just invalidated).
#[test]
fn adaptation_queue_vs_ddl() {
    Model::new("adaptation_queue_vs_ddl").check(|| {
        let space = Arc::new(ShardedSpace::new(one_shard()));
        let b0 = space.register("b", BufferConfig::default(), vec![1]);
        // The epoch a planned scan would have stamped: read pre-spawn, like
        // a snapshot taken before either thread runs.
        let epoch = space.shard_read(0).epoch();

        let scanner = {
            let space = Arc::clone(&space);
            thread::spawn(move || {
                let _ = space.push_adaptation(AdaptationBatch {
                    buffer: b0,
                    epoch,
                    staged: vec![StagedPage {
                        ordinal: 0,
                        entries: vec![(Value::Int(7), Rid::new(0, 0))],
                    }],
                });
            })
        };
        let ddl = {
            let space = Arc::clone(&space);
            thread::spawn(move || {
                let mut guard = space.shard_write(0);
                guard.clear_buffer(b0);
                guard.reset_counters(b0, vec![2]);
            })
        };
        scanner.join();
        ddl.join();

        // Quiescence: drain whatever is still parked, then audit.
        drop(space.shard_write(0));
        let guard = space.shard_read(0);
        assert_eq!(
            guard.buffer(b0).num_entries(),
            0,
            "a stale adaptation batch resurrected entries the DDL cleared"
        );
        assert_eq!(
            guard.counters(b0).get(0),
            2,
            "a stale adaptation batch decremented post-DDL counters"
        );
    });
}
