//! Self-tests for the model runtime: correct models pass, and each
//! violation class (stale read, lost update, deadlock, plain assertion)
//! is detected with a replayable schedule.
//!
//! These run in the normal (no `cfg(aib_model)`) build — the runtime's own
//! types are always instrumented; the cfg only switches what the
//! *production* crates' shim points at.

use std::sync::Arc;

use aib_model::sync::{AtomicU64, Mutex, Ordering, RwLock};
use aib_model::{thread, Model};

/// Message-passing via Release store / Acquire load: the flag carries the
/// data write, so the reader can never see `flag == 1` with stale data.
#[test]
fn release_acquire_message_passing_passes() {
    let report = Model::new("mp-release-acquire").check_report(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data behind flag");
        }
        t.join();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.complete,
        "exploration should exhaust this tiny model"
    );
}

/// The same protocol with the Release publish demoted to Relaxed: the
/// reader may now observe the flag without the data write — the model's
/// memory model must find that interleaving.
#[test]
fn relaxed_publish_stale_read_detected() {
    let report = Model::new("mp-relaxed-publish").check_report(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed); // WRONG: demoted Release
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data behind flag");
        }
        t.join();
    });
    let v = report.violation.expect("stale read must be detected");
    assert!(
        v.message.contains("stale data behind flag"),
        "{}",
        v.message
    );
    assert!(!v.schedule.is_empty(), "violation must carry a schedule");
}

/// Check-then-act increment (load; add; store) loses updates under
/// interleaving; the atomic RMW version does not.
#[test]
fn lost_update_detected_and_rmw_passes() {
    let racy = Model::new("lost-update-racy").check_report(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::Acquire); // WRONG: check-then-act
            n2.store(v + 1, Ordering::Release);
        });
        let v = n.load(Ordering::Acquire);
        n.store(v + 1, Ordering::Release);
        t.join();
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    });
    let v = racy.violation.expect("lost update must be detected");
    assert!(v.message.contains("lost update"), "{}", v.message);

    let sound = Model::new("lost-update-rmw").check_report(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(1, Ordering::AcqRel);
        t.join();
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    });
    assert!(sound.violation.is_none(), "{:?}", sound.violation);
}

/// ABBA lock acquisition deadlocks; the wait-for analysis must name both
/// blocked threads.
#[test]
fn abba_deadlock_detected() {
    let report = Model::new("abba-deadlock").check_report(|| {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _b = b2.lock();
            let _a = a2.lock(); // WRONG: reversed order
        });
        let _a = a.lock();
        let _b = b.lock();
        t.join();
    });
    let v = report.violation.expect("ABBA deadlock must be detected");
    assert!(v.message.contains("deadlock"), "{}", v.message);
    assert!(v.message.contains("t0"), "{}", v.message);
    assert!(v.message.contains("t1"), "{}", v.message);
}

/// Consistent lock ordering on the same two locks passes.
#[test]
fn ordered_locks_pass() {
    let report = Model::new("ordered-locks").check_report(|| {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let mut ga = a2.lock();
            let mut gb = b2.lock();
            *ga += 1;
            *gb += 1;
        });
        {
            let mut ga = a.lock();
            let mut gb = b.lock();
            *ga += 1;
            *gb += 1;
        }
        t.join();
        assert_eq!(*a.lock(), 2);
        assert_eq!(*b.lock(), 2);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// RwLock: two concurrent readers plus a writer keep the invariant that a
/// reader never sees a half-applied write (both halves are updated under
/// one write guard).
#[test]
fn rwlock_reader_writer_passes() {
    let report = Model::new("rwlock-halves").check_report(|| {
        let pair = Arc::new(RwLock::new((0u64, 0u64)));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let mut g = p2.write();
            g.0 += 1;
            g.1 += 1;
        });
        {
            let g = pair.read();
            assert_eq!(g.0, g.1, "torn write visible to reader");
        }
        t.join();
        let g = pair.read();
        assert_eq!((g.0, g.1), (1, 1));
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// A violation report replays: running the model again with
/// `AIB_MODEL_SCHEDULE` pinned to the reported schedule reproduces the
/// same violation in exactly one execution.
#[test]
fn reported_schedule_replays() {
    let model = |replay: Option<String>| {
        let mut m = Model::new("replay-demo").max_preemptions(2);
        if let Some(s) = replay {
            m = m.replay_schedule(s);
        }
        m.check_report(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(7, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // WRONG on purpose
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 7, "stale read");
            }
            t.join();
        })
    };
    let first = model(None).violation.expect("bug must be found");
    let replayed = model(Some(first.schedule.clone()));
    assert_eq!(replayed.executions, 1, "replay must be a single execution");
    let v = replayed
        .violation
        .expect("replay must reproduce the violation");
    assert_eq!(v.schedule, first.schedule);
}

/// `Model::check` panics with the replayable report markers the harness
/// greps for.
#[test]
fn check_panics_with_replay_markers() {
    let outcome = std::panic::catch_unwind(|| {
        Model::new("marker-demo").check(|| {
            let a = Arc::new(Mutex::new(0u64));
            let b = Arc::new(Mutex::new(0u64));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _b = b2.lock();
                let _a = a2.lock();
            });
            let _a = a.lock();
            let _b = b.lock();
            t.join();
        });
    });
    let payload = outcome.expect_err("check must panic on violation");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the report string");
    assert!(msg.contains("aib-model violation"), "{msg}");
    assert!(msg.contains("AIB_MODEL_SCHEDULE"), "{msg}");
    assert!(msg.contains("schedule trace"), "{msg}");
}

/// The distilled WAL skeleton passes in its correct form (the seeded
/// variants are exercised by the harness under `cfg(model_seeded_bug)`).
#[test]
fn wal_skeleton_passes() {
    use aib_model::protocols::WalModel;
    let report = Model::new("wal-write-ahead").check_report(|| {
        let wal = Arc::new(WalModel::new());
        let w2 = Arc::clone(&wal);
        let t = thread::spawn(move || {
            w2.commit();
            w2.commit();
        });
        let (logged, applied) = wal.checkpoint();
        assert!(
            logged >= applied,
            "write-ahead violated: applied {applied} > logged {logged}"
        );
        t.join();
        let (logged, applied) = wal.checkpoint();
        assert_eq!((logged, applied), (2, 2));
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// The distilled shard-lock skeleton passes in ascending-order form.
#[test]
fn shard_lock_order_skeleton_passes() {
    use aib_model::protocols::ShardPair;
    let report = Model::new("shard-lock-order").check_report(|| {
        let shards = Arc::new(ShardPair::new());
        let s2 = Arc::clone(&shards);
        let t = thread::spawn(move || {
            s2.write_all();
        });
        let (a, b) = shards.sync_all();
        // sync_all sees both shards at the same count: write_all holds
        // both write locks across its bumps.
        assert_eq!(a, b, "torn write_all visible: {a} vs {b}");
        t.join();
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
