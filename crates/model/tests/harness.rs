//! Drives the model-checked protocol suite (`tests/protocols.rs`) from a
//! normal `cargo test` run by re-invoking cargo with `--cfg aib_model` set,
//! which swaps `aib_core::sync` / `aib_storage::sync` from std +
//! `parking_lot` onto the instrumented `aib_model` runtime.
//!
//! Two halves, mirroring the ISSUE acceptance criteria:
//!
//! * `clean_protocols_pass` — the real protocol code explores with **zero**
//!   violations.
//! * `seeded_bugs_all_detected` — every deliberately wrong variant in the
//!   corpus (`--cfg model_seeded_bug="..."`) makes at least one protocol
//!   test fail with a replayable `aib-model violation` report.
//!
//! Each variant builds into its own `target/aib-model/<variant>` directory
//! so rebuilds are incremental and concurrent harness tests never contend
//! on a build lock.
#![cfg(not(aib_model))]

use std::path::PathBuf;
use std::process::{Command, Output};

/// The seeded-bug corpus. Keep in lockstep with the
/// `cfg(model_seeded_bug, values(...))` tables in the `aib-model`,
/// `aib-storage` and `aib-core` manifests and the DESIGN §7 table.
const SEEDED_BUGS: &[&str] = &[
    "missing_sentinel",
    "stale_snapshot_cache",
    "missing_drain",
    "drain_load_store",
    "budget_check_then_act",
    "budget_release_lost",
    "wal_unlocked_log",
    "abba_shard_locks",
    "commit_ack_before_fsync",
    "queued_apply_skips_epoch_check",
];

fn workspace_root() -> PathBuf {
    // crates/model -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("manifest dir has a workspace root")
        .to_path_buf()
}

/// Runs `cargo test -p aib-model --test protocols` with `--cfg aib_model`
/// (plus one seeded bug, when given) and returns the raw output.
fn run_model_suite(seeded: Option<&str>) -> Output {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut rustflags = String::from("--cfg aib_model");
    if let Some(bug) = seeded {
        rustflags.push_str(&format!(" --cfg model_seeded_bug=\"{bug}\""));
    }
    let variant = seeded.unwrap_or("clean");
    Command::new(cargo)
        .args(["test", "-p", "aib-model", "--test", "protocols"])
        .current_dir(workspace_root())
        .env("RUSTFLAGS", rustflags)
        .env(
            "CARGO_TARGET_DIR",
            workspace_root()
                .join("target")
                .join("aib-model")
                .join(variant),
        )
        // The inner build needs no debuginfo; this roughly halves its cost.
        .env("CARGO_PROFILE_DEV_DEBUG", "0")
        // A schedule pinned in the caller's environment must not leak into
        // exploration runs.
        .env_remove("AIB_MODEL_SCHEDULE")
        .output()
        .expect("spawn inner cargo")
}

fn render(out: &Output) -> String {
    format!(
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

/// The real protocols must survive exhaustive bounded exploration.
#[test]
fn clean_protocols_pass() {
    let out = run_model_suite(None);
    let text = render(&out);
    assert!(
        out.status.success(),
        "model suite reported violations on the real protocol code:\n{text}"
    );
    assert!(
        text.contains("test result: ok"),
        "inner cargo produced no test run:\n{text}"
    );
}

/// Every seeded bug must be caught, and each report must carry the
/// replayable-schedule markers so a developer can pin the interleaving.
#[test]
fn seeded_bugs_all_detected() {
    let mut missed = Vec::new();
    for &bug in SEEDED_BUGS {
        let out = run_model_suite(Some(bug));
        let text = render(&out);
        let detected = !out.status.success()
            && text.contains("aib-model violation")
            && text.contains("AIB_MODEL_SCHEDULE");
        if !detected {
            missed.push(format!(
                "seeded bug `{bug}` was not detected \
                 (status {:?}):\n{text}\n---",
                out.status.code()
            ));
        }
    }
    assert!(
        missed.is_empty(),
        "{} of {} seeded bugs escaped the model checker:\n{}",
        missed.len(),
        SEEDED_BUGS.len(),
        missed.join("\n")
    );
}
