//! Data and query workload generators for the paper's evaluation (§V).
//!
//! * [`datagen::TableSpec`] — the evaluation table (500 k tuples, three
//!   uniform INTEGER columns, VARCHAR payload), with deterministic seeding
//!   and proportional down-scaling for tests.
//! * [`distribution::KeyDist`] — uniform / Zipf / hot-set key distributions.
//! * [`mix::QueryMix`] — weighted multi-phase column mixes (experiments 3/4).
//! * [`experiments`] — the exact query streams of experiments 1–4.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod datagen;
pub mod distribution;
pub mod experiments;
pub mod mix;

pub use datagen::TableSpec;
pub use distribution::KeyDist;
pub use experiments::{
    exp4_ranges, experiment1_queries, experiment3_queries, experiment4_queries, QuerySpec,
    PAPER_QUERIES, SWITCH_AT,
};
pub use mix::{Phase, QueryMix};
