//! Query mixes: weighted column choices with switch points — the shape of
//! the paper's experiments 3 and 4.

use rand::Rng;

/// One phase of a query mix: relative weights per column.
#[derive(Debug, Clone)]
pub struct Phase {
    /// `(column_name, weight)`; weights need not sum to 1.
    pub weights: Vec<(String, f64)>,
    /// Number of queries this phase lasts (the last phase may be `None` =
    /// until the workload ends).
    pub queries: Option<usize>,
}

/// A multi-phase query mix.
#[derive(Debug, Clone)]
pub struct QueryMix {
    phases: Vec<Phase>,
}

impl QueryMix {
    /// Builds a mix from phases.
    ///
    /// # Panics
    /// If `phases` is empty, any phase has no positive weight, or a
    /// non-final phase has no length.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "mix needs at least one phase");
        for (i, p) in phases.iter().enumerate() {
            assert!(
                p.weights.iter().any(|&(_, w)| w > 0.0),
                "phase {i} needs a positive weight"
            );
            assert!(
                p.queries.is_some() || i == phases.len() - 1,
                "only the final phase may be open-ended"
            );
        }
        QueryMix { phases }
    }

    /// The paper's experiment 3 mix: A:B:C = 1/2:1/3:1/6 for 100 queries,
    /// then 1/6:1/3:1/2.
    pub fn experiment3() -> Self {
        QueryMix::new(vec![
            Phase {
                weights: vec![("A".into(), 3.0), ("B".into(), 2.0), ("C".into(), 1.0)],
                queries: Some(100),
            },
            Phase {
                weights: vec![("A".into(), 1.0), ("B".into(), 2.0), ("C".into(), 3.0)],
                queries: None,
            },
        ])
    }

    /// The paper's experiment 4 mix: fixed A:B:C = 1/2:1/3:1/6 throughout.
    pub fn experiment4() -> Self {
        QueryMix::new(vec![Phase {
            weights: vec![("A".into(), 3.0), ("B".into(), 2.0), ("C".into(), 1.0)],
            queries: None,
        }])
    }

    /// Picks the column for query number `seq` (0-based).
    pub fn pick(&self, seq: usize, rng: &mut impl Rng) -> &str {
        let mut at = seq;
        // `new` guarantees at least one phase and positive weights; the
        // empty fallbacks here are unreachable but panic-free.
        let Some(mut phase) = self.phases.last() else {
            return "";
        };
        for p in &self.phases {
            match p.queries {
                Some(q) if at >= q => at -= q,
                _ => {
                    phase = p;
                    break;
                }
            }
        }
        let total: f64 = phase.weights.iter().map(|&(_, w)| w).sum();
        let mut roll = rng.gen_range(0.0..total);
        for (col, w) in &phase.weights {
            roll -= w;
            if roll <= 0.0 {
                return col;
            }
        }
        phase.weights.last().map_or("", |(col, _)| col.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn frequencies(mix: &QueryMix, from: usize, to: usize, seed: u64) -> HashMap<String, usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut freq = HashMap::new();
        for seq in from..to {
            *freq.entry(mix.pick(seq, &mut rng).to_owned()).or_insert(0) += 1;
        }
        freq
    }

    #[test]
    fn experiment3_phase_shift() {
        // Same weights as experiment 3, with long phases so frequencies are
        // statistically checkable.
        let mix = QueryMix::new(vec![
            Phase {
                weights: vec![("A".into(), 3.0), ("B".into(), 2.0), ("C".into(), 1.0)],
                queries: Some(10_000),
            },
            Phase {
                weights: vec![("A".into(), 1.0), ("B".into(), 2.0), ("C".into(), 3.0)],
                queries: None,
            },
        ]);
        let p1 = frequencies(&mix, 0, 10_000, 1);
        // 1/2 : 1/3 : 1/6 within tolerance.
        assert!((4600..5400).contains(&p1["A"]), "A {}", p1["A"]);
        assert!((3000..3700).contains(&p1["B"]), "B {}", p1["B"]);
        assert!((1300..2000).contains(&p1["C"]), "C {}", p1["C"]);
        let p2 = frequencies(&mix, 10_000, 20_000, 2);
        assert!(
            (1300..2000).contains(&p2["A"]),
            "A flips to 1/6: {}",
            p2["A"]
        );
        assert!(
            (4600..5400).contains(&p2["C"]),
            "C flips to 1/2: {}",
            p2["C"]
        );
    }

    #[test]
    fn experiment3_switches_at_query_100() {
        let mix = QueryMix::experiment3();
        // Phase membership is deterministic even though picks are random:
        // compare long-run frequencies within each phase region.
        let p2 = frequencies(&mix, 100, 10_100, 5);
        assert!(
            p2["C"] > p2["A"],
            "after the switch C dominates A: C={} A={}",
            p2["C"],
            p2["A"]
        );
    }

    #[test]
    fn experiment4_mix_is_stationary() {
        let mix = QueryMix::experiment4();
        let p = frequencies(&mix, 500, 10_500, 3);
        assert!((4600..5400).contains(&p["A"]));
    }

    #[test]
    fn phase_boundary_is_exact() {
        let mix = QueryMix::new(vec![
            Phase {
                weights: vec![("X".into(), 1.0)],
                queries: Some(3),
            },
            Phase {
                weights: vec![("Y".into(), 1.0)],
                queries: None,
            },
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        let picks: Vec<&str> = (0..6).map(|s| mix.pick(s, &mut rng)).collect();
        assert_eq!(picks, vec!["X", "X", "X", "Y", "Y", "Y"]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_mix_rejected() {
        QueryMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "only the final phase")]
    fn open_ended_middle_phase_rejected() {
        QueryMix::new(vec![
            Phase {
                weights: vec![("X".into(), 1.0)],
                queries: None,
            },
            Phase {
                weights: vec![("Y".into(), 1.0)],
                queries: None,
            },
        ]);
    }
}
