//! Key distributions for data and query generation.

use rand::Rng;

/// A distribution over integer keys.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `lo..=hi` (the paper's data and query distribution).
    Uniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Zipf over `1..=n` with skew `theta` (workload-extension knob; the
    /// paper uses uniform only).
    Zipf {
        /// Domain size.
        n: u64,
        /// Skew parameter (`0` = uniform, typical `0.8–1.2`).
        theta: f64,
    },
    /// Hot-set: with probability `hot_prob` draw uniformly from the hot
    /// range, otherwise from the cold range. Models experiment 4's
    /// controlled partial-index hit rates.
    HotSet {
        /// Inclusive hot range.
        hot: (i64, i64),
        /// Probability of drawing from the hot range.
        hot_prob: f64,
        /// Inclusive cold range.
        cold: (i64, i64),
    },
}

impl KeyDist {
    /// Draws one key.
    pub fn sample(&self, rng: &mut impl Rng) -> i64 {
        match self {
            KeyDist::Uniform { lo, hi } => rng.gen_range(*lo..=*hi),
            KeyDist::Zipf { n, theta } => zipf_sample(rng, *n, *theta),
            KeyDist::HotSet {
                hot,
                hot_prob,
                cold,
            } => {
                if rng.gen_bool(*hot_prob) {
                    rng.gen_range(hot.0..=hot.1)
                } else {
                    rng.gen_range(cold.0..=cold.1)
                }
            }
        }
    }
}

/// Zipf sampling by rejection-inversion (Hörmann & Derflinger), good for
/// large domains without precomputing a CDF.
fn zipf_sample(rng: &mut impl Rng, n: u64, theta: f64) -> i64 {
    assert!(n >= 1);
    if theta <= f64::EPSILON {
        return rng.gen_range(1..=n as i64);
    }
    // Simple inversion over the harmonic CDF approximation; exact enough
    // for workload generation.
    let h = |x: f64| -> f64 {
        if (theta - 1.0).abs() < 1e-9 {
            (x).ln()
        } else {
            (x.powf(1.0 - theta) - 1.0) / (1.0 - theta)
        }
    };
    let h_inv = |y: f64| -> f64 {
        if (theta - 1.0).abs() < 1e-9 {
            y.exp()
        } else {
            (1.0 + y * (1.0 - theta)).powf(1.0 / (1.0 - theta))
        }
    };
    let hn = h(n as f64 + 0.5);
    let h1 = h(0.5);
    loop {
        let u = rng.gen_range(0.0..1.0);
        let x = h_inv(h1 + u * (hn - h1));
        let k = x.round().clamp(1.0, n as f64);
        // Accept with probability proportional to the true mass.
        let accept = (h(k + 0.5) - h(k - 0.5)) / (hn - h1);
        let mass = k.powf(-theta) / (hn - h1);
        if rng.gen_range(0.0..1.0) * accept <= mass {
            return k as i64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = KeyDist::Uniform { lo: 1, hi: 10 };
        let mut seen = [false; 11];
        for _ in 0..1000 {
            let k = d.sample(&mut rng);
            assert!((1..=10).contains(&k));
            seen[k as usize] = true;
        }
        assert!(seen[1..=10].iter().all(|&s| s), "all values appear");
    }

    #[test]
    fn zipf_is_skewed_towards_small_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = KeyDist::Zipf {
            n: 1000,
            theta: 1.0,
        };
        let mut low = 0;
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            if k <= 10 {
                low += 1;
            }
        }
        assert!(
            low > 3000,
            "theta=1: top-10 keys draw >30% of mass, got {low}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = KeyDist::Zipf { n: 100, theta: 0.0 };
        let mut low = 0;
        for _ in 0..10_000 {
            if d.sample(&mut rng) <= 10 {
                low += 1;
            }
        }
        assert!((800..1200).contains(&low), "~10% expected, got {low}");
    }

    #[test]
    fn hot_set_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = KeyDist::HotSet {
            hot: (1, 100),
            hot_prob: 0.8,
            cold: (101, 1000),
        };
        let mut hot = 0;
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            if k <= 100 {
                hot += 1;
            } else {
                assert!((101..=1000).contains(&k));
            }
        }
        assert!((7700..8300).contains(&hot), "~80% hot, got {hot}");
    }
}
