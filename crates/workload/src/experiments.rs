//! Canned query workloads reproducing the paper's four experiments (§V).
//!
//! All experiments share the evaluation table of [`crate::datagen::TableSpec`]
//! and run 200 queries:
//!
//! * **Experiment 1/2** — 200 point queries on column `A`, uniformly over
//!   the *unindexed* values (the covered 10 % is never queried).
//! * **Experiment 3** — mix A:B:C = 1/2:1/3:1/6 flipping to 1/6:1/3:1/2 at
//!   query 100; all values unindexed.
//! * **Experiment 4** — fixed mix 1/2:1/3:1/6; column-A values are drawn so
//!   that 80 % fall into one 10 % chunk of the domain (`range_r1`) and 20 %
//!   into another (`range_r2`). The partial index on A covers `range_r1`
//!   for the first 100 queries and is redefined to `range_r2` afterwards —
//!   realising the paper's 80 % → 20 % hit-rate switch.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datagen::TableSpec;
use crate::distribution::KeyDist;
use crate::mix::QueryMix;

/// One point query of an experiment workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Queried column (`"A"`, `"B"`, or `"C"`).
    pub column: String,
    /// Queried key.
    pub value: i64,
}

/// Number of queries in every paper experiment.
pub const PAPER_QUERIES: usize = 200;

/// The switch point of experiments 3 and 4.
pub const SWITCH_AT: usize = 100;

/// Uniform distribution over the *uncovered* values of `spec`.
fn uncovered(spec: &TableSpec) -> KeyDist {
    let (_, hi) = spec.covered_range();
    KeyDist::Uniform {
        lo: hi + 1,
        hi: spec.domain,
    }
}

/// Experiment 1/2 workload: `n` uncovered point queries on column A.
pub fn experiment1_queries(spec: &TableSpec, n: usize, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = uncovered(spec);
    (0..n)
        .map(|_| QuerySpec {
            column: "A".into(),
            value: dist.sample(&mut rng),
        })
        .collect()
}

/// Experiment 3 workload: shifting mix, all values uncovered.
pub fn experiment3_queries(spec: &TableSpec, n: usize, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mix = QueryMix::experiment3();
    let dist = uncovered(spec);
    (0..n)
        .map(|seq| QuerySpec {
            column: mix.pick(seq, &mut rng).to_owned(),
            value: dist.sample(&mut rng),
        })
        .collect()
}

/// Experiment 4: the two candidate coverage ranges for column A.
/// `range_r1` is covered during the first phase, `range_r2` after the
/// switch; A-queries draw from `r1` with probability 0.8.
pub fn exp4_ranges(spec: &TableSpec) -> ((i64, i64), (i64, i64)) {
    let tenth = spec.domain / 10;
    ((1, tenth), (spec.domain - tenth + 1, spec.domain))
}

/// Experiment 4 workload: fixed mix; column-A values drawn 80/20 over the
/// two ranges of [`exp4_ranges`]; B and C uncovered uniform.
pub fn experiment4_queries(spec: &TableSpec, n: usize, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mix = QueryMix::experiment4();
    let (r1, r2) = exp4_ranges(spec);
    let a_dist = KeyDist::HotSet {
        hot: r1,
        hot_prob: 0.8,
        cold: r2,
    };
    let other = uncovered(spec);
    (0..n)
        .map(|seq| {
            let column = mix.pick(seq, &mut rng).to_owned();
            let value = if column == "A" {
                a_dist.sample(&mut rng)
            } else {
                other.sample(&mut rng)
            };
            QuerySpec { column, value }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableSpec {
        TableSpec::paper()
    }

    #[test]
    fn experiment1_only_column_a_uncovered_values() {
        let qs = experiment1_queries(&spec(), PAPER_QUERIES, 1);
        assert_eq!(qs.len(), 200);
        assert!(qs.iter().all(|q| q.column == "A"));
        assert!(qs.iter().all(|q| q.value > 5_000 && q.value <= 50_000));
    }

    #[test]
    fn experiment3_mix_flips() {
        let qs = experiment3_queries(&spec(), 20_000, 2);
        let count = |range: std::ops::Range<usize>, col: &str| {
            qs[range].iter().filter(|q| q.column == col).count()
        };
        // Large n to check frequencies; switch point scales with phase
        // definition (100), so index directly by phase via mix: the first
        // 100 are phase 1, rest phase 2.
        let a_phase2 = count(100..20_000, "A") as f64 / 19_900.0;
        assert!(a_phase2 < 0.25, "A drops to ~1/6 after switch: {a_phase2}");
        let c_phase2 = count(100..20_000, "C") as f64 / 19_900.0;
        assert!(c_phase2 > 0.4, "C rises to ~1/2 after switch: {c_phase2}");
        assert!(qs.iter().all(|q| q.value > 5_000));
    }

    #[test]
    fn experiment4_a_values_follow_8020() {
        let s = spec();
        let (r1, r2) = exp4_ranges(&s);
        assert_eq!(r1, (1, 5_000));
        assert_eq!(r2, (45_001, 50_000));
        let qs = experiment4_queries(&s, 20_000, 3);
        let a: Vec<&QuerySpec> = qs.iter().filter(|q| q.column == "A").collect();
        let in_r1 = a
            .iter()
            .filter(|q| q.value >= r1.0 && q.value <= r1.1)
            .count();
        let frac = in_r1 as f64 / a.len() as f64;
        assert!((0.77..0.83).contains(&frac), "80% in r1, got {frac}");
        let others: Vec<&QuerySpec> = qs.iter().filter(|q| q.column != "A").collect();
        assert!(others.iter().all(|q| q.value > 5_000));
    }

    #[test]
    fn workloads_are_deterministic() {
        let s = spec();
        assert_eq!(
            experiment1_queries(&s, 50, 7),
            experiment1_queries(&s, 50, 7)
        );
        assert_eq!(
            experiment4_queries(&s, 50, 7),
            experiment4_queries(&s, 50, 7)
        );
        assert_ne!(
            experiment1_queries(&s, 50, 7),
            experiment1_queries(&s, 50, 8)
        );
    }
}
