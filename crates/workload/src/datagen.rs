//! Data generation reproducing the paper's evaluation table (§V):
//!
//! > "a single table with three INTEGER columns (A,B,C) for indexing and one
//! > VARCHAR(512) column as payload. The integer columns are populated with
//! > random values uniformly distributed from 1 to 50,000. The size of the
//! > payload values is also uniformly distributed, but ranges from 1 to 512.
//! > We filled the table with 500,000 tuples."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aib_storage::{Column, Schema, Tuple, Value};

/// Parameters of the generated table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Number of tuples (paper: 500,000).
    pub rows: u64,
    /// Key domain `1..=domain` (paper: 50,000).
    pub domain: i64,
    /// Payload length range (paper: 1..=512).
    pub payload: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl TableSpec {
    /// The paper's exact setup.
    pub fn paper() -> Self {
        TableSpec {
            rows: 500_000,
            domain: 50_000,
            payload: (1, 512),
            seed: 0xDA7A,
        }
    }

    /// A proportionally scaled-down setup (for tests and quick runs): `rows`
    /// tuples with the key domain scaled to keep ~10 duplicates per value.
    pub fn scaled(rows: u64, seed: u64) -> Self {
        TableSpec {
            rows,
            domain: (rows as i64 / 10).max(10),
            payload: (1, 512),
            seed,
        }
    }

    /// The schema: `A, B, C INTEGER; payload VARCHAR`.
    pub fn schema(&self) -> Schema {
        Schema::new(vec![
            Column::int("A"),
            Column::int("B"),
            Column::int("C"),
            Column::str("payload"),
        ])
    }

    /// The covered range of the paper's partial indexes: "the top 10 % of
    /// the value range ..., i.e., values from 1 to 5,000".
    pub fn covered_range(&self) -> (i64, i64) {
        (1, self.domain / 10)
    }

    /// Generates the tuples as an iterator (stable under `seed`).
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.rows).map(move |_| {
            let a = rng.gen_range(1..=self.domain);
            let b = rng.gen_range(1..=self.domain);
            let c = rng.gen_range(1..=self.domain);
            let len = rng.gen_range(self.payload.0..=self.payload.1);
            let payload: String = (0..len)
                .map(|_| rng.gen_range(b'a'..=b'z') as char)
                .collect();
            Tuple::new(vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(c),
                Value::Str(payload),
            ])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_parameters() {
        let s = TableSpec::paper();
        assert_eq!(s.rows, 500_000);
        assert_eq!(s.domain, 50_000);
        assert_eq!(s.covered_range(), (1, 5_000), "top 10% = values 1..5000");
        assert_eq!(s.schema().arity(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = TableSpec::scaled(100, 9);
        let a: Vec<Tuple> = s.tuples().collect();
        let b: Vec<Tuple> = s.tuples().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn values_respect_bounds() {
        let s = TableSpec::scaled(500, 3);
        for t in s.tuples() {
            for col in 0..3 {
                let v = t.get(col).unwrap().as_int().unwrap();
                assert!((1..=s.domain).contains(&v));
            }
            let p = t.get(3).unwrap().as_str().unwrap();
            assert!((s.payload.0..=s.payload.1).contains(&p.len()));
        }
    }

    #[test]
    fn payload_lengths_spread_over_range() {
        let s = TableSpec::scaled(2000, 5);
        let lens: Vec<usize> = s
            .tuples()
            .map(|t| t.get(3).unwrap().as_str().unwrap().len())
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min < 30, "short payloads occur (min {min})");
        assert!(max > 480, "long payloads occur (max {max})");
    }
}
