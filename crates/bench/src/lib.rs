//! Shared harness code for the figure-regeneration benches.
//!
//! Every bench target in this crate regenerates one table or figure of the
//! paper's evaluation. Benches run at the paper's full scale (500,000
//! tuples) by default; set `AIB_ROWS` to a smaller row count for quick
//! runs — the workload scales proportionally (see
//! [`aib_workload::TableSpec::scaled`]).

// aib-lint: allow-file(no-panic) — this crate is the bench driver, not
// engine code: setup failures (insert, index creation, query execution)
// must abort the run loudly rather than skew measured results.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, EngineConfig, Query, WorkloadRecorder};
use aib_index::{Coverage, IndexBackend};
use aib_storage::CostModel;
use aib_workload::{QuerySpec, TableSpec};

/// Name of the evaluation table in every experiment.
pub const TABLE: &str = "eval";

/// Resolves the experiment scale: the paper's 500 k rows, or `AIB_ROWS`.
pub fn table_spec() -> TableSpec {
    match std::env::var("AIB_ROWS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(rows) if rows < 500_000 => TableSpec::scaled(rows, 0xDA7A),
        _ => TableSpec::paper(),
    }
}

/// Default engine configuration for the experiments: a buffer pool sized to
/// ~1/18th of the table (8 MiB at paper scale), so table scans are
/// disk-bound — like the paper's 220 MB table against H2's page cache —
/// and the default SSD cost model. The ratio is preserved under `AIB_ROWS`
/// down-scaling so small runs show the same shapes.
pub fn engine_config_for(spec: &TableSpec, space: SpaceConfig) -> EngineConfig {
    // ~28 tuples per 8 KiB page at the paper's 1..512 payload.
    let approx_pages = (spec.rows / 28).max(1);
    EngineConfig {
        pool_frames: (approx_pages / 18).clamp(64, 1024) as usize,
        cost_model: CostModel::default(),
        space,
        ..Default::default()
    }
}

/// Builds the evaluation database: the paper's table with partial indexes
/// on the given columns covering the bottom 10 % of the domain, each with
/// an Index Buffer configured as `buffer`.
pub fn build_eval_db(
    spec: &TableSpec,
    engine: EngineConfig,
    buffer: Option<BufferConfig>,
    columns: &[&str],
) -> Database {
    let db = Database::new(engine);
    db.create_table(TABLE, spec.schema()).unwrap();
    for tuple in spec.tuples() {
        db.insert(TABLE, &tuple)
            .expect("generated tuples insert cleanly");
    }
    let (lo, hi) = spec.covered_range();
    for col in columns {
        db.create_partial_index(
            TABLE,
            col,
            Coverage::IntRange { lo, hi },
            IndexBackend::BTree,
            buffer,
        )
        .expect("index creation succeeds");
    }
    db
}

/// Runs a query stream, recording per-query metrics.
pub fn run_workload(db: &mut Database, queries: &[QuerySpec]) -> WorkloadRecorder {
    let mut recorder = WorkloadRecorder::new();
    for q in queries {
        recorder.record(
            &db.execute(&Query::point(TABLE, &q.column, q.value))
                .expect("experiment queries execute"),
        );
    }
    recorder
}

/// Prints a section header in harness output.
pub fn header(title: &str, detail: &str) {
    println!("\n=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
}

/// Times a closure, printing the elapsed wall time to stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1?}]", start.elapsed());
    out
}

/// Scales a paper-scale parameter (defined against 500,000 rows)
/// proportionally to the active table size, so `AIB_ROWS` runs keep the
/// same parameter-to-table ratios.
pub fn scale(spec: &TableSpec, paper_value: u64) -> u64 {
    ((paper_value as u128 * spec.rows as u128) / 500_000).max(1) as u64
}

/// Provenance stamp embedded in every `BENCH_*.json` the harness writes:
/// the git revision the numbers were measured at, the UTC wall time of the
/// run, and the bench-harness crate version. Rendered as a JSON object
/// value, for a top-level `"provenance": {...}` field.
///
/// Numbers without provenance go stale silently — a committed JSON that
/// predates a perf-relevant change looks exactly like one that postdates
/// it. The stamp makes "were these measured on this code?" a one-line
/// `git log` question.
pub fn provenance_json() -> String {
    format!(
        "{{ \"git_rev\": \"{}\", \"generated_utc\": \"{}\", \"harness_version\": \"{}\" }}",
        git_revision(),
        utc_timestamp(),
        env!("CARGO_PKG_VERSION")
    )
}

/// `git rev-parse HEAD` of the working tree, `"unknown"` when git is
/// unavailable (e.g. a source tarball).
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current UTC time as ISO-8601 (`2026-08-08T12:34:56Z`), derived from the
/// unix clock with civil-calendar math — the toolchain image carries no
/// date-time crate, and the stamp only needs second resolution.
fn utc_timestamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (days, tod) = (secs / 86_400, secs % 86_400);
    // Howard Hinnant's civil_from_days, valid for any unix day.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        tod / 3_600,
        (tod % 3_600) / 60,
        tod % 60
    )
}

/// Mean simulated query cost over records `[lo, hi)`.
pub fn mean_sim_us(rec: &WorkloadRecorder, lo: usize, hi: usize) -> f64 {
    let r = rec.records().get(lo..hi.min(rec.len())).unwrap_or_default();
    if r.is_empty() {
        return 0.0;
    }
    r.iter().map(|m| m.simulated_us()).sum::<u64>() as f64 / r.len() as f64
}
