//! Multi-client concurrency benchmark: read-query throughput as client
//! threads scale over the covered-fraction sweep, recorded in
//! `BENCH_concurrency.json` (see EXPERIMENTS.md).
//!
//! Two sections:
//!
//! 1. **single_client** — the exact `micro_scan` covered-fraction fixture
//!    (50k sequential rows, resident pool, zero-cost disk, buffer pinned
//!    empty) driven through a [`ClientHandle`] over `Arc<Database>`. Its
//!    numbers are directly comparable to `BENCH_scan.json`: the shared
//!    read path (catalog/space read locks + staged apply) must stay within
//!    noise of the pre-concurrency engine.
//!
//! 2. **scaling** — the same fixture under a disk that costs wall time:
//!    [`BufferPoolConfig::io_wait`] turns the cost model's `read_us` into a
//!    real (overlappable) stall per missed page, and the pool is shrunk
//!    below the unskippable page count so every query pays its misses.
//!    1/2/4/8 client threads then measure queries/sec. I/O-bound fractions
//!    scale near-linearly because clients overlap their stalls; the 100%
//!    fraction takes the lock-free snapshot fast path (no shard lock, no
//!    catalog contention) and is pure CPU, so its scaling ceiling is the
//!    host's core count — on a single-core host it reports ~1.0x however
//!    cheap the path is, which is why the JSON records `host_cpus`.
//!
//! 3. **contended** — the CPU-bound acceptance sweep for the snapshot-
//!    planned read path: `io_wait = false`, zero-cost disk, resident pool,
//!    50% and 90% skippable fractions at 1–8 threads, run once with
//!    `AdaptationApplyMode::Locked` (the PR 9 shard-write-lock baseline
//!    that plans every scan under an exclusive shard section) and once with
//!    the default planned mode (epoch-validated snapshot planning, no shard
//!    lock). `speedup_vs_locked` is the ratio at equal fraction/threads;
//!    the PR's acceptance bar is >=2x at 90% / 8 threads with <5%
//!    single-thread regression.
//!
//! The space runs with `shards = 4`, the PR's sharded configuration, so the
//! sweep exercises shard routing and the epoch-validated snapshot rather
//! than the degenerate single-shard layout.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aib_core::SpaceConfig;
use aib_engine::{AdaptationApplyMode, ClientHandle, Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};

const SWEEP_ROWS: i64 = 50_000;
const FRACTIONS: [u32; 4] = [0, 50, 90, 100];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SCALING_POOL_FRAMES: usize = 32;
const SHARDS: usize = 4;

/// The `micro_scan` covered-fraction fixture: sequential keys so the
/// `IntRange` partial index covers a contiguous page prefix, the Index
/// Buffer pinned empty so the skippable fraction never drifts, and the
/// probe key just past the covered range forcing the indexing-scan path.
fn build_fraction(
    pct: u32,
    cost: CostModel,
    pool_frames: usize,
    io_wait: bool,
    mode: AdaptationApplyMode,
) -> (Arc<Database>, i64) {
    let db = Database::new(EngineConfig {
        pool_frames,
        cost_model: cost,
        io_wait,
        adaptation_apply_mode: mode,
        space: SpaceConfig {
            max_bytes: Some(0),
            i_max: 1_000_000,
            seed: 3,
            shards: SHARDS,
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 1..=SWEEP_ROWS {
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(i), Value::from("x".repeat(64))]),
        )
        .unwrap();
    }
    let hi = pct as i64 * SWEEP_ROWS / 100;
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange { lo: 1, hi },
        IndexBackend::BTree,
        Some(aib_core::BufferConfig::default()),
    )
    .unwrap();
    (db.into_shared(), hi + 1)
}

// ---------------------------------------------------------------------------
// Section 1: single client through the shared path, micro_scan settings.
// ---------------------------------------------------------------------------

struct SinglePoint {
    skippable_pct: u32,
    wall_us: f64,
    pages_read: u32,
    pages_skipped: u32,
}

fn single_client_sweep(quick: bool) -> Vec<SinglePoint> {
    let iters = if quick { 3 } else { 25 };
    let mut points = Vec::new();
    println!("single-client sweep (shared path): {SWEEP_ROWS} rows, {iters} iters/fraction");
    println!(
        "{:>13} {:>12} {:>11} {:>13}",
        "skippable", "wall/query", "pages_read", "pages_skipped"
    );
    for pct in FRACTIONS {
        let (db, probe) = build_fraction(
            pct,
            CostModel::free(),
            1024,
            false,
            AdaptationApplyMode::default(),
        );
        let client = ClientHandle::new(Arc::clone(&db));
        for _ in 0..5 {
            black_box(client.execute(&Query::point("t", "k", probe)).unwrap());
        }
        let mut samples = Vec::with_capacity(iters);
        let mut pages_read = 0;
        let mut pages_skipped = 0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let out = client.execute(&Query::point("t", "k", probe)).unwrap();
            black_box(out.result.count());
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
            if let Some(scan) = &out.metrics.scan {
                pages_read = scan.pages_read;
                pages_skipped = scan.pages_skipped;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let wall_us = samples[samples.len() / 2];
        println!("{pct:>12}% {wall_us:>10.1}us {pages_read:>11} {pages_skipped:>13}");
        points.push(SinglePoint {
            skippable_pct: pct,
            wall_us,
            pages_read,
            pages_skipped,
        });
    }
    points
}

// ---------------------------------------------------------------------------
// Section 2: thread scaling against a disk that costs wall time.
// ---------------------------------------------------------------------------

struct ScalingPoint {
    skippable_pct: u32,
    threads: usize,
    queries: u64,
    wall_s: f64,
    qps: f64,
    scaling_x: f64,
}

/// Runs `n` client threads hammering the probe query for `dur`, returning
/// (completed queries, elapsed wall seconds).
fn run_clients(db: &Arc<Database>, probe: i64, n: usize, dur: Duration) -> (u64, f64) {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..n {
            let client = ClientHandle::new(Arc::clone(db));
            let stop = &stop;
            let total = &total;
            s.spawn(move || {
                let mut count = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let out = client.execute(&Query::point("t", "k", probe)).unwrap();
                    black_box(out.result.count());
                    count += 1;
                }
                total.fetch_add(count, Ordering::Relaxed);
            });
        }
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    (total.load(Ordering::Relaxed), t0.elapsed().as_secs_f64())
}

fn scaling_sweep(quick: bool) -> Vec<ScalingPoint> {
    let dur = Duration::from_millis(if quick { 250 } else { 1500 });
    let mut points = Vec::new();
    println!(
        "scaling sweep: read_us=100 wall-time stalls, pool={SCALING_POOL_FRAMES} frames, {}ms/point",
        dur.as_millis()
    );
    println!(
        "{:>13} {:>8} {:>9} {:>11} {:>10}",
        "skippable", "threads", "queries", "queries/s", "scaling"
    );
    for pct in FRACTIONS {
        let (db, probe) = build_fraction(
            pct,
            CostModel::default(),
            SCALING_POOL_FRAMES,
            true,
            AdaptationApplyMode::default(),
        );
        black_box(db.execute(&Query::point("t", "k", probe)).unwrap());
        let mut base_qps = 0.0;
        for n in THREADS {
            let (queries, wall_s) = run_clients(&db, probe, n, dur);
            let qps = queries as f64 / wall_s;
            if n == 1 {
                base_qps = qps;
            }
            let scaling_x = if base_qps > 0.0 { qps / base_qps } else { 0.0 };
            println!("{pct:>12}% {n:>8} {queries:>9} {qps:>11.1} {scaling_x:>9.2}x");
            points.push(ScalingPoint {
                skippable_pct: pct,
                threads: n,
                queries,
                wall_s,
                qps,
                scaling_x,
            });
        }
    }
    points
}

// ---------------------------------------------------------------------------
// Section 3: CPU-bound contention — planned reads vs. the locked baseline.
// ---------------------------------------------------------------------------

const CONTENDED_FRACTIONS: [u32; 2] = [50, 90];

struct ContendedPoint {
    skippable_pct: u32,
    threads: usize,
    locked_qps: f64,
    planned_qps: f64,
    speedup_vs_locked: f64,
}

/// CPU-bound sweep (`io_wait = false`, zero-cost disk, resident pool): with
/// no stalls to overlap, throughput is bounded by whatever serializes the
/// read path. Under `Locked`, that is the exclusive shard section every
/// scan plans inside; under the planned path, steady-state reads take no
/// shard lock at all, so the sweep isolates exactly the serialization this
/// PR removes.
fn contended_sweep(quick: bool) -> Vec<ContendedPoint> {
    let dur = Duration::from_millis(if quick { 250 } else { 1000 });
    // Oversubscribed CPU-bound runs are at the mercy of the scheduler;
    // the median of three interleaved repetitions filters the odd run
    // that lands across a timeslice storm.
    let reps = if quick { 1 } else { 3 };
    let mut points = Vec::new();
    println!(
        "contended sweep: io_wait=false, zero-cost disk, resident pool, {}ms/point, median of {reps}",
        dur.as_millis()
    );
    println!(
        "{:>13} {:>8} {:>13} {:>13} {:>9}",
        "skippable", "threads", "locked q/s", "planned q/s", "speedup"
    );
    for pct in CONTENDED_FRACTIONS {
        let (locked_db, probe) = build_fraction(
            pct,
            CostModel::free(),
            1024,
            false,
            AdaptationApplyMode::Locked,
        );
        let (planned_db, _) = build_fraction(
            pct,
            CostModel::free(),
            1024,
            false,
            AdaptationApplyMode::default(),
        );
        for db in [&locked_db, &planned_db] {
            for _ in 0..5 {
                black_box(db.execute(&Query::point("t", "k", probe)).unwrap());
            }
        }
        for n in THREADS {
            let mut locked_samples = Vec::with_capacity(reps);
            let mut planned_samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let (locked_q, locked_wall) = run_clients(&locked_db, probe, n, dur);
                let (planned_q, planned_wall) = run_clients(&planned_db, probe, n, dur);
                locked_samples.push(locked_q as f64 / locked_wall);
                planned_samples.push(planned_q as f64 / planned_wall);
            }
            locked_samples.sort_by(|a, b| a.total_cmp(b));
            planned_samples.sort_by(|a, b| a.total_cmp(b));
            let locked_qps = locked_samples[reps / 2];
            let planned_qps = planned_samples[reps / 2];
            let speedup_vs_locked = if locked_qps > 0.0 {
                planned_qps / locked_qps
            } else {
                0.0
            };
            println!(
                "{pct:>12}% {n:>8} {locked_qps:>13.1} {planned_qps:>13.1} {speedup_vs_locked:>8.2}x"
            );
            points.push(ContendedPoint {
                skippable_pct: pct,
                threads: n,
                locked_qps,
                planned_qps,
                speedup_vs_locked,
            });
        }
    }
    points
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

fn emit_bench_json(
    single: &[SinglePoint],
    scaling: &[ScalingPoint],
    contended: &[ContendedPoint],
    quick: bool,
) {
    let Ok(path) = std::env::var("AIB_CONCURRENCY_JSON") else {
        println!("(set AIB_CONCURRENCY_JSON=<path> to record BENCH_concurrency.json)");
        return;
    };
    let single_rows: Vec<String> = single
        .iter()
        .map(|p| {
            format!(
                "      {{ \"skippable_pct\": {}, \"wall_us\": {:.1}, \"pages_read\": {}, \"pages_skipped\": {} }}",
                p.skippable_pct, p.wall_us, p.pages_read, p.pages_skipped
            )
        })
        .collect();
    let scaling_rows: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                "      {{ \"skippable_pct\": {}, \"threads\": {}, \"queries\": {}, \"wall_s\": {:.3}, \"qps\": {:.1}, \"scaling_x\": {:.2} }}",
                p.skippable_pct, p.threads, p.queries, p.wall_s, p.qps, p.scaling_x
            )
        })
        .collect();
    let contended_rows: Vec<String> = contended
        .iter()
        .map(|p| {
            format!(
                "      {{ \"skippable_pct\": {}, \"threads\": {}, \"locked_qps\": {:.1}, \"planned_qps\": {:.1}, \"speedup_vs_locked\": {:.2} }}",
                p.skippable_pct, p.threads, p.locked_qps, p.planned_qps, p.speedup_vs_locked
            )
        })
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let provenance = aib_bench::provenance_json();
    let out = format!(
        "{{\n  \"bench\": \"micro_concurrency\",\n  \"provenance\": {provenance},\n  \"rows\": {SWEEP_ROWS},\n  \"shards\": {SHARDS},\n  \"host_cpus\": {host_cpus},\n  \"quick\": {quick},\n  \"single_client\": {{\n    \"note\": \"micro_scan fixture through ClientHandle; comparable to BENCH_scan.json\",\n    \"points\": [\n{}\n    ]\n  }},\n  \"scaling\": {{\n    \"note\": \"io_wait rows overlap their stalls and scale on any host; the 100% row is the lock-free fast path, pure CPU, so its ceiling is host_cpus (~1.0x on a single-core host)\",\n    \"read_us\": 100,\n    \"pool_frames\": {SCALING_POOL_FRAMES},\n    \"io_wait\": true,\n    \"points\": [\n{}\n    ]\n  }},\n  \"contended\": {{\n    \"note\": \"CPU-bound: Locked plans every scan under an exclusive shard section (shard-write-lock baseline); planned is the epoch-validated snapshot path with no shard lock on steady-state reads. Throughput ratios are meaningful up to host_cpus threads.\",\n    \"io_wait\": false,\n    \"pool_frames\": 1024,\n    \"points\": [\n{}\n    ]\n  }}\n}}\n",
        single_rows.join(",\n"),
        scaling_rows.join(",\n"),
        contended_rows.join(",\n")
    );
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test");
    let single = single_client_sweep(quick);
    let scaling = scaling_sweep(quick);
    let contended = contended_sweep(quick);
    emit_bench_json(&single, &scaling, &contended, quick);
}
