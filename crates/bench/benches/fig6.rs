//! Figure 6 — Experiment 1: a single Index Buffer with unlimited space.
//!
//! Paper setup: queries on column A only, uncovered values, Index Buffer
//! Space unlimited, `I^MAX = 5,000`, `P = 10,000`, 200 queries. Reported
//! per query: runtime (simulated I/O time and wall time), Index Buffer
//! entries, pages skipped. Baselines: the same queries as plain table scans
//! (no buffer) and as full-index scans ("runtime without table scan").
//!
//! Expected shape (paper): the first couple of queries run slightly longer
//! than a plain scan (indexing overhead); execution time then drops below
//! scan level quickly and reaches index-scan level once all pages are
//! indexed ("after 20 queries" at the paper's page size; earlier here since
//! 8 KiB pages hold more tuples — see EXPERIMENTS.md).

use aib_bench::{
    build_eval_db, engine_config_for, header, mean_sim_us, run_workload, scale, table_spec, timed,
    TABLE,
};
use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, Query, WorkloadRecorder};
use aib_index::{Coverage, IndexBackend};
use aib_workload::{experiment1_queries, PAPER_QUERIES};

fn main() {
    let spec = table_spec();
    let queries = experiment1_queries(&spec, PAPER_QUERIES, 61);
    let i_max = scale(&spec, 5_000) as u32;
    let space = SpaceConfig {
        max_bytes: None,
        i_max,
        seed: 6,
        ..Default::default()
    };

    header(
        "Figure 6: single Index Buffer, unlimited space",
        &format!(
            "rows={} domain={} I_MAX={} P=10000 queries={}",
            spec.rows,
            spec.domain,
            i_max,
            queries.len()
        ),
    );

    // Buffered run.
    let mut db = timed("populate buffered db", || {
        build_eval_db(
            &spec,
            engine_config_for(&spec, space),
            Some(BufferConfig::default()),
            &["A"],
        )
    });
    let recorder = timed("run buffered workload", || run_workload(&mut db, &queries));

    // Plain-scan baseline: partial index without a buffer.
    let mut scan_db = timed("populate scan-baseline db", || {
        build_eval_db(&spec, engine_config_for(&spec, space), None, &["A"])
    });
    let scan_rec = timed("run scan baseline", || run_workload(&mut scan_db, &queries));

    // Index-scan baseline ("runtime without table scan"): a full secondary
    // index over the whole domain answers every query.
    let ix_db = timed("populate index-baseline db", || {
        let db = Database::new(engine_config_for(&spec, space));
        db.create_table(TABLE, spec.schema()).unwrap();
        for t in spec.tuples() {
            db.insert(TABLE, &t).unwrap();
        }
        db.create_partial_index(TABLE, "A", Coverage::All, IndexBackend::BTree, None)
            .unwrap();
        db
    });
    let ix_rec = timed("run index baseline", || {
        let mut rec = WorkloadRecorder::new();
        for q in &queries {
            rec.record(
                &ix_db
                    .execute(&Query::point(TABLE, &q.column, q.value))
                    .unwrap(),
            );
        }
        rec
    });

    println!(
        "query,buffered_sim_us,buffered_wall_us,scan_sim_us,scan_wall_us,index_sim_us,entries,pages_skipped,pages_read"
    );
    for i in 0..queries.len() {
        let b = &recorder.records()[i];
        let s = &scan_rec.records()[i];
        let x = &ix_rec.records()[i];
        println!(
            "{},{},{},{},{},{},{},{},{}",
            i,
            b.simulated_us(),
            b.wall.as_micros(),
            s.simulated_us(),
            s.wall.as_micros(),
            x.simulated_us(),
            b.buffer_entries.first().copied().unwrap_or(0),
            b.pages_skipped(),
            b.scan.as_ref().map_or(0, |s| s.pages_read),
        );
    }

    // Shape summary against the paper's claims. The first-query overhead is
    // in-memory insertion work, visible in wall time (simulated I/O is
    // identical to the plain scan by construction).
    let wall = |rec: &WorkloadRecorder, i: usize| rec.records()[i].wall.as_micros() as f64;
    println!(
        "\n# shape: first query buffered/scan wall time = {:.2}x (paper: slightly above 1)",
        wall(&recorder, 0) / wall(&scan_rec, 0)
    );
    let late_buf = mean_sim_us(&recorder, 150, 200);
    let late_scan = mean_sim_us(&scan_rec, 150, 200);
    let late_ix = mean_sim_us(&ix_rec, 150, 200);
    println!(
        "# shape: late queries buffered/scan = {:.4}x (paper: far below 1)",
        late_buf / late_scan
    );
    println!(
        "# shape: late buffered ({:.0}us) and index-scan ({:.0}us) are both <0.1% of the plain scan ({:.0}us) (paper: buffered reaches index-scan level)",
        late_buf, late_ix, late_scan
    );
    let total_pages = db.table(TABLE).unwrap().num_pages();
    let fully = recorder.records().last().unwrap().pages_skipped();
    println!("# shape: final skipped/total pages = {fully}/{total_pages}");
}
