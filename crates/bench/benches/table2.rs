//! Table II — the LRU-K history operations of the Index Buffer Space.
//!
//! Regenerates the paper's matrix by driving two live Index Buffers through
//! both query outcomes and printing the resulting histories:
//!
//! |                      | buffer B of queried column      | other buffers B'   |
//! |----------------------|---------------------------------|--------------------|
//! | partial index hit    | `H_B[0]++`                      | `H_B'[0]++`        |
//! | no partial index hit | `shift(H_B, +1); H_B[0] = 0`    | `H_B'[0]++`        |

use aib_bench::header;
use aib_core::{BufferConfig, IndexBufferSpace, SpaceConfig};

fn history_of(space: &IndexBufferSpace, id: usize) -> Vec<u64> {
    space.buffer(id).history().intervals().collect()
}

fn main() {
    header(
        "Table II: LRU-K operations on Index Buffer histories",
        "two buffers; K = 3; queried column = buffer 0",
    );

    let mut space = IndexBufferSpace::new(SpaceConfig::default());
    let cfg = BufferConfig {
        history_k: 3,
        ..Default::default()
    };
    let b = space.register("B (queried)", cfg, Vec::new());
    let b_other = space.register("B' (other)", cfg, Vec::new());

    println!("{:<44} {:<18} {:<18}", "event", "H_B", "H_B'");
    let show = |label: &str, space: &IndexBufferSpace| {
        println!(
            "{:<44} {:<18} {:<18}",
            label,
            format!("{:?}", history_of(space, b)),
            format!("{:?}", history_of(space, b_other)),
        );
    };

    show("initial (never used)", &space);
    space.on_query(Some(b), false);
    show("no hit on B's column: shift(H_B), H_B[0]=0", &space);
    space.on_query(Some(b), true);
    show("hit on B's column: H_B[0]++, H_B'[0]++", &space);
    space.on_query(Some(b), true);
    show("hit on B's column: H_B[0]++, H_B'[0]++", &space);
    space.on_query(Some(b_other), false);
    show("no hit on B''s column: B shifts? no - ticks", &space);
    space.on_query(Some(b), false);
    show("no hit on B's column: shift(H_B), H_B[0]=0", &space);
    space.on_query(Some(b), false);
    show("no hit on B's column: shift(H_B), H_B[0]=0", &space);
    space.on_query(Some(b), false);
    show("no hit (4th use): oldest interval falls off K=3", &space);

    println!(
        "\n# mean access intervals: T_B = {:?}, T_B' = {:?}",
        space.buffer(b).history().mean_interval(),
        space.buffer(b_other).history().mean_interval()
    );
    println!(
        "# benefit factors (T^-1): B = {:.3}, B' = {:.3} (frequently used buffers are worth more)",
        space.buffer(b).use_frequency(),
        space.buffer(b_other).use_frequency()
    );
}
