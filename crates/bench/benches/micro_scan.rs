//! Criterion microbenchmarks of the scan paths: plain table scan vs. the
//! Algorithm-1 indexing scan at cold, warming, and fully buffered states,
//! plus the covered-fraction sweep that records the scan fast-path
//! trajectory in `BENCH_scan.json` (see EXPERIMENTS.md).

use std::time::Instant;

use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};
use criterion::{black_box, criterion_group, Criterion};

const ROWS: i64 = 50_000;
const DOMAIN: i64 = 5_000;

fn build(buffered: bool) -> Database {
    let db = Database::new(aib_engine::EngineConfig {
        pool_frames: 256,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: None,
            i_max: 1_000_000,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let mut x = 0x12345u64;
    for _ in 0..ROWS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % DOMAIN as u64) as i64 + 1;
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(k), Value::from("x".repeat(64))]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 1,
            hi: DOMAIN / 10,
        },
        IndexBackend::BTree,
        buffered.then(BufferConfig::default),
    )
    .unwrap();
    db
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_uncovered_value");
    group.sample_size(20);

    // Plain scan: no buffer, every query reads every page.
    let plain = build(false);
    group.bench_function("plain_scan", |b| {
        b.iter(|| {
            let (r, _) = plain
                .execute(&Query::point("t", "k", 4_000i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });

    // Fully buffered: warm up once, then every scan skips everything.
    let warm = build(true);
    warm.execute(&Query::point("t", "k", 4_000i64)).unwrap();
    group.bench_function("buffered_scan_warm", |b| {
        b.iter(|| {
            let (r, _) = warm
                .execute(&Query::point("t", "k", 4_001i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });

    // Index hit for reference.
    group.bench_function("partial_index_hit", |b| {
        b.iter(|| {
            let (r, _) = warm
                .execute(&Query::point("t", "k", 100i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });

    group.finish();
}

fn bench_first_indexing_scan(c: &mut Criterion) {
    // The cold first scan pays the buffer build-up: measure its overhead
    // relative to the plain scan (paper: "slightly longer runtime").
    let mut group = c.benchmark_group("first_indexing_scan");
    group.sample_size(10);
    group.bench_function("cold_buffered_scan", |b| {
        b.iter_with_setup(build_cold, |db| {
            let (r, _) = db
                .execute(&Query::point("t", "k", 4_000i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });
    group.finish();
}

fn build_cold() -> Database {
    build(true)
}

// ---------------------------------------------------------------------------
// Covered-fraction sweep: one measurement per skippable-page fraction.
//
// Keys are inserted sequentially (1..=SWEEP_ROWS) so an `IntRange` partial
// index covers a contiguous *prefix of pages*; with the Index Buffer budget
// pinned to zero entries, the skippable fraction stays exactly at the
// configured percentage across queries. Each query probes the first
// uncovered key, forcing the indexing-scan path over the remaining pages.
// ---------------------------------------------------------------------------

const SWEEP_ROWS: i64 = 50_000;
const FRACTIONS: [u32; 4] = [0, 50, 90, 100];

/// One row of the covered-fraction sweep.
struct SweepPoint {
    skippable_pct: u32,
    wall_us: f64,
    pages_read: u32,
    pages_skipped: u32,
    rows_per_sec: f64,
}

fn build_fraction(pct: u32) -> (Database, i64) {
    let db = Database::new(aib_engine::EngineConfig {
        pool_frames: 1024, // whole table resident: measures scan CPU cost
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: Some(0), // buffer pinned empty: stable skip fraction
            i_max: 1_000_000,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 1..=SWEEP_ROWS {
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(i), Value::from("x".repeat(64))]),
        )
        .unwrap();
    }
    let hi = pct as i64 * SWEEP_ROWS / 100;
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange { lo: 1, hi },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    (db, hi + 1)
}

fn covered_fraction_sweep(quick: bool) -> Vec<SweepPoint> {
    let iters = if quick { 3 } else { 25 };
    let mut points = Vec::new();
    println!("covered-fraction sweep: {SWEEP_ROWS} rows, {iters} iters/fraction");
    println!(
        "{:>13} {:>12} {:>11} {:>13} {:>14}",
        "skippable", "wall/query", "pages_read", "pages_skipped", "rows/sec"
    );
    for pct in FRACTIONS {
        let (db, probe) = build_fraction(pct);
        for _ in 0..2 {
            let (r, _) = db
                .execute(&Query::point("t", "k", probe))
                .unwrap()
                .into_parts();
            black_box(r.count());
        }
        let mut samples = Vec::with_capacity(iters);
        let mut pages_read = 0;
        let mut pages_skipped = 0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let (r, m) = db
                .execute(&Query::point("t", "k", probe))
                .unwrap()
                .into_parts();
            black_box(r.count());
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
            if let Some(scan) = &m.scan {
                pages_read = scan.pages_read;
                pages_skipped = scan.pages_skipped;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let wall_us = samples[samples.len() / 2];
        let scanned_rows = SWEEP_ROWS as f64 * (100 - pct) as f64 / 100.0;
        let rows_per_sec = if wall_us > 0.0 {
            scanned_rows / (wall_us / 1e6)
        } else {
            0.0
        };
        println!("{pct:>12}% {wall_us:>10.1}us {pages_read:>11} {pages_skipped:>13} {rows_per_sec:>14.0}");
        points.push(SweepPoint {
            skippable_pct: pct,
            wall_us,
            pages_read,
            pages_skipped,
            rows_per_sec,
        });
    }
    points
}

fn points_json(points: &[SweepPoint], indent: &str) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{indent}  {{ \"skippable_pct\": {}, \"wall_us\": {:.1}, \"pages_read\": {}, \"pages_skipped\": {}, \"rows_per_sec\": {:.0} }}",
                p.skippable_pct, p.wall_us, p.pages_read, p.pages_skipped, p.rows_per_sec
            )
        })
        .collect();
    format!("[\n{}\n{indent}]", rows.join(",\n"))
}

/// Extracts the `"<key>": { ... }` object from previously emitted JSON by
/// brace counting (our own output contains no braces inside strings).
fn extract_object(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let open = json[at..].find('{')? + at;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn emit_bench_json(points: &[SweepPoint], quick: bool) {
    let Ok(path) = std::env::var("AIB_SCAN_JSON") else {
        println!("(set AIB_SCAN_JSON=<path> to record the sweep in BENCH_scan.json)");
        return;
    };
    let current = format!(
        "{{\n    \"label\": \"covered-fraction sweep\",\n    \"quick\": {quick},\n    \"points\": {}\n  }}",
        points_json(points, "    ")
    );
    // Preserve the recorded pre-PR baseline across regenerations; a fresh
    // file records the present numbers as its own first trajectory point.
    let baseline = std::fs::read_to_string(&path)
        .ok()
        .and_then(|old| extract_object(&old, "baseline"))
        .unwrap_or_else(|| current.clone());
    let provenance = aib_bench::provenance_json();
    let out = format!(
        "{{\n  \"bench\": \"micro_scan covered-fraction sweep\",\n  \"provenance\": {provenance},\n  \"rows\": {SWEEP_ROWS},\n  \"fractions_pct\": [0, 50, 90, 100],\n  \"baseline\": {baseline},\n  \"current\": {current}\n}}\n"
    );
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_scans, bench_first_indexing_scan);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test");
    let sweep_only = args.iter().any(|a| a == "--sweep-only");
    let points = covered_fraction_sweep(quick);
    emit_bench_json(&points, quick);
    if !sweep_only {
        benches();
    }
}
