//! Criterion microbenchmarks of the scan paths: plain table scan vs. the
//! Algorithm-1 indexing scan at cold, warming, and fully buffered states.

use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const ROWS: i64 = 50_000;
const DOMAIN: i64 = 5_000;

fn build(buffered: bool) -> Database {
    let mut db = Database::new(aib_engine::EngineConfig {
        pool_frames: 256,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_entries: None,
            i_max: 1_000_000,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let mut x = 0x12345u64;
    for _ in 0..ROWS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % DOMAIN as u64) as i64 + 1;
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(k), Value::from("x".repeat(64))]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 1,
            hi: DOMAIN / 10,
        },
        IndexBackend::BTree,
        buffered.then(BufferConfig::default),
    )
    .unwrap();
    db
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_uncovered_value");
    group.sample_size(20);

    // Plain scan: no buffer, every query reads every page.
    let mut plain = build(false);
    group.bench_function("plain_scan", |b| {
        b.iter(|| {
            let (r, _) = plain
                .execute(&Query::point("t", "k", 4_000i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });

    // Fully buffered: warm up once, then every scan skips everything.
    let mut warm = build(true);
    warm.execute(&Query::point("t", "k", 4_000i64)).unwrap();
    group.bench_function("buffered_scan_warm", |b| {
        b.iter(|| {
            let (r, _) = warm
                .execute(&Query::point("t", "k", 4_001i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });

    // Index hit for reference.
    group.bench_function("partial_index_hit", |b| {
        b.iter(|| {
            let (r, _) = warm
                .execute(&Query::point("t", "k", 100i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });

    group.finish();
}

fn bench_first_indexing_scan(c: &mut Criterion) {
    // The cold first scan pays the buffer build-up: measure its overhead
    // relative to the plain scan (paper: "slightly longer runtime").
    let mut group = c.benchmark_group("first_indexing_scan");
    group.sample_size(10);
    group.bench_function("cold_buffered_scan", |b| {
        b.iter_with_setup(build_cold, |mut db| {
            let (r, _) = db
                .execute(&Query::point("t", "k", 4_000i64))
                .unwrap()
                .into_parts();
            black_box(r.count())
        })
    });
    group.finish();
}

fn build_cold() -> Database {
    build(true)
}

criterion_group!(benches, bench_scans, bench_first_indexing_scan);
criterion_main!(benches);
