//! Durability benchmark: what a durable insert costs under group commit,
//! recorded in `BENCH_durability.json` (see EXPERIMENTS.md).
//!
//! The sweep crosses **writer threads ∈ {1, 2, 4, 8}** with the
//! **group-commit window** (`EngineConfig::group_commit_wait_us`). Each
//! cell opens a fresh file-backed database, races `writers` client threads
//! over disjoint key ranges, and reports:
//!
//! * `per_op_us` — wall time per acked insert (every ack waited for its
//!   covering fsync, so this is real durable latency, not throughput
//!   bookkeeping);
//! * `amortization` — WAL records per fsync (`Wal::syncs` delta), the
//!   direct measure of how many commits each `sync_data` covered.
//!
//! Two calibration rows ride along: the single-writer `window = 0` cell is
//! bit-for-bit the pre-group-commit fsync-per-record path (the ISSUE's
//! "within 10% of today's" check), and an `execute_batch` cell shows a
//! single client amortizing through the batched DML entry point instead of
//! through concurrency.
//!
//! Like `micro_recovery`, this bench touches a real file system: absolute
//! numbers are machine-local (the JSON records `host_cpus`), ratios are
//! the story.

use std::path::PathBuf;
use std::time::Instant;

use aib_engine::{BatchOp, Database, EngineConfig};
use aib_storage::{Column, Schema, Tuple, Value};

const OPS_PER_WRITER_FULL: i64 = 256;
const OPS_PER_WRITER_QUICK: i64 = 48;

/// Writer-thread counts the ISSUE names.
const WRITERS: &[usize] = &[1, 2, 4, 8];

/// Group-commit windows (µs). 0 is the fsync-per-record baseline; the
/// nonzero windows trade leader latency for batch size (and past the
/// restage time of the writer cohort, they only add latency).
const WINDOWS_US: &[u64] = &[0, 15, 50, 200];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("aib-durability-bench-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(window_us: u64) -> EngineConfig {
    EngineConfig {
        pool_frames: 1024,
        scan_threads: 1,
        group_commit_wait_us: window_us,
        // Keep periodic rotation out of the measurement.
        wal_checkpoint_interval: u64::MAX,
        ..Default::default()
    }
}

fn schema() -> Schema {
    Schema::new(vec![Column::int("k"), Column::str("pad")])
}

fn tuple(k: i64) -> Tuple {
    Tuple::new(vec![Value::Int(k), Value::from("x".repeat(64))])
}

struct Point {
    writers: usize,
    window_us: u64,
    ops: i64,
    per_op_us: f64,
    records: u64,
    fsyncs: u64,
}

impl Point {
    fn amortization(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.records as f64 / self.fsyncs as f64
        }
    }
}

/// One sweep cell: `writers` threads each ack `ops_per_writer` durable
/// inserts on disjoint key ranges.
fn measure(writers: usize, window_us: u64, ops_per_writer: i64) -> Point {
    let dir = TempDir::new(&format!("w{writers}-u{window_us}"));
    let db = Database::open(&dir.0, config(window_us))
        .unwrap()
        .into_shared();
    db.create_table("t", schema()).unwrap();
    let records_before = db.wal_records_written();
    let fsyncs_before = db.wal_fsyncs();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let db = db.clone();
            s.spawn(move || {
                let base = w as i64 * 1_000_000;
                for i in 0..ops_per_writer {
                    db.insert("t", &tuple(base + i)).unwrap();
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let ops = writers as i64 * ops_per_writer;
    let point = Point {
        writers,
        window_us,
        ops,
        per_op_us: elapsed * 1e6 / ops as f64,
        records: db.wal_records_written() - records_before,
        fsyncs: db.wal_fsyncs() - fsyncs_before,
    };
    Database::close(std::sync::Arc::into_inner(db).unwrap()).unwrap();
    point
}

/// Single-client amortization through `execute_batch` (one ticket, one
/// covering fsync per batch).
fn measure_batched(ops: i64, batch: usize) -> Point {
    let dir = TempDir::new("batched");
    let db = Database::open(&dir.0, config(0)).unwrap();
    db.create_table("t", schema()).unwrap();
    let records_before = db.wal_records_written();
    let fsyncs_before = db.wal_fsyncs();

    let t0 = Instant::now();
    let mut k = 0i64;
    while k < ops {
        let chunk: Vec<BatchOp> = (k..(k + batch as i64).min(ops))
            .map(|i| BatchOp::Insert {
                table: "t".into(),
                tuple: tuple(i),
            })
            .collect();
        k += chunk.len() as i64;
        db.execute_batch(&chunk).unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let point = Point {
        writers: 1,
        window_us: 0,
        ops,
        per_op_us: elapsed * 1e6 / ops as f64,
        records: db.wal_records_written() - records_before,
        fsyncs: db.wal_fsyncs() - fsyncs_before,
    };
    db.close().unwrap();
    point
}

fn emit_bench_json(points: &[Point], batched: &Point, batch: usize, quick: bool) {
    let Ok(path) = std::env::var("AIB_DURABILITY_JSON") else {
        println!("(set AIB_DURABILITY_JSON=<path> to record BENCH_durability.json)");
        return;
    };
    let row = |p: &Point| {
        format!(
            "      {{ \"writers\": {}, \"window_us\": {}, \"ops\": {}, \"per_op_us\": {:.1}, \"records\": {}, \"fsyncs\": {}, \"amortization\": {:.1} }}",
            p.writers,
            p.window_us,
            p.ops,
            p.per_op_us,
            p.records,
            p.fsyncs,
            p.amortization()
        )
    };
    let rows: Vec<String> = points.iter().map(row).collect();
    let baseline = points
        .iter()
        .find(|p| p.writers == 1 && p.window_us == 0)
        .expect("sweep covers the single-writer window=0 baseline");
    let best = points
        .iter()
        .filter(|p| p.writers == 8)
        .min_by(|a, b| a.per_op_us.total_cmp(&b.per_op_us))
        .expect("sweep covers 8 writers");
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let provenance = aib_bench::provenance_json();
    let out = format!(
        "{{\n  \"bench\": \"micro_durability\",\n  \"provenance\": {provenance},\n  \"host_cpus\": {host_cpus},\n  \"quick\": {quick},\n  \"note\": \"per_op_us is acked durable-insert latency (ack waits for the covering fsync); amortization is WAL records per sync_data\",\n  \"sweep\": {{\n    \"note\": \"writer threads x group-commit window; window 0 with one writer is the fsync-per-record baseline\",\n    \"points\": [\n{}\n    ]\n  }},\n  \"single_writer_window0_us\": {:.1},\n  \"eight_writers_best_us\": {:.1},\n  \"speedup_8_writers\": {:.1},\n  \"execute_batch\": {{\n    \"note\": \"single client, batches of {batch} through ClientHandle::execute_batch — one ticket, one covering fsync per batch\",\n    \"point\":\n{}\n  }}\n}}\n",
        rows.join(",\n"),
        baseline.per_op_us,
        best.per_op_us,
        if best.per_op_us > 0.0 {
            baseline.per_op_us / best.per_op_us
        } else {
            0.0
        },
        row(batched),
    );
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test");
    let ops_per_writer = if quick {
        OPS_PER_WRITER_QUICK
    } else {
        OPS_PER_WRITER_FULL
    };
    println!(
        "durability bench: {ops_per_writer} acked inserts per writer, \
         file-backed engine in a temp dir"
    );
    println!(
        "{:>8} {:>10} {:>8} {:>10} {:>8} {:>7} {:>12}",
        "writers", "window_us", "ops", "per_op_us", "records", "fsyncs", "amortization"
    );

    let mut points = Vec::new();
    for &window_us in WINDOWS_US {
        for &writers in WRITERS {
            let p = measure(writers, window_us, ops_per_writer);
            println!(
                "{:>8} {:>10} {:>8} {:>10.1} {:>8} {:>7} {:>12.1}",
                p.writers,
                p.window_us,
                p.ops,
                p.per_op_us,
                p.records,
                p.fsyncs,
                p.amortization()
            );
            points.push(p);
        }
    }

    let batch = 64usize;
    let batched = measure_batched(8 * ops_per_writer, batch);
    println!(
        "execute_batch({batch}): {:.1}us/op, {} records over {} fsyncs ({:.1}x)",
        batched.per_op_us,
        batched.records,
        batched.fsyncs,
        batched.amortization()
    );

    emit_bench_json(&points, &batched, batch, quick);
}
