//! Table I — the 16 Index Buffer maintenance cases.
//!
//! Regenerates the paper's maintenance matrix by *executing* each case
//! against a live partial index / Index Buffer / counter fixture and
//! printing the primitive operations actually performed. The printed matrix
//! must match the paper's Table I row for row.

use aib_bench::header;
use aib_core::{maintain, BufferConfig, IndexBuffer, MaintAction, PageCounters, TupleRef};
use aib_index::{Coverage, IndexBackend, PartialIndex};
use aib_storage::{Rid, Value};

/// Builds the fixture: coverage `< 100`; pages 0 (buffered) and 2
/// (unbuffered), pre-seeded so every case's preconditions hold.
fn fixture() -> (PartialIndex, IndexBuffer, PageCounters) {
    let mut partial = PartialIndex::new(
        "col",
        Coverage::IntRange { lo: 0, hi: 99 },
        IndexBackend::BTree,
    );
    let mut buffer = IndexBuffer::new(0, "col", BufferConfig::default());
    buffer.index_page(0, vec![(Value::Int(500), Rid::new(0, 0))]);
    buffer.index_page(1, vec![(Value::Int(501), Rid::new(1, 0))]);
    let counters = PageCounters::from_counts(vec![0, 0, 5, 5]);
    // Seed entries whose removal the covered-old cases need.
    partial.add(Value::Int(1), Rid::new(0, 1));
    partial.add(Value::Int(2), Rid::new(2, 1));
    (partial, buffer, counters)
}

fn fmt_actions(actions: &[MaintAction]) -> String {
    if actions.is_empty() {
        return "-".to_owned();
    }
    actions
        .iter()
        .map(|a| match a {
            MaintAction::IxUpdate => "IX.Update(t_old,t_new)",
            MaintAction::IxRemove => "IX.Remove(t_old)",
            MaintAction::IxAdd => "IX.Add(t_new)",
            MaintAction::BAdd => "B.Add(t_new)",
            MaintAction::BRemove => "B.Remove(t_old)",
            MaintAction::BUpdate => "B.Update(t_old,t_new)",
            MaintAction::DecOld => "C[p_old]--",
            MaintAction::IncNew => "C[p_new]++",
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    header(
        "Table I: Index Buffer maintenance",
        "executed case by case; covered = value < 100; page 0 ∈ B, page 2 ∉ B",
    );

    // The old tuple per (old∈IX?) and the new tuple per (new∈IX?); pages per
    // (p∈B?). Buffered page = 0, unbuffered = 2. Rids/slots are chosen to
    // reference the pre-seeded fixture entries.
    let old_tuple = |in_ix: bool, buffered: bool| {
        let page = if buffered { 0 } else { 2 };
        // Covered old tuples reference the pre-seeded partial-index entries
        // (value 1 on page 0, value 2 on page 2); the uncovered buffered old
        // tuple is the pre-seeded buffer entry (value 500 at slot 0).
        let (value, slot) = match (in_ix, buffered) {
            (true, true) => (1, 1),
            (true, false) => (2, 1),
            (false, _) => (500, 0),
        };
        TupleRef::new(Value::Int(value), Rid::new(page, slot), page)
    };
    let new_tuple = |in_ix: bool, buffered: bool| {
        let page = if buffered { 1 } else { 3 };
        let value = if in_ix { 7 } else { 700 };
        TupleRef::new(Value::Int(value), Rid::new(page, 9), page)
    };

    println!(
        "{:<28} {:<28} {:<12} {:<12} => operations",
        "t_old", "t_new", "p_old", "p_new"
    );
    for &(old_ix, new_ix) in &[(true, true), (true, false), (false, true), (false, false)] {
        for &(old_b, new_b) in &[(true, true), (true, false), (false, true), (false, false)] {
            let (mut partial, mut buffer, mut counters) = fixture();
            let old = old_tuple(old_ix, old_b);
            let new = new_tuple(new_ix, new_b);
            let actions = maintain(
                &mut partial,
                &mut buffer,
                &mut counters,
                Some(old),
                Some(new),
            )
            .unwrap();
            println!(
                "{:<28} {:<28} {:<12} {:<12} => {}",
                if old_ix {
                    "t_old ∈ IX"
                } else {
                    "t_old ∉ IX"
                },
                if new_ix {
                    "t_new ∈ IX"
                } else {
                    "t_new ∉ IX"
                },
                if old_b { "p_old ∈ B" } else { "p_old ∉ B" },
                if new_b { "p_new ∈ B" } else { "p_new ∉ B" },
                fmt_actions(&actions)
            );
            buffer.check_invariants();
        }
    }

    println!("\n# degenerate rows (insert: no t_old; delete: no t_new)");
    for &(new_ix, new_b) in &[(true, false), (false, true), (false, false)] {
        let (mut partial, mut buffer, mut counters) = fixture();
        let new = new_tuple(new_ix, new_b);
        let actions = maintain(&mut partial, &mut buffer, &mut counters, None, Some(new)).unwrap();
        println!(
            "INSERT {:<20} {:<12} => {}",
            if new_ix {
                "t_new ∈ IX"
            } else {
                "t_new ∉ IX"
            },
            if new_b { "p_new ∈ B" } else { "p_new ∉ B" },
            fmt_actions(&actions)
        );
    }
    for &(old_ix, old_b) in &[(true, false), (false, true), (false, false)] {
        let (mut partial, mut buffer, mut counters) = fixture();
        let old = old_tuple(old_ix, old_b);
        let actions = maintain(&mut partial, &mut buffer, &mut counters, Some(old), None).unwrap();
        println!(
            "DELETE {:<20} {:<12} => {}",
            if old_ix {
                "t_old ∈ IX"
            } else {
                "t_old ∉ IX"
            },
            if old_b { "p_old ∈ B" } else { "p_old ∉ B" },
            fmt_actions(&actions)
        );
    }
}
