//! Figure 8 — Experiment 3: three Index Buffers competing for bounded
//! space under a shifting query mix.
//!
//! Paper setup: 200 queries over columns A, B, C with mix 1/2:1/3:1/6
//! flipping to 1/6:1/3:1/2 at query 100; `L = 800,000` entries,
//! `I^MAX = 5,000`, `P = 10,000`.
//!
//! Expected shape: in the first period A's buffer holds more than half the
//! space and B most of the rest; after the flip, C rapidly grows to roughly
//! 55 % of the space and A practically shrinks to zero.

use aib_bench::{build_eval_db, engine_config_for, header, run_workload, scale, table_spec, timed};
use aib_core::{BufferConfig, SpaceConfig};
use aib_storage::DEFAULT_ENTRY_FOOTPRINT;
use aib_workload::{experiment3_queries, PAPER_QUERIES, SWITCH_AT};

fn main() {
    let spec = table_spec();
    let queries = experiment3_queries(&spec, PAPER_QUERIES, 83);
    let l = scale(&spec, 800_000) as usize;
    let i_max = scale(&spec, 5_000) as u32;
    let p = scale(&spec, 10_000) as u32;

    header(
        "Figure 8: three Index Buffers with limited space, shifting mix",
        &format!(
            "rows={} L={} I_MAX={} P={} mix A:B:C = 1/2:1/3:1/6 -> 1/6:1/3:1/2 at {}",
            spec.rows, l, i_max, p, SWITCH_AT
        ),
    );

    // The paper does not state its LRU-K depth; deeper histories give
    // stabler interval estimates (see EXPERIMENTS.md). Override with AIB_K.
    let k = std::env::var("AIB_K")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let space = SpaceConfig {
        max_bytes: Some(l * DEFAULT_ENTRY_FOOTPRINT),
        i_max,
        seed: 8,
        ..Default::default()
    };
    let buffer = BufferConfig {
        partition_pages: p,
        history_k: k,
        ..Default::default()
    };
    let mut db = timed("populate db (3 indexed columns)", || {
        build_eval_db(
            &spec,
            engine_config_for(&spec, space),
            Some(buffer),
            &["A", "B", "C"],
        )
    });
    let recorder = timed("run workload", || run_workload(&mut db, &queries));

    println!("query,column,entries_A,entries_B,entries_C,total");
    for (i, (r, q)) in recorder.records().iter().zip(&queries).enumerate() {
        let e = &r.buffer_entries;
        println!(
            "{},{},{},{},{},{}",
            i,
            q.column,
            e[0],
            e[1],
            e[2],
            e.iter().sum::<usize>()
        );
    }

    // Shape summary.
    let at = |i: usize| &recorder.records()[i.min(recorder.len() - 1)].buffer_entries;
    let p1 = at(SWITCH_AT - 1);
    let p2 = at(recorder.len() - 1);
    let share = |e: &Vec<usize>, i: usize| e[i] as f64 / l as f64;
    println!("\n# shape: end of period 1: A={:.0}% B={:.0}% C={:.0}% of L (paper: A >50%, B most of the rest, C sporadic)",
        100.0 * share(p1, 0), 100.0 * share(p1, 1), 100.0 * share(p1, 2));
    println!(
        "# shape: end of period 2: A={:.0}% B={:.0}% C={:.0}% of L (paper: C ~55%, A ~0%)",
        100.0 * share(p2, 0),
        100.0 * share(p2, 1),
        100.0 * share(p2, 2)
    );
}
