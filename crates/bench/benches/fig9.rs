//! Figure 9 — Experiment 4: Index Buffer Management under varying
//! partial-index hit rates.
//!
//! Paper setup: fixed mix A:B:C = 1/2:1/3:1/6; queries on A hit the partial
//! index with probability 80 % during the first 100 queries and 20 %
//! afterwards (realised by switching the index definition at query 100);
//! `L = 800,000`, `I^MAX = 10,000`, `P = 10,000`.
//!
//! Expected shape: while A's partial index absorbs most A-queries, A's
//! buffer is rarely *used* (Table II) and the manager gives its space to B
//! and C despite A being queried most. After the switch, A's buffer is used
//! often, grows quickly, and B/C shrink.

use aib_bench::{build_eval_db, engine_config_for, header, scale, table_spec, timed, TABLE};
use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::Query;
use aib_index::Coverage;
use aib_storage::DEFAULT_ENTRY_FOOTPRINT;
use aib_workload::{exp4_ranges, experiment4_queries, PAPER_QUERIES, SWITCH_AT};

fn main() {
    let spec = table_spec();
    let queries = experiment4_queries(&spec, PAPER_QUERIES, 94);
    let l = scale(&spec, 800_000) as usize;
    let i_max = scale(&spec, 10_000) as u32;
    let p = scale(&spec, 10_000) as u32;
    let (r1, r2) = exp4_ranges(&spec);

    header(
        "Figure 9: three Index Buffers, varying partial-index hit rate on A",
        &format!(
            "rows={} L={} I_MAX={} P={} A-hit-rate 80% -> 20% at query {}",
            spec.rows, l, i_max, p, SWITCH_AT
        ),
    );

    let space = SpaceConfig {
        max_bytes: Some(l * DEFAULT_ENTRY_FOOTPRINT),
        i_max,
        seed: 9,
        ..Default::default()
    };
    let buffer = BufferConfig {
        partition_pages: p,
        ..Default::default()
    };
    let db = timed("populate db (3 indexed columns)", || {
        build_eval_db(
            &spec,
            engine_config_for(&spec, space),
            Some(buffer),
            &["A", "B", "C"],
        )
    });
    // Phase 1: A's partial index covers r1 (hit rate 80% of A-queries). The
    // default build covers the bottom 10% == r1 already.
    assert_eq!(spec.covered_range(), r1);

    let mut recorder = aib_engine::WorkloadRecorder::new();
    let mut hits_a = [0usize; 2];
    let mut total_a = [0usize; 2];
    for (i, q) in queries.iter().enumerate() {
        if i == SWITCH_AT {
            // The paper: "we switched the definition of the partial index
            // after 100 queries" — now covering r2, so A-queries hit with
            // probability 20%.
            timed("redefine A's coverage", || {
                db.redefine_coverage(TABLE, "A", Coverage::IntRange { lo: r2.0, hi: r2.1 })
                    .unwrap()
            });
        }
        let outcome = db
            .execute(&Query::point(TABLE, &q.column, q.value))
            .unwrap();
        recorder.record(&outcome);
        let result = outcome.result;
        if q.column == "A" {
            let phase = usize::from(i >= SWITCH_AT);
            total_a[phase] += 1;
            if result.path == aib_engine::AccessPath::PartialIndex {
                hits_a[phase] += 1;
            }
        }
    }

    println!("query,column,entries_A,entries_B,entries_C,total");
    for (i, (r, q)) in recorder.records().iter().zip(&queries).enumerate() {
        let e = &r.buffer_entries;
        println!(
            "{},{},{},{},{},{}",
            i,
            q.column,
            e[0],
            e[1],
            e[2],
            e.iter().sum::<usize>()
        );
    }

    // Shape summary.
    println!(
        "\n# A-query hit rates: phase1 {:.0}% (target 80%), phase2 {:.0}% (target 20%)",
        100.0 * hits_a[0] as f64 / total_a[0].max(1) as f64,
        100.0 * hits_a[1] as f64 / total_a[1].max(1) as f64
    );
    let at = |i: usize| {
        recorder.records()[i.min(recorder.len() - 1)]
            .buffer_entries
            .clone()
    };
    let p1 = at(SWITCH_AT - 1);
    let p2 = at(recorder.len() - 1);
    println!(
        "# shape: end of phase 1 entries A/B/C = {:?} (paper: A gets less space than B despite more queries)",
        p1
    );
    println!(
        "# shape: end of phase 2 entries A/B/C = {:?} (paper: A grows quickly, B and C shrink)",
        p2
    );
}
