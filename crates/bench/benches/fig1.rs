//! Figure 1 — the control-loop delay of adaptive partial indexing.
//!
//! Paper setup: a single integer column; 500 queries; the queried focus
//! shifts from values <15 to values >15 between queries 200 and 300; the
//! tuner indexes a value queried ≥6 times in the monitoring window and
//! evicts LRU. Plotted: queried value range, indexed value range, and the
//! partial-index hit rate — the indexed range follows the queried range
//! only after a delay of roughly 100–200 queries, during which the hit rate
//! collapses.
//!
//! (Deviation: the monitoring window is 60 queries instead of the paper's
//! 20 — the stated 6-in-20 threshold is unreachable under any
//! near-uniform draw over a 15-value range; see EXPERIMENTS.md.)

use aib_bench::header;
use aib_sim::{run_control_loop, ControlLoopConfig};

fn main() {
    let config = ControlLoopConfig::default();
    header(
        "Figure 1: control-loop delay in adaptive partial indexing",
        &format!(
            "queries={} shift={:?} window={} threshold={} capacity={}",
            config.queries,
            config.shift,
            config.tuner.window,
            config.tuner.threshold,
            config.tuner.capacity
        ),
    );

    let result = run_control_loop(&config);
    println!(
        "query,value,queried_lo,queried_hi,indexed_lo,indexed_hi,indexed_count,hit,hit_rate_50"
    );
    for r in &result.records {
        let (ilo, ihi) = r.indexed_range.unwrap_or((0, 0));
        let window_start = r.seq.saturating_sub(49);
        println!(
            "{},{},{},{},{},{},{},{},{:.2}",
            r.seq,
            r.value,
            r.queried_range.0,
            r.queried_range.1,
            ilo,
            ihi,
            r.indexed_count,
            u8::from(r.hit),
            result.hit_rate(window_start, r.seq + 1),
        );
    }

    // Shape summary against the paper's claims.
    let warm = result.hit_rate(100, 200);
    let during = result.hit_rate(250, 320);
    let late = result.hit_rate(430, 500);
    println!("\n# shape: hit rate before shift = {warm:.2} (paper: high, index adapted)");
    println!("# shape: hit rate during adaptation = {during:.2} (paper: drops significantly)");
    println!("# shape: hit rate after re-adaptation = {late:.2} (paper: recovers)");
    let adapted = result.adapted_after(config.high_range, 0.7, 50);
    match adapted {
        Some(q) => println!(
            "# shape: re-adaptation complete around query {q} -> control loop delay ≈ {} queries (paper: ~200)",
            q.saturating_sub(config.shift.0)
        ),
        None => println!("# shape: tuner did not re-adapt within the run"),
    }
}
