//! Criterion microbenchmarks of the buffer pool: hit/miss fetch cost and
//! the replacement policies under a scan-like access pattern.

use aib_storage::replacement::{ClockPolicy, DisplacementPolicy, LruKPolicy, LruPolicy};
use aib_storage::{BufferPool, BufferPoolConfig, CostModel, DiskManager, PageId};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn pool_with(frames: usize, pages: u32) -> (Arc<BufferPool>, Vec<PageId>) {
    let pool = BufferPool::new(
        DiskManager::new(CostModel::free()),
        BufferPoolConfig::lru(frames),
    );
    let mut pids = Vec::new();
    for _ in 0..pages {
        let (pid, g) = pool.new_page().unwrap();
        drop(g);
        pids.push(pid);
    }
    pool.flush_all().unwrap();
    (pool, pids)
}

fn bench_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool_fetch");

    // Hits: working set fits.
    let (pool, pids) = pool_with(64, 32);
    group.bench_function("hit", |b| {
        b.iter(|| {
            for pid in &pids {
                black_box(pool.fetch_read(*pid).unwrap()[0]);
            }
        })
    });

    // Misses: cyclic scan over twice the pool size (worst case for LRU).
    let (pool, pids) = pool_with(64, 128);
    group.bench_function("miss_cyclic", |b| {
        b.iter(|| {
            for pid in &pids {
                black_box(pool.fetch_read(*pid).unwrap()[0]);
            }
        })
    });
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement_policy_ops");
    let frames = 1024usize;
    let accesses: Vec<usize> = {
        let mut x = 0x9E3779B97F4A7C15u64;
        (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % frames as u64) as usize
            })
            .collect()
    };
    let run = |policy: &mut dyn DisplacementPolicy| {
        for (i, &f) in accesses.iter().enumerate() {
            policy.record_access(f);
            if i % 16 == 0 {
                if let Some(victim) = policy.displace(&|_| false) {
                    black_box(victim);
                }
            }
        }
    };
    group.bench_function(BenchmarkId::new("lru", frames), |b| {
        b.iter(|| run(&mut LruPolicy::new()))
    });
    group.bench_function(BenchmarkId::new("clock", frames), |b| {
        b.iter(|| run(&mut ClockPolicy::new(frames)))
    });
    group.bench_function(BenchmarkId::new("lru_k2", frames), |b| {
        b.iter(|| run(&mut LruKPolicy::new(2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fetch, bench_policies);
criterion_main!(benches);
