//! Parallel indexing-scan throughput: the same uncovered point query over a
//! 10k-page table at 1/2/4/8 scan threads.
//!
//! The Index Buffer Space is pinned to zero entries (`max_entries = 0`) so
//! no page ever becomes skippable: every scan reads all 10k pages, making
//! iterations identical and the thread sweep a pure measure of the
//! partition-chunked executor. The pool holds the whole table, so the sweep
//! measures compute (page latching, tuple decoding, predicate evaluation),
//! not disk.

use std::time::Instant;

use aib_bench::header;
use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};

const TARGET_PAGES: u32 = 10_000;
const PAD: usize = 900;
const DOMAIN: i64 = 10_000;
const ITERS: usize = 5;

fn build(scan_threads: usize) -> Database {
    let mut db = Database::new(EngineConfig {
        pool_frames: TARGET_PAGES as usize + 64,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_entries: Some(0), // nothing is ever buffered: scans stay full-size
            i_max: 1,
            seed: 3,
            ..Default::default()
        },
        scan_threads,
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let mut x = 0x9e3779b9u64;
    while db.table("t").unwrap().num_pages() < TARGET_PAGES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % DOMAIN as u64) as i64 + 1;
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(k), Value::from("x".repeat(PAD))]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 1,
            hi: DOMAIN / 10,
        },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    db
}

/// Median wall time of `ITERS` full indexing scans at the given setting.
fn measure(db: &mut Database) -> (f64, usize) {
    let q = Query::on("t", "k").eq(DOMAIN / 2);
    // One warm-up pass faults every heap page into the pool.
    let warm = db.execute(&q).unwrap();
    assert_eq!(
        warm.metrics.scan.as_ref().unwrap().pages_skipped,
        0,
        "zero-entry buffer must never skip pages"
    );
    let mut times = Vec::with_capacity(ITERS);
    let mut count = 0;
    for _ in 0..ITERS {
        let start = Instant::now();
        let outcome = db.execute(&q).unwrap();
        times.push(start.elapsed().as_secs_f64());
        count = outcome.result.count();
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[ITERS / 2], count)
}

fn main() {
    header(
        "micro: parallel indexing scan, thread sweep on a 10k-page table",
        &format!("pages={TARGET_PAGES} pad={PAD} iters={ITERS} (median)"),
    );

    println!("threads,planned,median_s,pages_per_s,speedup,matches");
    let mut base = 0.0f64;
    let mut results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut db = build(threads);
        let planned = db.explain(&Query::on("t", "k").eq(DOMAIN / 2)).unwrap();
        let (median, matches) = measure(&mut db);
        if threads == 1 {
            base = median;
        }
        let speedup = base / median;
        println!(
            "{threads},{},{median:.4},{:.0},{speedup:.2},{matches}",
            planned.scan_threads,
            f64::from(TARGET_PAGES) / median,
        );
        results.push((threads, speedup));
    }

    let at4 = results
        .iter()
        .find(|(t, _)| *t == 4)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n# shape: speedup at 4 threads = {at4:.2}x (target: >1.5x on >=4 cores)");
    if cores >= 4 {
        assert!(
            at4 > 1.5,
            "parallel scan below target: {at4:.2}x at 4 threads on {cores} cores"
        );
    } else {
        println!(
            "# note: only {cores} core(s) available — wall-clock speedup is \
             not demonstrable here; the sweep above measures overhead only"
        );
    }
}
