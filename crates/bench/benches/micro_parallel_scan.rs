//! Parallel indexing-scan throughput: the same uncovered point query over a
//! 10k-page table at 1/2/4/8 scan threads, plus a covered-fraction sweep
//! (0/50/90/100% of pages skippable) at 1 vs. 4 threads.
//!
//! In the thread sweep the Index Buffer Space is pinned to zero entries
//! (`max_bytes = 0`) so no page ever becomes skippable: every scan reads
//! all 10k pages, making iterations identical and the sweep a pure measure
//! of the partition-chunked executor. The pool holds the whole table, so
//! the sweep measures compute (page latching, zero-copy predicate
//! evaluation), not disk.
//!
//! The covered-fraction sweep loads sequential keys so covered pages are
//! contiguous, then sizes the partial index's coverage to make the target
//! share of pages skippable at registration time (`max_bytes = 0` freezes
//! it there). It shows how run-skipping interacts with the chunked parallel
//! sweep across the skippability spectrum.

use std::time::Instant;

use aib_bench::header;
use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};

const TARGET_PAGES: u32 = 10_000;
const PAD: usize = 900;
const DOMAIN: i64 = 10_000;
const ITERS: usize = 5;

/// Skippable-page fractions for the covered-fraction sweep.
const FRACTIONS: [u32; 4] = [0, 50, 90, 100];

fn build(scan_threads: usize) -> Database {
    let db = Database::new(EngineConfig {
        pool_frames: TARGET_PAGES as usize + 64,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: Some(0), // nothing is ever buffered: scans stay full-size
            i_max: 1,
            seed: 3,
            ..Default::default()
        },
        scan_threads,
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let mut x = 0x9e3779b9u64;
    while db.table("t").unwrap().num_pages() < TARGET_PAGES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % DOMAIN as u64) as i64 + 1;
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(k), Value::from("x".repeat(PAD))]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 1,
            hi: DOMAIN / 10,
        },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    db
}

/// Median wall time of `ITERS` full indexing scans at the given setting.
fn measure(db: &mut Database) -> (f64, usize) {
    let q = Query::on("t", "k").eq(DOMAIN / 2);
    // One warm-up pass faults every heap page into the pool.
    let warm = db.execute(&q).unwrap();
    assert_eq!(
        warm.metrics.scan.as_ref().unwrap().pages_skipped,
        0,
        "zero-entry buffer must never skip pages"
    );
    let mut times = Vec::with_capacity(ITERS);
    let mut count = 0;
    for _ in 0..ITERS {
        let start = Instant::now();
        let outcome = db.execute(&q).unwrap();
        times.push(start.elapsed().as_secs_f64());
        count = outcome.result.count();
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[ITERS / 2], count)
}

/// Build a table of `pages` pages loaded with *sequential* keys, then cover
/// the first `frac`% of rows with the partial index. Sequential insertion
/// keeps covered pages contiguous, so `frac`% of rows ≈ `frac`% of pages
/// skippable — in one leading run. `max_bytes = 0` freezes skippability
/// at registration time.
fn build_fraction(scan_threads: usize, pages: u32, frac: u32) -> (Database, i64) {
    let db = Database::new(EngineConfig {
        pool_frames: pages as usize + 64,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: Some(0),
            i_max: 1,
            seed: 3,
            ..Default::default()
        },
        scan_threads,
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let mut k = 0i64;
    while db.table("t").unwrap().num_pages() < pages {
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(k), Value::from("x".repeat(PAD))]),
        )
        .unwrap();
        k += 1;
    }
    let rows = k;
    // Covering keys [0, cov_hi] covers the first frac% of pages; an empty
    // range (hi < lo) covers nothing for the 0% point.
    let cov_hi = rows * i64::from(frac) / 100 - 1;
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange { lo: 0, hi: cov_hi },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    (db, rows)
}

/// Median wall time plus scan-shape stats for the uncovered probe `rows`
/// (above every loaded key, so even 100% coverage misses the partial index
/// and exercises the buffered-scan path).
fn measure_fraction(db: &mut Database, rows: i64, iters: usize) -> (f64, [u32; 4]) {
    let q = Query::on("t", "k").eq(rows);
    db.execute(&q).unwrap(); // warm the pool
    let mut times = Vec::with_capacity(iters);
    let mut shape = [0u32; 4];
    for _ in 0..iters {
        let start = Instant::now();
        let outcome = db.execute(&q).unwrap();
        times.push(start.elapsed().as_secs_f64());
        let m = &outcome.metrics;
        let read = m.scan.as_ref().map_or(0, |s| s.pages_read);
        shape = [read, m.pages_skipped(), m.skip_runs(), m.sweep_batches()];
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[iters / 2], shape)
}

fn covered_fraction_sweep(quick: bool) {
    let pages: u32 = if quick { 256 } else { 2_000 };
    let iters = if quick { 3 } else { ITERS };
    header(
        "micro: parallel indexing scan, covered-fraction sweep",
        &format!("pages={pages} pad={PAD} iters={iters} (median), threads 1 vs 4"),
    );
    println!("frac_pct,threads,median_us,pages_read,pages_skipped,skip_runs,sweep_batches");
    for frac in FRACTIONS {
        for threads in [1usize, 4] {
            let (mut db, rows) = build_fraction(threads, pages, frac);
            let (median, [read, skipped, runs, batches]) = measure_fraction(&mut db, rows, iters);
            println!(
                "{frac},{threads},{:.1},{read},{skipped},{runs},{batches}",
                median * 1e6
            );
            assert_eq!(read + skipped, db.table("t").unwrap().num_pages());
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test");

    covered_fraction_sweep(quick);

    header(
        "micro: parallel indexing scan, thread sweep on a 10k-page table",
        &format!("pages={TARGET_PAGES} pad={PAD} iters={ITERS} (median)"),
    );

    println!("threads,planned,median_s,pages_per_s,speedup,matches");
    let mut base = 0.0f64;
    let mut results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut db = build(threads);
        let planned = db.explain(&Query::on("t", "k").eq(DOMAIN / 2)).unwrap();
        let (median, matches) = measure(&mut db);
        if threads == 1 {
            base = median;
        }
        let speedup = base / median;
        println!(
            "{threads},{},{median:.4},{:.0},{speedup:.2},{matches}",
            planned.scan_threads,
            f64::from(TARGET_PAGES) / median,
        );
        results.push((threads, speedup));
    }

    let at4 = results
        .iter()
        .find(|(t, _)| *t == 4)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n# shape: speedup at 4 threads = {at4:.2}x (target: >1.5x on >=4 cores)");
    if cores >= 4 {
        assert!(
            at4 > 1.5,
            "parallel scan below target: {at4:.2}x at 4 threads on {cores} cores"
        );
    } else {
        println!(
            "# note: only {cores} core(s) available — wall-clock speedup is \
             not demonstrable here; the sweep above measures overhead only"
        );
    }
}
