//! Recovery benchmark: how fast a file-backed [`Database`] comes back, and
//! what the rebuilt-but-empty Index Buffer costs right after it does,
//! recorded in `BENCH_recovery.json` (see EXPERIMENTS.md).
//!
//! Three sections:
//!
//! 1. **reopen** — wall time of `Database::open` against (a) a cleanly
//!    closed directory (log already compacted to one snapshot; recovery is
//!    catalog decode + heap rescan) and (b) a crashed directory whose log
//!    carries every DML record since the last checkpoint (recovery folds
//!    and replays them first). The gap prices WAL replay itself.
//!
//! 2. **cold_vs_warm** — query latency through the recovered engine. The
//!    Index Buffer is rebuilt *empty* by design (the paper's recovery
//!    argument: buffer contents are redundant with the heap), so the first
//!    uncovered query pays a full indexing scan; once it has run, repeats
//!    skip every page. The ratio is the price of not logging the buffer —
//!    paid once per buffer per restart, not per record at runtime.
//!
//! 3. **runtime_overhead** — per-insert wall time with the WAL on
//!    (file-backed, fsync per append) next to the simulated backend's, so
//!    the durability tax on the write path is visible in the same file.
//!
//! The simulated backend stays the default everywhere else in the suite;
//! this is the only bench that touches a real file system, which is why the
//! JSON records `host_cpus` and absolute times should be read as
//! machine-local.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use aib_core::BufferConfig;
use aib_engine::{Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, Schema, Tuple, Value};

const ROWS_FULL: i64 = 50_000;
const ROWS_QUICK: i64 = 4_000;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("aib-recovery-bench-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> EngineConfig {
    EngineConfig {
        pool_frames: 1024,
        scan_threads: 1,
        // Keep periodic rotation out of the measurement: the crash fixture
        // wants every post-checkpoint record still in the log.
        wal_checkpoint_interval: u64::MAX,
        ..Default::default()
    }
}

fn tuple(k: i64) -> Tuple {
    Tuple::new(vec![Value::Int(k), Value::from("x".repeat(64))])
}

/// Builds the sweep fixture in `dir`: `rows` sequential keys, a partial
/// index covering the first half, a buffer warmed by one uncovered probe.
fn populate(dir: &TempDir, rows: i64) -> (Database, i64) {
    let db = Database::open(&dir.0, config()).unwrap();
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 1..=rows {
        db.insert("t", &tuple(i)).unwrap();
    }
    let hi = rows / 2;
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange { lo: 1, hi },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    let probe = hi + 1;
    black_box(db.execute(&Query::point("t", "k", probe)).unwrap());
    (db, probe)
}

struct ReopenPoint {
    label: &'static str,
    wal_records: u64,
    open_ms: f64,
}

struct ColdWarm {
    cold_us: f64,
    warm_us: f64,
    cold_pages_read: u32,
    warm_pages_read: u32,
}

fn measure_reopen(dir: &TempDir, label: &'static str, wal_records: u64) -> (Database, ReopenPoint) {
    let t0 = Instant::now();
    let db = Database::open(&dir.0, config()).unwrap();
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;
    (
        db,
        ReopenPoint {
            label,
            wal_records,
            open_ms,
        },
    )
}

fn measure_cold_warm(db: &Database, probe: i64, iters: usize) -> ColdWarm {
    let t0 = Instant::now();
    let out = db.execute(&Query::point("t", "k", probe)).unwrap();
    let cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let cold_pages_read = out.metrics.scan.as_ref().map_or(0, |s| s.pages_read);
    let mut samples = Vec::with_capacity(iters);
    let mut warm_pages_read = 0;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = db.execute(&Query::point("t", "k", probe)).unwrap();
        black_box(out.result.count());
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        warm_pages_read = out.metrics.scan.as_ref().map_or(0, |s| s.pages_read);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let warm_us = samples[samples.len() / 2];
    ColdWarm {
        cold_us,
        warm_us,
        cold_pages_read,
        warm_pages_read,
    }
}

/// Per-insert wall time, durable vs simulated, same row shape.
fn insert_tax(rows: i64) -> (f64, f64) {
    let dir = TempDir::new("tax");
    let db = Database::open(&dir.0, config()).unwrap();
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let t0 = Instant::now();
    for i in 1..=rows {
        db.insert("t", &tuple(i)).unwrap();
    }
    let durable_us = t0.elapsed().as_secs_f64() * 1e6 / rows as f64;
    db.close().unwrap();

    let db = Database::new(config());
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let t0 = Instant::now();
    for i in 1..=rows {
        db.insert("t", &tuple(i)).unwrap();
    }
    let simulated_us = t0.elapsed().as_secs_f64() * 1e6 / rows as f64;
    (durable_us, simulated_us)
}

fn emit_bench_json(
    rows: i64,
    reopens: &[ReopenPoint],
    clean: &ColdWarm,
    crash: &ColdWarm,
    tax: (f64, f64),
    quick: bool,
) {
    let Ok(path) = std::env::var("AIB_RECOVERY_JSON") else {
        println!("(set AIB_RECOVERY_JSON=<path> to record BENCH_recovery.json)");
        return;
    };
    let reopen_rows: Vec<String> = reopens
        .iter()
        .map(|p| {
            format!(
                "      {{ \"fixture\": \"{}\", \"wal_records\": {}, \"open_ms\": {:.2} }}",
                p.label, p.wal_records, p.open_ms
            )
        })
        .collect();
    let cw = |c: &ColdWarm| {
        format!(
            "{{ \"cold_us\": {:.1}, \"warm_us\": {:.1}, \"cold_over_warm\": {:.1}, \"cold_pages_read\": {}, \"warm_pages_read\": {} }}",
            c.cold_us,
            c.warm_us,
            if c.warm_us > 0.0 { c.cold_us / c.warm_us } else { 0.0 },
            c.cold_pages_read,
            c.warm_pages_read
        )
    };
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let provenance = aib_bench::provenance_json();
    let out = format!(
        "{{\n  \"bench\": \"micro_recovery\",\n  \"provenance\": {provenance},\n  \"rows\": {rows},\n  \"host_cpus\": {host_cpus},\n  \"quick\": {quick},\n  \"reopen\": {{\n    \"note\": \"Database::open wall time; after_crash replays every post-checkpoint DML record, after_close decodes one snapshot\",\n    \"points\": [\n{}\n    ]\n  }},\n  \"cold_vs_warm\": {{\n    \"note\": \"first uncovered query after recovery re-runs the indexing scan (the buffer is rebuilt empty by design); repeats skip every page\",\n    \"after_close\": {},\n    \"after_crash\": {}\n  }},\n  \"insert_tax\": {{\n    \"note\": \"per-insert wall time; durable pays one fsynced WAL append per operation\",\n    \"durable_us\": {:.1},\n    \"simulated_us\": {:.1}\n  }}\n}}\n",
        reopen_rows.join(",\n"),
        cw(clean),
        cw(crash),
        tax.0,
        tax.1
    );
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test");
    let rows = if quick { ROWS_QUICK } else { ROWS_FULL };
    let iters = if quick { 5 } else { 25 };
    println!("recovery bench: {rows} rows, file-backed engine in a temp dir");

    // Clean-close fixture: the log is one snapshot record.
    let clean_dir = TempDir::new("clean");
    let (db, probe) = populate(&clean_dir, rows);
    db.close().unwrap();
    let (db, clean_open) = measure_reopen(&clean_dir, "after_close", 1);
    let clean_cw = measure_cold_warm(&db, probe, iters);
    drop(db);

    // Crash fixture: same data, but the engine dies without a checkpoint,
    // so open() must fold and replay every DML record.
    let crash_dir = TempDir::new("crash");
    let (db, probe) = populate(&crash_dir, rows);
    let wal_records = db.wal_records_written();
    drop(db); // no close: recovery does the work
    let (db, crash_open) = measure_reopen(&crash_dir, "after_crash", wal_records);
    let crash_cw = measure_cold_warm(&db, probe, iters);
    drop(db);

    println!("{:>12} {:>12} {:>9}", "fixture", "wal_records", "open_ms");
    for p in [&clean_open, &crash_open] {
        println!("{:>12} {:>12} {:>8.2}", p.label, p.wal_records, p.open_ms);
    }
    println!(
        "cold-vs-warm after close: {:.0}us vs {:.0}us ({} vs {} pages read)",
        clean_cw.cold_us, clean_cw.warm_us, clean_cw.cold_pages_read, clean_cw.warm_pages_read
    );
    println!(
        "cold-vs-warm after crash: {:.0}us vs {:.0}us ({} vs {} pages read)",
        crash_cw.cold_us, crash_cw.warm_us, crash_cw.cold_pages_read, crash_cw.warm_pages_read
    );

    let tax_rows = if quick { 500 } else { 5_000 };
    let tax = insert_tax(tax_rows);
    println!(
        "insert tax over {tax_rows} rows: durable {:.1}us/op vs simulated {:.1}us/op",
        tax.0, tax.1
    );

    emit_bench_json(
        rows,
        &[clean_open, crash_open],
        &clean_cw,
        &crash_cw,
        tax,
        quick,
    );
}
