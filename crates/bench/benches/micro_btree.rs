//! Criterion microbenchmarks of the from-scratch B+-tree against
//! `std::collections::BTreeMap` — the substrate the Index Buffer and the
//! partial indexes stand on.

use aib_index::btree::BPlusTree;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const N: usize = 100_000;

fn keys(n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n).map(|_| rng.gen_range(0..n as u64 * 4)).collect()
}

fn bench_insert(c: &mut Criterion) {
    let ks = keys(N);
    let mut group = c.benchmark_group("btree_insert_100k");
    group.bench_function("bplustree", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for &k in &ks {
                t.insert(k, k);
            }
            black_box(t.len())
        })
    });
    group.bench_function("std_btreemap", |b| {
        b.iter(|| {
            let mut t = BTreeMap::new();
            for &k in &ks {
                t.insert(k, k);
            }
            black_box(t.len())
        })
    });
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let ks = keys(N);
    let mut tree = BPlusTree::new();
    let mut map = BTreeMap::new();
    for &k in &ks {
        tree.insert(k, k);
        map.insert(k, k);
    }
    let probes = keys(1000);
    let mut group = c.benchmark_group("btree_point_lookup");
    group.bench_function("bplustree", |b| {
        b.iter(|| {
            let mut hits = 0;
            for k in &probes {
                if tree.get(black_box(k)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("std_btreemap", |b| {
        b.iter(|| {
            let mut hits = 0;
            for k in &probes {
                if map.contains_key(black_box(k)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let ks = keys(N);
    let mut tree = BPlusTree::new();
    let mut map = BTreeMap::new();
    for &k in &ks {
        tree.insert(k, k);
        map.insert(k, k);
    }
    let mut group = c.benchmark_group("btree_range_scan_1k");
    group.bench_function("bplustree", |b| {
        b.iter(|| {
            let n = tree.range(&10_000, &14_000).count();
            black_box(n)
        })
    });
    group.bench_function("std_btreemap", |b| {
        b.iter(|| {
            let n = map.range(10_000..=14_000).count();
            black_box(n)
        })
    });
    group.finish();
}

fn bench_order_sweep(c: &mut Criterion) {
    let ks = keys(N / 10);
    let mut group = c.benchmark_group("btree_order_sweep_insert_10k");
    for order in [8usize, 32, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, &order| {
            b.iter(|| {
                let mut t = BPlusTree::with_order(order);
                for &k in &ks {
                    t.insert(k, k);
                }
                black_box(t.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_get,
    bench_range,
    bench_order_sweep
);
criterion_main!(benches);
