//! Criterion microbenchmarks of Table I maintenance throughput: how fast
//! DML flows through partial index + Index Buffer + counters, per case
//! class.

use aib_core::{maintain, BufferConfig, IndexBuffer, PageCounters, TupleRef};
use aib_index::{Coverage, IndexBackend, PartialIndex};
use aib_storage::{Rid, Value};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

struct Fix {
    partial: PartialIndex,
    buffer: IndexBuffer,
    counters: PageCounters,
}

/// 1,000 pages; the first 500 buffered with 20 entries each.
fn fixture() -> Fix {
    let mut partial = PartialIndex::new(
        "col",
        Coverage::IntRange { lo: 0, hi: 9_999 },
        IndexBackend::BTree,
    );
    for i in 0..10_000 {
        partial.add(
            Value::Int(i % 10_000),
            Rid::new((i % 500) as u32, (i % 50) as u16),
        );
    }
    let mut buffer = IndexBuffer::new(0, "col", BufferConfig::default());
    let mut counters = PageCounters::from_counts(vec![20; 1_000]);
    for page in 0..500u32 {
        buffer.index_page(
            page,
            (0..20).map(|s| {
                (
                    Value::Int(100_000 + i64::from(page) * 20 + s),
                    Rid::new(page, s as u16),
                )
            }),
        );
        counters.set_zero(page);
    }
    Fix {
        partial,
        buffer,
        counters,
    }
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_maintenance");

    // Uncovered insert into a buffered page: B.Add (the hot DML case for
    // warm buffers).
    group.bench_function("insert_uncovered_buffered_page", |b| {
        let mut f = fixture();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let page = i % 500;
            let new = TupleRef::new(
                Value::Int(500_000 + i64::from(i)),
                Rid::new(page, (1000 + i % 1000) as u16),
                page,
            );
            let _ = black_box(maintain(
                &mut f.partial,
                &mut f.buffer,
                &mut f.counters,
                None,
                Some(new),
            ));
        })
    });

    // Uncovered insert into an unbuffered page: C[p]++ only.
    group.bench_function("insert_uncovered_plain_page", |b| {
        let mut f = fixture();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let page = 500 + (i % 500);
            let new = TupleRef::new(
                Value::Int(600_000 + i64::from(i)),
                Rid::new(page, (i % 1000) as u16),
                page,
            );
            let _ = black_box(maintain(
                &mut f.partial,
                &mut f.buffer,
                &mut f.counters,
                None,
                Some(new),
            ));
        })
    });

    // Covered insert: IX.Add only.
    group.bench_function("insert_covered", |b| {
        let mut f = fixture();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let new = TupleRef::new(
                Value::Int(i64::from(i % 10_000)),
                Rid::new(700 + (i % 100), (i / 100 % 1000) as u16),
                700 + (i % 100),
            );
            let _ = black_box(maintain(
                &mut f.partial,
                &mut f.buffer,
                &mut f.counters,
                None,
                Some(new),
            ));
        })
    });

    // Cross-page uncovered update between buffered pages: B.Update.
    group.bench_function("update_uncovered_buffered_to_buffered", |b| {
        let mut f = fixture();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let from = i % 500;
            let to = (i + 1) % 500;
            // Insert a fresh entry, then move it — measures add+update pair.
            let v = Value::Int(700_000 + i64::from(i));
            let old = TupleRef::new(v.clone(), Rid::new(from, 2000), from);
            let _ = maintain(
                &mut f.partial,
                &mut f.buffer,
                &mut f.counters,
                None,
                Some(old.clone()),
            );
            let new = TupleRef::new(v, Rid::new(to, 2001), to);
            let _ = black_box(maintain(
                &mut f.partial,
                &mut f.buffer,
                &mut f.counters,
                Some(old),
                Some(new),
            ));
            // Clean up to keep the buffer size stable.
            let last = TupleRef::new(Value::Int(700_000 + i64::from(i)), Rid::new(to, 2001), to);
            let _ = maintain(
                &mut f.partial,
                &mut f.buffer,
                &mut f.counters,
                Some(last),
                None,
            );
        })
    });

    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
