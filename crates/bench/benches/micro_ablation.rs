//! Ablation study over the design choices the paper leaves open
//! (DESIGN.md §6): partition size `P`, LRU-K depth `K`, and the buffer's
//! backing structure (B+-tree vs. hash).
//!
//! Each configuration runs the experiment-3 workload (three competing
//! buffers, bounded space, shifting mix) at a reduced scale and reports the
//! total simulated I/O and how the space ended up distributed.

use aib_bench::{build_eval_db, engine_config_for, header, run_workload, timed};
use aib_core::{BufferConfig, SpaceConfig};
use aib_index::IndexBackend;
use aib_storage::DEFAULT_ENTRY_FOOTPRINT;
use aib_workload::{experiment3_queries, TableSpec, PAPER_QUERIES};

fn run_config(spec: &TableSpec, buffer: BufferConfig, label: &str) {
    let space = SpaceConfig {
        max_bytes: Some((spec.rows as f64 * 1.6) as usize * DEFAULT_ENTRY_FOOTPRINT),
        i_max: (spec.rows / 100).max(1) as u32,
        seed: 11,
        ..Default::default()
    };
    let queries = experiment3_queries(spec, PAPER_QUERIES, 12);
    let mut db = timed(&format!("populate [{label}]"), || {
        build_eval_db(
            spec,
            engine_config_for(spec, space),
            Some(buffer),
            &["A", "B", "C"],
        )
    });
    let rec = timed(&format!("run [{label}]"), || {
        run_workload(&mut db, &queries)
    });
    let total_io: u64 = rec.records().iter().map(|r| r.simulated_us()).sum();
    let mean_wall: f64 = rec
        .records()
        .iter()
        .map(|r| r.wall.as_micros() as f64)
        .sum::<f64>()
        / rec.len() as f64;
    let final_entries = &rec.records().last().unwrap().buffer_entries;
    println!("{label},{},{:.0},{:?}", total_io, mean_wall, final_entries);
}

fn main() {
    let spec = match std::env::var("AIB_ROWS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(rows) => TableSpec::scaled(rows, 0xDA7A),
        None => TableSpec::scaled(100_000, 0xDA7A),
    };
    header(
        "Ablation: partition size P, history depth K, buffer backend",
        &format!("experiment-3 workload at rows={}", spec.rows),
    );
    println!("config,total_sim_us,mean_wall_us,final_entries_abc");

    // Partition size P: smaller partitions displace more precisely but
    // fragment the space; larger ones drop more collateral pages.
    for p in [100u32, 1_000, 10_000] {
        run_config(
            &spec,
            BufferConfig {
                partition_pages: p,
                ..Default::default()
            },
            &format!("P={p}"),
        );
    }
    // LRU-K depth.
    for k in [1usize, 2, 4] {
        run_config(
            &spec,
            BufferConfig {
                history_k: k,
                ..Default::default()
            },
            &format!("K={k}"),
        );
    }
    // Backend: B+-tree vs hash (paper §III: either works).
    for (backend, name) in [(IndexBackend::BTree, "btree"), (IndexBackend::Hash, "hash")] {
        run_config(
            &spec,
            BufferConfig {
                backend,
                ..Default::default()
            },
            &format!("backend={name}"),
        );
    }
}
