//! Modeled vs. real: partial-index I/O as a synthetic charge (DESIGN.md §4
//! substitution) against a genuinely disk-resident paged B+-tree sharing
//! the buffer pool with the table.
//!
//! Validates the substitution: the *shape* of the adaptive-indexing story —
//! index hits cheap, misses expensive, adaptation charged per touched
//! entry — must look the same whichever way the partial index is realised.

use aib_bench::header;
use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, EngineConfig, Query, WorkloadRecorder};
use aib_index::{Coverage, IndexBackend};
use aib_storage::CostModel;
use aib_workload::TableSpec;

const ROWS: u64 = 100_000;

fn build(paged: bool) -> (Database, TableSpec) {
    let spec = TableSpec::scaled(ROWS, 0xDA7A);
    let db = Database::new(EngineConfig {
        pool_frames: 200,
        cost_model: CostModel::default(),
        space: SpaceConfig {
            max_bytes: None,
            i_max: 1_000,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table("eval", spec.schema()).unwrap();
    for t in spec.tuples() {
        db.insert("eval", &t).unwrap();
    }
    let (lo, hi) = spec.covered_range();
    if paged {
        db.create_paged_partial_index(
            "eval",
            "A",
            Coverage::IntRange { lo, hi },
            Some(BufferConfig::default()),
        )
        .unwrap();
    } else {
        db.create_partial_index(
            "eval",
            "A",
            Coverage::IntRange { lo, hi },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
    }
    (db, spec)
}

fn run(db: &mut Database, spec: &TableSpec, label: &str) {
    let mut rec = WorkloadRecorder::new();
    let (_, chi) = spec.covered_range();
    // 30 hits, then 30 misses (warming the buffer), then 30 warm misses.
    for i in 0..30i64 {
        rec.record(
            &db.execute(&Query::point("eval", "A", 1 + i * 37 % chi))
                .unwrap(),
        );
    }
    for i in 0..60i64 {
        rec.record(
            &db.execute(&Query::point(
                "eval",
                "A",
                chi + 1 + (i * 911) % (spec.domain - chi),
            ))
            .unwrap(),
        );
    }
    let phase = |lo: usize, hi: usize| {
        let r = &rec.records()[lo..hi];
        r.iter().map(|m| m.simulated_us()).sum::<u64>() as f64 / r.len() as f64
    };
    println!(
        "{label},{:.0},{:.0},{:.0}",
        phase(0, 30),
        phase(30, 32),
        phase(60, 90)
    );
}

fn main() {
    header(
        "Modeled vs. paged partial index (mean simulated µs per phase)",
        "columns: config, index hits, first misses (cold buffer), warm misses",
    );
    println!("config,hit_us,cold_miss_us,warm_miss_us");
    let (mut modeled, spec) = build(false);
    run(&mut modeled, &spec, "modeled");
    let (mut paged, spec) = build(true);
    run(&mut paged, &spec, "paged");
    println!(
        "\n# shape: both configurations must show hits << cold misses and warm misses ≈ 0;\n\
         # the paged config's hit cost is real tree-descent I/O instead of the synthetic 3-page charge."
    );
}
