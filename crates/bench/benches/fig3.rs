//! Figure 3 — share of fully indexed pages under partial indexing, as the
//! correlation between physical and logical order decays.
//!
//! Paper setup: 100,000 tuples, starting logically ordered (correlation 1)
//! and swapping randomly picked tuples; six scenarios; at each step the
//! number of fully indexed pages is counted.
//!
//! Expected shape: at correlation 1 the share equals the covered fraction;
//! it drops off steeply, and "for typical page sizes of 10 or more tuples
//! and a correlation of 0.8 or less, less than 5 % of the pages remain
//! fully indexed".

use aib_bench::header;
use aib_sim::{paper_scenarios, share_near_correlation, sweep};

fn main() {
    header(
        "Figure 3: share of fully indexed pages vs. physical/logical correlation",
        "100,000 tuples; 6 scenarios (tuples/page x covered fraction); random swaps",
    );

    let scenarios = paper_scenarios();
    let mut sweeps = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        sweeps.push(sweep(s, 60, 0x3F + i as u64));
    }

    println!("scenario,correlation,fully_indexed_share,swaps");
    for (s, points) in scenarios.iter().zip(&sweeps) {
        for p in points {
            println!(
                "{},{:.4},{:.5},{}",
                s.label(),
                p.correlation,
                p.fully_indexed_share,
                p.swaps
            );
        }
    }

    // Shape summary.
    println!();
    for (s, points) in scenarios.iter().zip(&sweeps) {
        let at1 = points.first().unwrap();
        let at08 = share_near_correlation(points, 0.8).unwrap();
        println!(
            "# shape [{}]: share at corr=1 is {:.3} (coverage {:.1}); at corr≈0.8 it is {:.4}{}",
            s.label(),
            at1.fully_indexed_share,
            s.coverage,
            at08.fully_indexed_share,
            if s.per_page >= 10 && at08.fully_indexed_share < 0.05 {
                " -> <5%, the paper's headline regime"
            } else {
                ""
            }
        );
    }
}
