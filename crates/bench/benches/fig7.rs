//! Figure 7 — Experiment 2: the influence of `I^MAX` (indexing
//! aggressiveness) and of the Index Buffer Space bound `L`.
//!
//! Paper setup: same as experiment 1 (single buffer, queries on A), varying
//! `I^MAX` and `L`. Expected shape:
//!
//! * higher `I^MAX` → more pages indexed per scan → query times drop faster
//!   within the first ~15 queries;
//! * smaller `L` → fewer entries fit → fewer pages skippable → a higher
//!   floor on query times.

use aib_bench::{
    build_eval_db, engine_config_for, header, mean_sim_us, run_workload, scale, table_spec, timed,
};
use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::WorkloadRecorder;
use aib_storage::DEFAULT_ENTRY_FOOTPRINT;
use aib_workload::{experiment1_queries, PAPER_QUERIES};

fn main() {
    let spec = table_spec();
    let queries = experiment1_queries(&spec, PAPER_QUERIES, 72);

    header(
        "Figure 7: single Index Buffer, varying I^MAX and space bound L",
        &format!(
            "rows={} queries={} (paper-scale parameters scaled by rows/500k)",
            spec.rows,
            queries.len()
        ),
    );

    // Part 1: vary I^MAX with unlimited space.
    let imax_values: Vec<u32> = [500u64, 1_000, 5_000, 10_000]
        .iter()
        .map(|&v| scale(&spec, v) as u32)
        .collect();
    let mut imax_runs: Vec<(u32, WorkloadRecorder)> = Vec::new();
    for &i_max in &imax_values {
        let space = SpaceConfig {
            max_bytes: None,
            i_max,
            seed: 7,
            ..Default::default()
        };
        let mut db = timed(&format!("populate (I_MAX={i_max})"), || {
            build_eval_db(
                &spec,
                engine_config_for(&spec, space),
                Some(BufferConfig::default()),
                &["A"],
            )
        });
        let rec = timed(&format!("run (I_MAX={i_max})"), || {
            run_workload(&mut db, &queries)
        });
        imax_runs.push((i_max, rec));
    }

    println!("# part 1: varying I^MAX, unlimited space");
    print!("query");
    for (i_max, _) in &imax_runs {
        print!(",sim_us_imax_{i_max},skipped_imax_{i_max}");
    }
    println!();
    for q in 0..queries.len() {
        print!("{q}");
        for (_, rec) in &imax_runs {
            let r = &rec.records()[q];
            print!(",{},{}", r.simulated_us(), r.pages_skipped());
        }
        println!();
    }

    // Part 2: vary the space bound L with the paper's I^MAX = 5,000.
    let i_max = scale(&spec, 5_000) as u32;
    let l_values: Vec<Option<usize>> = vec![
        Some(scale(&spec, 100_000) as usize),
        Some(scale(&spec, 200_000) as usize),
        Some(scale(&spec, 450_000) as usize),
        None,
    ];
    let mut l_runs: Vec<(String, WorkloadRecorder)> = Vec::new();
    for &l_entries in &l_values {
        let label = l_entries.map_or("inf".to_owned(), |l| l.to_string());
        let space = SpaceConfig {
            max_bytes: l_entries.map(|l| l * DEFAULT_ENTRY_FOOTPRINT),
            i_max,
            seed: 7,
            ..Default::default()
        };
        let mut db = timed(&format!("populate (L={label})"), || {
            build_eval_db(
                &spec,
                engine_config_for(&spec, space),
                Some(BufferConfig::default()),
                &["A"],
            )
        });
        let rec = timed(&format!("run (L={label})"), || {
            run_workload(&mut db, &queries)
        });
        l_runs.push((label, rec));
    }

    println!("\n# part 2: varying space bound L, I^MAX={i_max}");
    print!("query");
    for (label, _) in &l_runs {
        print!(",sim_us_L_{label},entries_L_{label}");
    }
    println!();
    for q in 0..queries.len() {
        print!("{q}");
        for (_, rec) in &l_runs {
            let r = &rec.records()[q];
            print!(
                ",{},{}",
                r.simulated_us(),
                r.buffer_entries.first().copied().unwrap_or(0)
            );
        }
        println!();
    }

    // Shape summary.
    println!();
    let early = |rec: &WorkloadRecorder| mean_sim_us(rec, 2, 15);
    println!(
        "# shape: early mean sim_us by I^MAX {:?} = {:?} (paper: higher I^MAX drops faster)",
        imax_values,
        imax_runs
            .iter()
            .map(|(_, r)| early(r).round())
            .collect::<Vec<_>>()
    );
    let floor = |rec: &WorkloadRecorder| mean_sim_us(rec, 100, 200);
    println!(
        "# shape: steady-state mean sim_us by L {:?} = {:?} (paper: smaller L -> higher floor)",
        l_runs.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>(),
        l_runs
            .iter()
            .map(|(_, r)| floor(r).round())
            .collect::<Vec<_>>()
    );
}
