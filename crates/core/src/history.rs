//! LRU-K access-interval histories for Index Buffers — the paper's `H_B`
//! and Table II.
//!
//! Each Index Buffer `B` keeps the lengths of its `K` most recent *access
//! intervals*, measured in queries. The current (still open) interval is
//! `H_B[0]`. Table II defines the updates:
//!
//! | query outcome            | queried column's buffer `B`        | other buffers `B'` |
//! |--------------------------|------------------------------------|--------------------|
//! | partial index hit        | `H_B[0]++`                         | `H_B'[0]++`        |
//! | no partial index hit     | `shift(H_B, +1); H_B[0] = 0`       | `H_B'[0]++`        |
//!
//! A buffer is *used* only when the partial index misses; that closes the
//! open interval and starts a new one. Every other query just lengthens the
//! open interval of every buffer.
//!
//! The mean access interval `T_B = K⁻¹ · Σ H_B[i]` feeds the benefit model:
//! a frequently used buffer has a small `T_B` and thus valuable partitions.
//!
//! Interval bookkeeping is a reformulation of LRU-K's use-timestamp
//! history: with a per-buffer query clock, `H_B[0]++` is one clock tick and
//! `shift(H_B, +1); H_B[0] = 0` records a use at the current tick — the
//! intervals are the gaps between retained timestamps. The timestamp form
//! lives in [`aib_storage::AccessHistory`], shared with the buffer pool's
//! LRU-K page displacement, so both layers run the *same* LRU-K code.

use aib_storage::AccessHistory;

/// The LRU-K history `H_B` of one Index Buffer: a shared [`AccessHistory`]
/// driven by a per-buffer query clock (Table II semantics).
#[derive(Debug, Clone)]
pub struct LruKHistory {
    history: AccessHistory,
    /// Queries elapsed, in this buffer's frame of reference.
    clock: u64,
}

impl LruKHistory {
    /// Creates an empty history of depth `k`.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        LruKHistory {
            history: AccessHistory::new(k),
            clock: 0,
        }
    }

    /// History depth `K`.
    pub fn k(&self) -> usize {
        self.history.k()
    }

    /// How many times this buffer has been used (partial-index misses on its
    /// column).
    pub fn uses(&self) -> u64 {
        self.history.uses()
    }

    /// `H_B[0]++` — a query ran that did not use this buffer (Table II, all
    /// cases except "no hit on the queried column").
    pub fn tick(&mut self) {
        // Before the first use there is no open interval; advancing the
        // clock is still harmless because intervals are timestamp gaps and
        // the first use anchors at whatever the clock then reads.
        self.clock += 1;
    }

    /// `shift(H_B, +1); H_B[0] = 0` — the buffer was used by this query
    /// (Table II, no-hit case for the queried column).
    pub fn record_use(&mut self) {
        self.history.record(self.clock);
    }

    /// `n` consecutive [`tick`](Self::tick)s at once, in O(1). Used when
    /// draining deferred fast-path query events.
    pub fn tick_n(&mut self, n: u64) {
        self.clock += n;
    }

    /// `n` consecutive [`record_use`](Self::record_use)s at once, in
    /// O(min(n, K)). Used when draining deferred fast-path query events.
    pub fn record_use_n(&mut self, n: u64) {
        self.history.record_repeated(self.clock, n);
    }

    /// The buffer's logical query clock (diagnostics / drain bookkeeping).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Mean access interval `T_B`, or `None` if the buffer was never used
    /// (infinite interval — such a buffer has zero benefit).
    ///
    /// The average divides by the number of *recorded* intervals (≤ K), so a
    /// buffer warms up fairly before its history fills. Means are floored at
    /// 1.0: a buffer used on every query has `T_B = 1`, giving the maximum
    /// finite benefit rather than a division by zero.
    pub fn mean_interval(&self) -> Option<f64> {
        self.history.mean_interval(self.clock)
    }

    /// `T_B⁻¹` as a benefit factor: 0 for never-used buffers.
    pub fn use_frequency(&self) -> f64 {
        self.mean_interval().map_or(0.0, |t| 1.0 / t)
    }

    /// Raw intervals, most recent first (diagnostics / Table II harness).
    pub fn intervals(&self) -> impl Iterator<Item = u64> + '_ {
        self.history.intervals(self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unused_history_has_no_mean() {
        let mut h = LruKHistory::new(3);
        assert_eq!(h.mean_interval(), None);
        assert_eq!(h.use_frequency(), 0.0);
        // Ticks before first use do not create an interval.
        h.tick();
        h.tick();
        assert_eq!(h.mean_interval(), None);
        assert_eq!(h.uses(), 0);
    }

    #[test]
    fn table2_hit_case_lengthens_open_interval() {
        let mut h = LruKHistory::new(2);
        h.record_use(); // H = [0]
        h.tick(); // H = [1]
        h.tick(); // H = [2]
        assert_eq!(h.intervals().collect::<Vec<_>>(), vec![2]);
        assert_eq!(h.mean_interval(), Some(2.0));
    }

    #[test]
    fn table2_use_case_shifts_history() {
        let mut h = LruKHistory::new(2);
        h.record_use(); // [0]
        h.tick(); // [1]
        h.tick(); // [2]
        h.record_use(); // [0, 2]
        assert_eq!(h.intervals().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(h.mean_interval(), Some(1.0), "(0+2)/2 = 1");
        h.tick(); // [1, 2]
        assert_eq!(h.mean_interval(), Some(1.5));
        assert_eq!(h.uses(), 2);
    }

    #[test]
    fn history_depth_is_bounded_by_k() {
        let mut h = LruKHistory::new(2);
        for _ in 0..5 {
            h.record_use();
            h.tick();
        }
        assert_eq!(h.intervals().count(), 2);
        assert_eq!(h.intervals().collect::<Vec<_>>(), vec![1, 1]);
    }

    #[test]
    fn frequent_use_means_small_interval_high_frequency() {
        let mut hot = LruKHistory::new(4);
        let mut cold = LruKHistory::new(4);
        for i in 0..100 {
            if i % 2 == 0 {
                hot.record_use();
            } else {
                hot.tick();
            }
            if i % 20 == 0 {
                cold.record_use();
            } else {
                cold.tick();
            }
        }
        assert!(
            hot.use_frequency() > cold.use_frequency(),
            "hot {} vs cold {}",
            hot.use_frequency(),
            cold.use_frequency()
        );
    }

    #[test]
    fn mean_is_floored_at_one() {
        let mut h = LruKHistory::new(2);
        h.record_use();
        h.record_use(); // [0, 0]
        assert_eq!(h.mean_interval(), Some(1.0));
        assert_eq!(h.use_frequency(), 1.0);
    }

    #[test]
    fn ticks_before_first_use_do_not_skew_intervals() {
        // The timestamp reformulation must agree with the interval form even
        // when the clock ran before the first use.
        let mut h = LruKHistory::new(2);
        h.tick();
        h.tick();
        h.record_use(); // [0]
        h.tick(); // [1]
        assert_eq!(h.intervals().collect::<Vec<_>>(), vec![1]);
        assert_eq!(h.mean_interval(), Some(1.0));
    }

    #[test]
    fn batched_ops_match_looped_ops() {
        let mut batched = LruKHistory::new(3);
        batched.record_use();
        batched.tick_n(4);
        batched.record_use_n(2);
        let mut looped = LruKHistory::new(3);
        looped.record_use();
        for _ in 0..4 {
            looped.tick();
        }
        looped.record_use();
        looped.record_use();
        assert_eq!(batched.clock(), looped.clock());
        assert_eq!(batched.uses(), looped.uses());
        assert_eq!(
            batched.intervals().collect::<Vec<_>>(),
            looped.intervals().collect::<Vec<_>>()
        );
        assert_eq!(batched.mean_interval(), looped.mean_interval());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        LruKHistory::new(0);
    }
}
