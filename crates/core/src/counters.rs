//! Per-page counters of unindexed tuples — the paper's `C[p]`.
//!
//! Paper §III: "the Index Buffer maintains a counter `C[p]` for each page p
//! that represents the number of unindexed tuples in the page. ... Every
//! counter is initially set to the number of tuples in the page minus the
//! tuples covered by the partial index." A page with `C[p] == 0` is fully
//! indexed (by the partial index, the Index Buffer, or both) and can be
//! skipped by a table scan.

use std::fmt;

/// A counter-bookkeeping violation detected at mutation time.
///
/// Surfaced as an `Err` when the `invariant-checks` feature is on; without
/// the feature the same condition is a `debug_assert!` (and a saturating
/// no-op in release builds), so production behaviour is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterError {
    /// `C[p]--` was requested while `C[p] == 0`: Table I maintenance and the
    /// heap have diverged.
    Underflow {
        /// The page whose counter would have gone negative.
        page: u32,
    },
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::Underflow { page } => {
                write!(
                    f,
                    "C[{page}]-- on zero counter (maintenance diverged from heap)"
                )
            }
        }
    }
}

impl std::error::Error for CounterError {}

/// A dense bitset over page ordinals, one u64 word per 64 pages.
///
/// [`PageCounters`] maintains one incrementally (bit set ⇔ page tracked and
/// `C[p] == 0`), so "which pages can the scan skip" is answered by word-level
/// bit operations instead of an O(pages) rebuild per scan, and contiguous
/// skippable/unskipped extents come out of [`SkipBitset::runs`] ready to feed
/// the heap's batched sweep read. Scans also build one for their `to_index`
/// page set, replacing the old per-scan `Vec<bool>` snapshots.
///
/// Invariant: every bit at an index `>= len` is zero, so word scans never
/// see phantom set bits and pages past the tracked range read as unskippable
/// (matching [`PageCounters::is_fully_indexed`]'s untracked-page rule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkipBitset {
    words: Vec<u64>,
    len: u32,
    set_count: u32,
}

impl SkipBitset {
    /// An all-clear bitset over `len` pages.
    pub fn with_len(len: u32) -> Self {
        SkipBitset {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            set_count: 0,
        }
    }

    /// Number of pages covered.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no pages are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (skippable) pages — maintained incrementally, O(1).
    pub fn count(&self) -> u32 {
        self.set_count
    }

    /// True when `page`'s bit is set. Pages past `len` read as clear.
    #[inline]
    pub fn contains(&self, page: u32) -> bool {
        self.words
            .get((page / 64) as usize)
            .is_some_and(|w| page < self.len && w & (1u64 << (page % 64)) != 0)
    }

    /// Sets `page`'s bit. No-op past `len` or when already set.
    pub fn insert(&mut self, page: u32) {
        if page >= self.len {
            return;
        }
        if let Some(w) = self.words.get_mut((page / 64) as usize) {
            let bit = 1u64 << (page % 64);
            if *w & bit == 0 {
                *w |= bit;
                self.set_count += 1;
            }
        }
    }

    /// Clears `page`'s bit. No-op past `len` or when already clear.
    pub fn remove(&mut self, page: u32) {
        if page >= self.len {
            return;
        }
        if let Some(w) = self.words.get_mut((page / 64) as usize) {
            let bit = 1u64 << (page % 64);
            if *w & bit != 0 {
                *w &= !bit;
                self.set_count -= 1;
            }
        }
    }

    /// Extends the bitset to `new_len` pages, with the grown pages' bits all
    /// `set` or all clear. Shrinking is not supported (no-op).
    pub fn grow(&mut self, new_len: u32, set: bool) {
        if new_len <= self.len {
            return;
        }
        let old_len = self.len;
        self.words.resize((new_len as usize).div_ceil(64), 0);
        self.len = new_len;
        if set {
            for page in old_len..new_len {
                self.insert(page);
            }
        }
    }

    /// A copy resized to exactly `new_len` pages: kept bits are preserved,
    /// grown pages read as clear (unskippable — they are untracked), and
    /// truncated bits are dropped. This is the per-scan snapshot: the heap's
    /// page count at scan start fixes `new_len`.
    pub fn resized(&self, new_len: u32) -> SkipBitset {
        let mut words = self.words.clone();
        words.resize((new_len as usize).div_ceil(64), 0);
        if !new_len.is_multiple_of(64) {
            if let Some(w) = words.last_mut() {
                *w &= (1u64 << (new_len % 64)) - 1;
            }
        }
        let set_count = words.iter().map(|w| w.count_ones()).sum();
        SkipBitset {
            words,
            len: new_len,
            set_count,
        }
    }

    /// First index in `[from, to)` whose bit differs from `val`, or `to`.
    /// Word-at-a-time: a whole u64 of equal bits costs one comparison.
    fn next_boundary(&self, from: u32, to: u32, val: bool) -> u32 {
        let mut wi = (from / 64) as usize;
        let mut mask = !0u64 << (from % 64);
        while (wi as u64) * 64 < u64::from(to) {
            let word = self.words.get(wi).copied().unwrap_or(0);
            let x = (if val { !word } else { word }) & mask;
            if x != 0 {
                let cand = wi as u32 * 64 + x.trailing_zeros();
                return cand.min(to);
            }
            wi += 1;
            mask = !0;
        }
        to
    }

    /// Maximal runs of equal skippability covering `range`, in order:
    /// `(extent, skippable)` pairs alternate and tile the range exactly.
    /// Bits past `len` read as clear, so out-of-range extents come out
    /// unskippable. This is the shape [`aib_storage::HeapFile`]'s
    /// `sweep_read_runs` consumes.
    pub fn runs(&self, range: std::ops::Range<u32>) -> SkipRuns<'_> {
        SkipRuns {
            bits: self,
            at: range.start.min(range.end),
            end: range.end,
        }
    }

    /// The set (skippable) extents of the whole bitset, in order.
    pub fn skippable_runs(&self) -> impl Iterator<Item = std::ops::Range<u32>> + '_ {
        self.runs(0..self.len)
            .filter(|(_, skippable)| *skippable)
            .map(|(extent, _)| extent)
    }

    /// Analytic sweep shape over `0..num_pages` when reads are issued in
    /// groups of `batch` pages: `(skip_runs, sweep_batches)` — the number of
    /// contiguous skippable extents a sweep jumps over whole, and the number
    /// of batched reads it issues for everything else. Shared by the locked
    /// and the snapshot-planned prepare so their stats cannot drift.
    pub fn sweep_shape(&self, num_pages: u32, batch: u32) -> (u32, u32) {
        let batch = batch.max(1);
        let mut skip_runs = 0u32;
        let mut sweep_batches = 0u32;
        for (extent, skippable) in self.runs(0..num_pages) {
            if skippable {
                skip_runs += 1;
            } else {
                sweep_batches += (extent.end - extent.start).div_ceil(batch);
            }
        }
        (skip_runs, sweep_batches)
    }
}

/// Iterator over `(extent, skippable)` runs of a [`SkipBitset`]; see
/// [`SkipBitset::runs`].
#[derive(Debug)]
pub struct SkipRuns<'a> {
    bits: &'a SkipBitset,
    at: u32,
    end: u32,
}

impl Iterator for SkipRuns<'_> {
    type Item = (std::ops::Range<u32>, bool);

    fn next(&mut self) -> Option<Self::Item> {
        if self.at >= self.end {
            return None;
        }
        let val = self.bits.contains(self.at);
        let split = self.bits.next_boundary(self.at, self.end, val);
        let run = self.at..split;
        self.at = split;
        Some((run, val))
    }
}

/// The counter array `C` for one (table, column) pair, with a maintained
/// [`SkipBitset`] mirroring `C[p] == 0` so scans read skippability as runs.
#[derive(Debug, Clone, Default)]
pub struct PageCounters {
    c: Vec<u32>,
    skip: SkipBitset,
}

impl PageCounters {
    /// Builds counters from per-page unindexed-tuple counts (creation-time
    /// initialisation, paper §III).
    pub fn from_counts(counts: Vec<u32>) -> Self {
        let mut skip = SkipBitset::with_len(counts.len() as u32);
        for (page, &c) in counts.iter().enumerate() {
            if c == 0 {
                skip.insert(page as u32);
            }
        }
        PageCounters { c: counts, skip }
    }

    /// An empty counter array (pages are appended as the table grows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked pages.
    pub fn num_pages(&self) -> u32 {
        self.c.len() as u32
    }

    /// `C[p]`. Pages beyond the tracked range read as 0.
    #[inline]
    pub fn get(&self, page: u32) -> u32 {
        self.c.get(page as usize).copied().unwrap_or(0)
    }

    /// True when the page can be skipped during a table scan.
    ///
    /// Only *tracked* pages are ever skippable: an untracked page past the
    /// `ensure_page` range has no accounting behind its implicit zero, and a
    /// page wrongly marked skippable loses tuples with no error. Reading it
    /// conservatively costs at most one page scan; the scan then indexes it
    /// and `set_zero` brings it into the tracked range.
    #[inline]
    pub fn is_fully_indexed(&self, page: u32) -> bool {
        self.skip.contains(page)
    }

    /// Ensures page `page` is tracked, growing the array with zeroes.
    /// Grown pages are skippable (their tracked counter is zero), exactly as
    /// before the bitset existed.
    pub fn ensure_page(&mut self, page: u32) {
        if page as usize >= self.c.len() {
            self.c.resize(page as usize + 1, 0);
            self.skip.grow(page + 1, true);
        }
    }

    /// `C[p] ← 0` — the page was completed by the Index Buffer (Algorithm 1
    /// line 17). Returns the previous value (the number of entries the
    /// buffer now holds for this page).
    pub fn set_zero(&mut self, page: u32) -> u32 {
        self.ensure_page(page);
        self.skip.insert(page);
        self.c
            .get_mut(page as usize)
            .map(std::mem::take)
            .unwrap_or(0)
    }

    /// Restores `C[p] = n` when buffer entries for the page are discarded
    /// (partition drop).
    pub fn restore(&mut self, page: u32, n: u32) {
        self.ensure_page(page);
        if let Some(slot) = self.c.get_mut(page as usize) {
            *slot = n;
            if n == 0 {
                self.skip.insert(page);
            } else {
                self.skip.remove(page);
            }
        }
    }

    /// `C[p]++` — an unindexed tuple landed in an unbuffered page
    /// (Table I maintenance).
    pub fn increment(&mut self, page: u32) {
        self.ensure_page(page);
        if let Some(slot) = self.c.get_mut(page as usize) {
            *slot += 1;
            self.skip.remove(page);
        }
    }

    /// `C[p]--` — an unindexed tuple left an unbuffered page (Table I
    /// maintenance).
    ///
    /// An underflow (`C[p]` already zero) means maintenance bookkeeping
    /// diverged from the heap. With the `invariant-checks` feature it is
    /// returned as [`CounterError::Underflow`]; without it, debug builds
    /// assert and release builds saturate (unchanged production behaviour).
    pub fn decrement(&mut self, page: u32) -> Result<(), CounterError> {
        self.ensure_page(page);
        let Some(slot) = self.c.get_mut(page as usize) else {
            // Unreachable after ensure_page; report rather than panic.
            return Err(CounterError::Underflow { page });
        };
        if *slot == 0 {
            #[cfg(feature = "invariant-checks")]
            return Err(CounterError::Underflow { page });
            #[cfg(not(feature = "invariant-checks"))]
            {
                debug_assert!(false, "C[{page}]-- on zero counter");
                return Ok(());
            }
        }
        *slot -= 1;
        if *slot == 0 {
            self.skip.insert(page);
        }
        Ok(())
    }

    /// Pages with `C[p] > 0`, i.e. pages a table scan must read, in page
    /// order. Paper Algorithm 1 line 11.
    pub fn unindexed_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.c
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(p, _)| p as u32)
    }

    /// Pages with `C[p] > 0` together with their counters, sorted ascending
    /// by counter — the page-selection order of Algorithm 2 ("adds pages in
    /// ascending order of their counter C": cheapest completions first).
    pub fn pages_by_ascending_counter(&self) -> Vec<(u32, u32)> {
        let mut pages: Vec<(u32, u32)> = self
            .c
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(p, &c)| (p as u32, c))
            .collect();
        pages.sort_by_key(|&(p, c)| (c, p));
        pages
    }

    /// Number of fully indexed (skippable) pages — O(1) off the maintained
    /// bitset's running count.
    pub fn fully_indexed_pages(&self) -> u32 {
        self.skip.count()
    }

    /// Sum of all counters: unindexed tuples across the table.
    pub fn total_unindexed(&self) -> u64 {
        self.c.iter().map(|&c| c as u64).sum()
    }

    /// A point-in-time skippability snapshot sized to exactly `num_pages`
    /// (the heap's page count at scan start): tracked zero-counter pages are
    /// set, everything else — including pages the counters do not track —
    /// is clear. Both scan drivers plan their sweep from this one snapshot,
    /// which is what keeps the parallel scan bit-for-bit sequential.
    pub fn skip_snapshot(&self, num_pages: u32) -> SkipBitset {
        self.skip.resized(num_pages)
    }

    /// The maintained skippable extents (`C[p] == 0` runs), in page order.
    pub fn skippable_runs(&self) -> impl Iterator<Item = std::ops::Range<u32>> + '_ {
        self.skip.skippable_runs()
    }

    /// Shadow check: the maintained bitset must mirror `C[p] == 0` exactly
    /// (same length, same per-page skippability, consistent running count).
    /// Called from the `invariant-checks` shadow model and the proptests.
    pub fn check_bitset(&self) -> Result<(), String> {
        if self.skip.len() != self.c.len() as u32 {
            return Err(format!(
                "skip bitset covers {} pages, counters track {}",
                self.skip.len(),
                self.c.len()
            ));
        }
        let mut zeros = 0;
        for (page, &c) in self.c.iter().enumerate() {
            let bit = self.skip.contains(page as u32);
            if bit != (c == 0) {
                return Err(format!(
                    "skip bit for page {page} is {bit} but C[{page}] = {c}"
                ));
            }
            if c == 0 {
                zeros += 1;
            }
        }
        if self.skip.count() != zeros {
            return Err(format!(
                "skip bitset count {} != {zeros} zero counters",
                self.skip.count()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_from_counts() {
        let c = PageCounters::from_counts(vec![3, 0, 5]);
        assert_eq!(c.num_pages(), 3);
        assert_eq!(c.get(0), 3);
        assert!(c.is_fully_indexed(1));
        assert!(!c.is_fully_indexed(2));
        assert_eq!(c.get(99), 0, "untracked pages read as zero");
        assert_eq!(c.total_unindexed(), 8);
        assert_eq!(c.fully_indexed_pages(), 1);
    }

    #[test]
    fn set_zero_returns_previous() {
        let mut c = PageCounters::from_counts(vec![7]);
        assert_eq!(c.set_zero(0), 7);
        assert!(c.is_fully_indexed(0));
        assert_eq!(c.set_zero(0), 0, "idempotent");
    }

    #[test]
    fn restore_after_drop() {
        let mut c = PageCounters::from_counts(vec![4]);
        let n = c.set_zero(0);
        c.restore(0, n);
        assert_eq!(c.get(0), 4);
    }

    #[test]
    fn increment_decrement() {
        let mut c = PageCounters::new();
        c.increment(2); // grows the array
        assert_eq!(c.num_pages(), 3);
        assert_eq!(c.get(2), 1);
        c.increment(2);
        c.decrement(2).unwrap();
        assert_eq!(c.get(2), 1);
    }

    #[test]
    #[should_panic(expected = "on zero counter")]
    #[cfg(all(debug_assertions, not(feature = "invariant-checks")))]
    fn decrement_below_zero_panics_in_debug() {
        let mut c = PageCounters::from_counts(vec![0]);
        let _ = c.decrement(0);
    }

    #[test]
    #[cfg(feature = "invariant-checks")]
    fn decrement_below_zero_is_a_counter_error() {
        let mut c = PageCounters::from_counts(vec![0]);
        assert_eq!(c.decrement(0), Err(CounterError::Underflow { page: 0 }));
    }

    #[test]
    fn untracked_page_is_never_skippable() {
        // A page past the `ensure_page` range has no accounting behind its
        // implicit zero: it must be scanned, not skipped. (`get` still reads
        // zero — the *value* is defined; only the skip decision is guarded.)
        let c = PageCounters::from_counts(vec![0, 3]);
        assert!(c.is_fully_indexed(0), "tracked zero page is skippable");
        assert!(!c.is_fully_indexed(1));
        assert_eq!(c.get(99), 0, "untracked pages still read as zero");
        assert!(
            !c.is_fully_indexed(99),
            "untracked page must never be reported skippable"
        );
    }

    #[test]
    fn unindexed_pages_iteration() {
        let c = PageCounters::from_counts(vec![2, 0, 1, 0, 9]);
        let pages: Vec<u32> = c.unindexed_pages().collect();
        assert_eq!(pages, vec![0, 2, 4]);
    }

    #[test]
    fn ascending_counter_order() {
        let c = PageCounters::from_counts(vec![5, 0, 1, 3, 1]);
        let pages = c.pages_by_ascending_counter();
        assert_eq!(pages, vec![(2, 1), (4, 1), (3, 3), (0, 5)]);
    }

    #[test]
    fn bitset_tracks_every_mutation() {
        let mut c = PageCounters::from_counts(vec![3, 0, 5]);
        c.check_bitset().unwrap();
        c.set_zero(0);
        c.check_bitset().unwrap();
        assert!(c.is_fully_indexed(0));
        c.increment(1); // 0 -> 1: page 1 stops being skippable
        c.check_bitset().unwrap();
        assert!(!c.is_fully_indexed(1));
        c.decrement(1).unwrap(); // 1 -> 0: skippable again
        c.check_bitset().unwrap();
        assert!(c.is_fully_indexed(1));
        c.restore(0, 3);
        c.check_bitset().unwrap();
        assert!(!c.is_fully_indexed(0));
        c.restore(2, 0);
        c.check_bitset().unwrap();
        assert!(c.is_fully_indexed(2));
        c.increment(70); // grows across a word boundary; grown pages skippable
        c.check_bitset().unwrap();
        assert!(c.is_fully_indexed(42));
        assert!(!c.is_fully_indexed(70));
        assert_eq!(c.fully_indexed_pages(), 70 - 1);
    }

    #[test]
    fn skip_snapshot_sizes_to_the_heap() {
        let c = PageCounters::from_counts(vec![0, 2, 0]);
        // Heap larger than the tracked range: extra pages are unskippable.
        let snap = c.skip_snapshot(5);
        assert_eq!(snap.len(), 5);
        assert!(snap.contains(0) && snap.contains(2));
        assert!(!snap.contains(1) && !snap.contains(3) && !snap.contains(4));
        assert_eq!(snap.count(), 2);
        // Heap smaller: truncated bits drop out of the count.
        let snap = c.skip_snapshot(1);
        assert_eq!((snap.len(), snap.count()), (1, 1));
        assert!(!snap.contains(2));
    }

    #[test]
    fn runs_tile_the_range_and_alternate() {
        let mut b = SkipBitset::with_len(200);
        for p in (0..200).filter(|p| (64..130).contains(p) || *p >= 197) {
            b.insert(p);
        }
        let runs: Vec<_> = b.runs(0..200).collect();
        assert_eq!(
            runs,
            vec![
                (0..64, false),
                (64..130, true),
                (130..197, false),
                (197..200, true),
            ]
        );
        // Sub-range queries clip the same structure.
        assert_eq!(
            b.runs(60..70).collect::<Vec<_>>(),
            vec![(60..64, false), (64..70, true),]
        );
        // Past-len bits read clear: the run beyond len is unskippable.
        assert_eq!(
            b.runs(198..210).collect::<Vec<_>>(),
            vec![(198..200, true), (200..210, false),]
        );
        assert_eq!(b.runs(7..7).count(), 0);
        let skippable: Vec<_> = b.skippable_runs().collect();
        assert_eq!(skippable, vec![64..130, 197..200]);
    }

    #[test]
    fn runs_on_uniform_bitsets() {
        let empty = SkipBitset::with_len(100);
        assert_eq!(
            empty.runs(0..100).collect::<Vec<_>>(),
            vec![(0..100, false)]
        );
        assert_eq!(empty.skippable_runs().count(), 0);
        let mut full = SkipBitset::with_len(100);
        for p in 0..100 {
            full.insert(p);
        }
        assert_eq!(full.runs(0..100).collect::<Vec<_>>(), vec![(0..100, true)]);
        assert_eq!(full.count(), 100);
        let zero = SkipBitset::with_len(0);
        assert!(zero.is_empty());
        assert_eq!(zero.runs(0..0).count(), 0);
    }

    #[test]
    fn sweep_shape_counts_runs_and_batches() {
        let mut b = SkipBitset::with_len(200);
        for p in (0..200).filter(|p| (64..130).contains(p) || *p >= 197) {
            b.insert(p);
        }
        // Runs: 0..64 unskippable, 64..130 skip, 130..197 unskippable,
        // 197..200 skip. With batch 10: ceil(64/10) + ceil(67/10) = 7 + 7.
        assert_eq!(b.sweep_shape(200, 10), (2, 14));
        // Scanning past len pads an unskippable tail into the last batch run.
        assert_eq!(b.sweep_shape(210, 10), (2, 7 + 7 + 1));
        // Batch 0 is clamped to 1 (one read per page).
        assert_eq!(b.sweep_shape(200, 0), (2, 64 + 67));
        let empty = SkipBitset::with_len(0);
        assert_eq!(empty.sweep_shape(0, 8), (0, 0));
    }
}
