//! Per-page counters of unindexed tuples — the paper's `C[p]`.
//!
//! Paper §III: "the Index Buffer maintains a counter `C[p]` for each page p
//! that represents the number of unindexed tuples in the page. ... Every
//! counter is initially set to the number of tuples in the page minus the
//! tuples covered by the partial index." A page with `C[p] == 0` is fully
//! indexed (by the partial index, the Index Buffer, or both) and can be
//! skipped by a table scan.

use std::fmt;

/// A counter-bookkeeping violation detected at mutation time.
///
/// Surfaced as an `Err` when the `invariant-checks` feature is on; without
/// the feature the same condition is a `debug_assert!` (and a saturating
/// no-op in release builds), so production behaviour is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterError {
    /// `C[p]--` was requested while `C[p] == 0`: Table I maintenance and the
    /// heap have diverged.
    Underflow {
        /// The page whose counter would have gone negative.
        page: u32,
    },
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::Underflow { page } => {
                write!(
                    f,
                    "C[{page}]-- on zero counter (maintenance diverged from heap)"
                )
            }
        }
    }
}

impl std::error::Error for CounterError {}

/// The counter array `C` for one (table, column) pair.
#[derive(Debug, Clone, Default)]
pub struct PageCounters {
    c: Vec<u32>,
}

impl PageCounters {
    /// Builds counters from per-page unindexed-tuple counts (creation-time
    /// initialisation, paper §III).
    pub fn from_counts(counts: Vec<u32>) -> Self {
        PageCounters { c: counts }
    }

    /// An empty counter array (pages are appended as the table grows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked pages.
    pub fn num_pages(&self) -> u32 {
        self.c.len() as u32
    }

    /// `C[p]`. Pages beyond the tracked range read as 0.
    #[inline]
    pub fn get(&self, page: u32) -> u32 {
        self.c.get(page as usize).copied().unwrap_or(0)
    }

    /// True when the page can be skipped during a table scan.
    ///
    /// Only *tracked* pages are ever skippable: an untracked page past the
    /// `ensure_page` range has no accounting behind its implicit zero, and a
    /// page wrongly marked skippable loses tuples with no error. Reading it
    /// conservatively costs at most one page scan; the scan then indexes it
    /// and `set_zero` brings it into the tracked range.
    #[inline]
    pub fn is_fully_indexed(&self, page: u32) -> bool {
        self.c.get(page as usize).is_some_and(|&c| c == 0)
    }

    /// Ensures page `page` is tracked, growing the array with zeroes.
    pub fn ensure_page(&mut self, page: u32) {
        if page as usize >= self.c.len() {
            self.c.resize(page as usize + 1, 0);
        }
    }

    /// `C[p] ← 0` — the page was completed by the Index Buffer (Algorithm 1
    /// line 17). Returns the previous value (the number of entries the
    /// buffer now holds for this page).
    pub fn set_zero(&mut self, page: u32) -> u32 {
        self.ensure_page(page);
        self.c
            .get_mut(page as usize)
            .map(std::mem::take)
            .unwrap_or(0)
    }

    /// Restores `C[p] = n` when buffer entries for the page are discarded
    /// (partition drop).
    pub fn restore(&mut self, page: u32, n: u32) {
        self.ensure_page(page);
        if let Some(slot) = self.c.get_mut(page as usize) {
            *slot = n;
        }
    }

    /// `C[p]++` — an unindexed tuple landed in an unbuffered page
    /// (Table I maintenance).
    pub fn increment(&mut self, page: u32) {
        self.ensure_page(page);
        if let Some(slot) = self.c.get_mut(page as usize) {
            *slot += 1;
        }
    }

    /// `C[p]--` — an unindexed tuple left an unbuffered page (Table I
    /// maintenance).
    ///
    /// An underflow (`C[p]` already zero) means maintenance bookkeeping
    /// diverged from the heap. With the `invariant-checks` feature it is
    /// returned as [`CounterError::Underflow`]; without it, debug builds
    /// assert and release builds saturate (unchanged production behaviour).
    pub fn decrement(&mut self, page: u32) -> Result<(), CounterError> {
        self.ensure_page(page);
        let Some(slot) = self.c.get_mut(page as usize) else {
            // Unreachable after ensure_page; report rather than panic.
            return Err(CounterError::Underflow { page });
        };
        if *slot == 0 {
            #[cfg(feature = "invariant-checks")]
            return Err(CounterError::Underflow { page });
            #[cfg(not(feature = "invariant-checks"))]
            {
                debug_assert!(false, "C[{page}]-- on zero counter");
                return Ok(());
            }
        }
        *slot -= 1;
        Ok(())
    }

    /// Pages with `C[p] > 0`, i.e. pages a table scan must read, in page
    /// order. Paper Algorithm 1 line 11.
    pub fn unindexed_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.c
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(p, _)| p as u32)
    }

    /// Pages with `C[p] > 0` together with their counters, sorted ascending
    /// by counter — the page-selection order of Algorithm 2 ("adds pages in
    /// ascending order of their counter C": cheapest completions first).
    pub fn pages_by_ascending_counter(&self) -> Vec<(u32, u32)> {
        let mut pages: Vec<(u32, u32)> = self
            .c
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(p, &c)| (p as u32, c))
            .collect();
        pages.sort_by_key(|&(p, c)| (c, p));
        pages
    }

    /// Number of fully indexed (skippable) pages.
    pub fn fully_indexed_pages(&self) -> u32 {
        self.c.iter().filter(|&&c| c == 0).count() as u32
    }

    /// Sum of all counters: unindexed tuples across the table.
    pub fn total_unindexed(&self) -> u64 {
        self.c.iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_from_counts() {
        let c = PageCounters::from_counts(vec![3, 0, 5]);
        assert_eq!(c.num_pages(), 3);
        assert_eq!(c.get(0), 3);
        assert!(c.is_fully_indexed(1));
        assert!(!c.is_fully_indexed(2));
        assert_eq!(c.get(99), 0, "untracked pages read as zero");
        assert_eq!(c.total_unindexed(), 8);
        assert_eq!(c.fully_indexed_pages(), 1);
    }

    #[test]
    fn set_zero_returns_previous() {
        let mut c = PageCounters::from_counts(vec![7]);
        assert_eq!(c.set_zero(0), 7);
        assert!(c.is_fully_indexed(0));
        assert_eq!(c.set_zero(0), 0, "idempotent");
    }

    #[test]
    fn restore_after_drop() {
        let mut c = PageCounters::from_counts(vec![4]);
        let n = c.set_zero(0);
        c.restore(0, n);
        assert_eq!(c.get(0), 4);
    }

    #[test]
    fn increment_decrement() {
        let mut c = PageCounters::new();
        c.increment(2); // grows the array
        assert_eq!(c.num_pages(), 3);
        assert_eq!(c.get(2), 1);
        c.increment(2);
        c.decrement(2).unwrap();
        assert_eq!(c.get(2), 1);
    }

    #[test]
    #[should_panic(expected = "on zero counter")]
    #[cfg(all(debug_assertions, not(feature = "invariant-checks")))]
    fn decrement_below_zero_panics_in_debug() {
        let mut c = PageCounters::from_counts(vec![0]);
        let _ = c.decrement(0);
    }

    #[test]
    #[cfg(feature = "invariant-checks")]
    fn decrement_below_zero_is_a_counter_error() {
        let mut c = PageCounters::from_counts(vec![0]);
        assert_eq!(c.decrement(0), Err(CounterError::Underflow { page: 0 }));
    }

    #[test]
    fn untracked_page_is_never_skippable() {
        // A page past the `ensure_page` range has no accounting behind its
        // implicit zero: it must be scanned, not skipped. (`get` still reads
        // zero — the *value* is defined; only the skip decision is guarded.)
        let c = PageCounters::from_counts(vec![0, 3]);
        assert!(c.is_fully_indexed(0), "tracked zero page is skippable");
        assert!(!c.is_fully_indexed(1));
        assert_eq!(c.get(99), 0, "untracked pages still read as zero");
        assert!(
            !c.is_fully_indexed(99),
            "untracked page must never be reported skippable"
        );
    }

    #[test]
    fn unindexed_pages_iteration() {
        let c = PageCounters::from_counts(vec![2, 0, 1, 0, 9]);
        let pages: Vec<u32> = c.unindexed_pages().collect();
        assert_eq!(pages, vec![0, 2, 4]);
    }

    #[test]
    fn ascending_counter_order() {
        let c = PageCounters::from_counts(vec![5, 0, 1, 3, 1]);
        let pages = c.pages_by_ascending_counter();
        assert_eq!(pages, vec![(2, 1), (4, 1), (3, 3), (0, 5)]);
    }
}
