//! The sharded Index Buffer Space: [`SpaceConfig::shards`] independently
//! locked [`IndexBufferSpace`] shards behind one facade, plus the
//! epoch-stamped read-only [`SpaceSnapshot`] that gives fully-skippable
//! queries a lock-free fast path.
//!
//! ### Why shard
//!
//! With one `RwLock<IndexBufferSpace>`, every query — even one that touches
//! no page — serialises on the space write lock for its Table II history
//! operations, so the CPU-bound fully-skippable workload cannot scale past
//! one core. Sharding assigns each buffer to shard `id % shards`; clients
//! touching disjoint buffers take disjoint locks, and the shared
//! [`MemoryBudget`] still sees the fleet's total footprint (each shard
//! publishes its resident bytes into a shared slot vector and charges the
//! governor with the sum, so displacement pressure crosses shards).
//!
//! ### The lock-free fast path
//!
//! Each shard carries a mutation **epoch**, bumped by every operation that
//! changes buffer or counter state and *published* (via an atomic per shard)
//! only while no writer is inside. A [`SpaceSnapshot`] records, per shard,
//! the epoch its bitsets were cloned at; a snapshot validates by comparing
//! every published epoch against its sections with plain `Acquire` loads —
//! no lock, no shared write. While a writer holds a shard, a sentinel
//! (`epoch + 1`) is parked in the published slot so validation fails for the
//! whole critical section; the guard's drop republishes the true epoch.
//!
//! A validated snapshot proves the skip bitsets are current, so a query
//! whose every page is skippable can answer without any space lock. Its
//! Table II history operations are deferred into per-buffer
//! [`BufferPending`] atomics (shared by `Arc` between slots and snapshots)
//! and drained — in deferral order — by the next write-side entry, which is
//! also why [`ShardedSpace::shard_write`] drains before handing out the
//! guard: no benefit is ever read with deferred events outstanding.
//!
//! ### Snapshot-planned scans and the adaptation queue
//!
//! The snapshot also carries what `prepare_scan` needs — the skip bitset,
//! candidate pages in ascending-counter order, partition shape — so *any*
//! buffered read (not just a 100%-skippable one) can plan against it with
//! no shard lock held, provided [`ShardedSpace::plan_selection`] can prove
//! the locked selection would behave identically (no displacement, no RNG
//! draw). Pages such a scan stages for insertion travel as an epoch-stamped
//! [`AdaptationBatch`] on a per-shard MPSC adaptation queue, drained
//! off-path: opportunistically by the next [`shard_write`] entry (after the
//! Table II drain, so applies see settled histories) and by a background
//! applier thread the engine registers via [`register_applier`]. An apply
//! validates the batch's epoch against the shard epoch at drain start and
//! re-checks `C[p] != 0` per page ([`apply_staged_checked`]); a stale batch
//! is dropped, not applied — pages still uncovered keep `C[p] > 0` and are
//! simply re-staged by a later scan, which is what makes the queue
//! *convergent under quiescence* rather than lossy (DESIGN §6).
//!
//! [`shard_write`]: ShardedSpace::shard_write
//! [`register_applier`]: ShardedSpace::register_applier
//! [`apply_staged_checked`]: crate::scan::apply_staged_checked
//!
//! ### Lock hierarchy
//!
//! `catalog → shard(0) → shard(1) → … → pool`: shard locks nest inside the
//! catalog lock and outside the buffer-pool internals, and multi-shard
//! acquisitions always proceed in ascending shard index (enforced by
//! `aib-lint`'s lock-order rule). The adaptation-queue mutex and the
//! applier-registry mutex are leaves *below* the shard locks: they are
//! taken with a shard write lock held (the drain) but never the other way
//! around, and never across a shard acquisition.

// aib-lint: allow-file(no-index) — the shard and published vectors are
// sized once at construction and only indexed by `shard_of()` results or
// enumerate() positions; the cache's local cells are resized ahead of every
// indexed access.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{
    AtomicU64, AtomicUsize, Mutex, Ordering, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

use aib_storage::{BudgetComponent, MemoryBudget, MemoryUsage};

use crate::config::{BufferConfig, SpaceConfig};
use crate::counters::SkipBitset;
use crate::index_buffer::BufferId;
use crate::scan::{apply_staged_checked, ScanStats, StagedPage};
use crate::space::{grow_selection, BufferPending, IndexBufferSpace};

/// Default cap on queued [`AdaptationBatch`]es per shard; a full queue
/// rejects the push and the reader fails closed to an inline locked apply.
pub const DEFAULT_ADAPTATION_QUEUE_DEPTH: usize = 64;

/// The sharded Index Buffer Space facade. With `shards = 1` this is a
/// single [`IndexBufferSpace`] behind one lock — bit-for-bit the sequential
/// layout — and every additional shard only splits the lock, never the
/// budget.
pub struct ShardedSpace {
    shards: Box<[RwLock<IndexBufferSpace>]>,
    /// Per-shard published epoch: the shard's epoch as of the last write
    /// guard drop, or a sentinel (`epoch + 1`) while a writer is inside.
    published: Box<[AtomicU64]>,
    /// Buffer-set stamp, bumped on registration: snapshots must also prove
    /// they saw the current buffer roster.
    generation: AtomicU64,
    /// The last built snapshot; possibly stale (every consumer revalidates).
    snapshot: RwLock<Arc<SpaceSnapshot>>,
    /// Globally allocated buffer ids (`id % shards` routes to a shard).
    next_buffer: AtomicUsize,
    /// Per-shard MPSC queues of epoch-stamped staged-insertion batches.
    queues: Box<[AdaptationQueue]>,
    /// Cap on queued batches per shard; pushes beyond it are rejected.
    queue_limit: AtomicUsize,
    /// Background applier registration: the thread to unpark when a batch
    /// is queued. Leaf lock (never held across any other acquisition).
    applier: Mutex<Option<std::thread::Thread>>,
    /// "Queues have work" latch for the applier (swap-to-consume).
    apply_due: AtomicU64,
    /// Applier shutdown latch.
    applier_exit: AtomicU64,
    config: SpaceConfig,
    budget: Arc<MemoryBudget>,
}

impl ShardedSpace {
    /// Creates an empty sharded space drawing from a shared
    /// [`MemoryBudget`]; the caller configures the budget's limits.
    pub fn with_budget(config: SpaceConfig, budget: Arc<MemoryBudget>) -> Self {
        config.validate();
        let footprints: Arc<Vec<AtomicUsize>> =
            Arc::new((0..config.shards).map(|_| AtomicUsize::new(0)).collect());
        let shards: Box<[RwLock<IndexBufferSpace>]> = (0..config.shards)
            .map(|i| {
                RwLock::new(IndexBufferSpace::for_shard(
                    config,
                    Arc::clone(&budget),
                    Arc::clone(&footprints),
                    i,
                ))
            })
            .collect();
        let published = (0..config.shards).map(|_| AtomicU64::new(0)).collect();
        let queues = (0..config.shards).map(|_| AdaptationQueue::new()).collect();
        ShardedSpace {
            shards,
            published,
            generation: AtomicU64::new(0),
            snapshot: RwLock::new(Arc::new(SpaceSnapshot {
                generation: 0,
                sections: Vec::new(),
            })),
            next_buffer: AtomicUsize::new(0),
            queues,
            queue_limit: AtomicUsize::new(DEFAULT_ADAPTATION_QUEUE_DEPTH),
            applier: Mutex::new(None),
            apply_due: AtomicU64::new(0),
            applier_exit: AtomicU64::new(0),
            config,
            budget,
        }
    }

    /// Creates an empty sharded space with its own private budget, capped
    /// at [`SpaceConfig::budget_bytes`].
    pub fn new(config: SpaceConfig) -> Self {
        let budget = match config.budget_bytes() {
            Some(bytes) => {
                MemoryBudget::unlimited().with_component_limit(BudgetComponent::IndexSpace, bytes)
            }
            None => MemoryBudget::unlimited(),
        };
        Self::with_budget(config, Arc::new(budget))
    }

    /// The space configuration.
    pub fn config(&self) -> &SpaceConfig {
        &self.config
    }

    /// The governor this space draws from.
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total buffers registered across all shards.
    pub fn num_buffers(&self) -> usize {
        self.next_buffer.load(Ordering::Acquire)
    }

    /// The shard a buffer lives in.
    pub fn shard_of(&self, id: BufferId) -> usize {
        id % self.shards.len()
    }

    /// Registers a new Index Buffer (see [`IndexBufferSpace::register`]);
    /// the global id also selects the shard. Bumps the generation so
    /// published snapshots that predate the roster change invalidate.
    pub fn register(
        &self,
        name: impl Into<String>,
        config: BufferConfig,
        counts: Vec<u32>,
    ) -> BufferId {
        let id = self.next_buffer.fetch_add(1, Ordering::AcqRel);
        self.shard_write(self.shard_of(id))
            .register_as(id, name, config, counts);
        self.generation.fetch_add(1, Ordering::AcqRel);
        id
    }

    /// Write-locks one shard. Acquisition parks the epoch sentinel (failing
    /// fast-path validation for the whole critical section), drains the
    /// shard's deferred Table II events, then drains the shard's adaptation
    /// queue — so the guard always exposes histories with nothing
    /// outstanding and buffer state with no applicable batch parked. The
    /// queue drain coming *second* means queued applies see settled
    /// histories, and its coming before the guard is handed out means every
    /// write-side observer (DML, displacement, DDL) sees pre-change batches
    /// applied or dropped, never surviving across the change.
    pub fn shard_write(&self, shard: usize) -> ShardWriteGuard<'_> {
        let mut inner = self.shards[shard].write();
        // Park the sentinel: `epoch + 1` can never equal an epoch a section
        // was built at, so every validation fails until the guard's drop
        // republishes the truth. Model test: `snapshot_validation_vs_writer`.
        #[cfg(not(model_seeded_bug = "missing_sentinel"))]
        self.published[shard].store(inner.epoch().wrapping_add(1), Ordering::Release);
        #[cfg(not(model_seeded_bug = "missing_drain"))]
        inner.drain_deferred();
        self.queues[shard].drain_into(&mut inner);
        ShardWriteGuard {
            inner,
            published: &self.published[shard],
        }
    }

    /// Read-locks one shard (no drain — readers cannot mutate histories).
    pub fn shard_read(&self, shard: usize) -> RwLockReadGuard<'_, IndexBufferSpace> {
        self.shards[shard].read()
    }

    /// Write-locks every shard, in ascending shard index.
    pub fn write_all(&self) -> Vec<ShardWriteGuard<'_>> {
        (0..self.shards.len())
            .map(|shard| self.shard_write(shard))
            .collect()
    }

    /// Read-locks every shard, in ascending shard index.
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, IndexBufferSpace>> {
        (0..self.shards.len())
            .map(|shard| self.shard_read(shard))
            .collect()
    }

    /// Reconciles the governor with every shard's resident footprint.
    pub fn sync_all(&self) {
        for shard in self.read_all() {
            shard.sync_budget();
        }
    }

    /// True when `snapshot` still reflects the live space: same buffer
    /// roster and, for every shard, a published epoch equal to the one its
    /// section was built at. Plain `Acquire` loads — no lock, no shared
    /// write — so the fast path can validate on every query.
    pub fn validate(&self, snapshot: &SpaceSnapshot) -> bool {
        snapshot.sections.len() == self.shards.len()
            && snapshot.generation == self.generation.load(Ordering::Acquire)
            && snapshot
                .sections
                .iter()
                .enumerate()
                .all(|(i, s)| self.published[i].load(Ordering::Acquire) == s.epoch)
    }

    /// A validated read-only snapshot of the whole space: returns the
    /// published one when still valid, otherwise rebuilds (under shard read
    /// locks, ascending) and republishes. Callers must not hold any shard
    /// lock.
    pub fn space_snapshot(&self) -> Arc<SpaceSnapshot> {
        let current = Arc::clone(&self.snapshot.read());
        // Seeded bug: serve any non-empty cached snapshot without
        // validating — a DDL (`register`) that staled the roster goes
        // unnoticed. Model test: `generation_vs_add_buffer`.
        #[cfg(model_seeded_bug = "stale_snapshot_cache")]
        if !current.sections.is_empty() {
            return current;
        }
        if self.validate(&current) {
            return current;
        }
        let generation = self.generation.load(Ordering::Acquire);
        let sections = self
            .read_all()
            .iter()
            .map(|shard| ShardSection {
                epoch: shard.epoch(),
                buffers: shard
                    .buffer_ids()
                    .map(|id| {
                        let counters = shard.counters(id);
                        let buffer = shard.buffer(id);
                        BufferSummary {
                            id,
                            entries: buffer.num_entries(),
                            footprint: buffer.footprint(),
                            epoch: shard.epoch(),
                            partitions: buffer.num_partitions(),
                            partition_pages: buffer.config().partition_pages,
                            skip: counters.skip_snapshot(counters.num_pages()),
                            candidates: counters.pages_by_ascending_counter(),
                            pending: Arc::clone(shard.pending(id)),
                        }
                    })
                    .collect(),
            })
            .collect();
        let rebuilt = Arc::new(SpaceSnapshot {
            generation,
            sections,
        });
        // Last-build-wins publication; a concurrently staled snapshot is
        // caught by the next validation, never served silently.
        *self.snapshot.write() = Arc::clone(&rebuilt);
        rebuilt
    }

    /// Defers one query's Table II events into every buffer's pending cell
    /// (Table II touches all histories). The queried buffer's shard-write
    /// entry then drains them in order. Callers must not hold any shard
    /// lock (the snapshot may rebuild).
    pub fn record_shared(&self, queried: Option<BufferId>, partial_hit: bool) {
        let snapshot = self.space_snapshot();
        for buffer in snapshot.buffers() {
            if Some(buffer.id()) == queried && !partial_hit {
                buffer.pending().defer(0, 1, 0);
            } else {
                buffer.pending().defer(1, 0, 0);
            }
        }
    }

    /// Plans Algorithm 2's page selection for `target` read-only against a
    /// validated `snapshot`, returning `Some(pages)` exactly when the locked
    /// [`IndexBufferSpace::select_pages_for_buffer`] is *provably*
    /// equivalent without mutating anything — no partition displaced, no RNG
    /// drawn, no counter restored — and `None` otherwise (the caller fails
    /// closed to the shard-write path).
    ///
    /// The three plannable cases:
    /// 1. No candidate pages (`C[p] = 0` everywhere): the locked selection
    ///    returns empty before touching budget or RNG.
    /// 2. Unlimited `IndexSpace` budget: the locked path skips the
    ///    displacement loop entirely, so growth alone decides.
    /// 3. Limited budget but zero growth *and* no sibling buffer in the
    ///    shard owns a partition: the displacement loop's victim pick
    ///    deterministically finds no eligible partition and returns without
    ///    consuming randomness.
    ///
    /// A limited budget with nonzero growth is **not** plannable: committing
    /// those pages outside the lock could overshoot the budget raced by a
    /// concurrent reservation. Only empty selections are accepted there,
    /// which also makes the unsynchronized `headroom` read sound.
    pub fn plan_selection(&self, snapshot: &SpaceSnapshot, target: BufferId) -> Option<Vec<u32>> {
        let section = snapshot.sections.get(self.shard_of(target))?;
        let summary = section.buffers.iter().find(|b| b.id == target)?;
        let candidates = summary.candidates.as_slice();
        if candidates.is_empty() {
            return Some(Vec::new());
        }
        let i_max = self.config.i_max as usize;
        if self.budget.is_unlimited(BudgetComponent::IndexSpace) {
            let (pages, _, _) = grow_selection(candidates, i_max, usize::MAX);
            return Some(candidates[..pages].iter().map(|&(p, _)| p).collect());
        }
        let headroom = self.budget.headroom(BudgetComponent::IndexSpace);
        let (pages, _, _) = grow_selection(candidates, i_max, headroom);
        if pages > 0 {
            return None;
        }
        let displacement_reachable = i_max > 0
            && section
                .buffers
                .iter()
                .any(|b| b.id != target && b.partitions > 0);
        if displacement_reachable {
            return None;
        }
        Some(Vec::new())
    }

    /// Queues an epoch-stamped staged-insertion batch for off-path apply,
    /// routed to the shard of `batch.buffer`. When the shard's queue is at
    /// its depth cap the push is rejected and the batch handed back — the
    /// caller fails closed to an inline apply under the shard write lock.
    /// On success, wakes the registered applier thread, if any.
    ///
    /// Takes only the queue mutex (a leaf): never a shard lock.
    pub fn push_adaptation(&self, batch: AdaptationBatch) -> Result<(), AdaptationBatch> {
        let queue = &self.queues[self.shard_of(batch.buffer)];
        let limit = self.queue_limit.load(Ordering::Relaxed);
        {
            let mut q = queue.batches.lock();
            if q.len() >= limit {
                drop(q);
                queue.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(batch);
            }
            q.push_back(batch);
            queue.depth.store(q.len(), Ordering::Release);
        }
        queue.enqueued.fetch_add(1, Ordering::Relaxed);
        // Release pairs with the applier's swap: the latch is set only
        // after the batch is visible in the queue (mutex-ordered anyway; the
        // latch is the cross-thread "work exists" edge the model audits).
        self.apply_due.store(1, Ordering::Release);
        if let Some(thread) = &*self.applier.lock() {
            thread.unpark();
        }
        Ok(())
    }

    /// Sets the per-shard cap on queued adaptation batches.
    pub fn set_adaptation_queue_limit(&self, limit: usize) {
        self.queue_limit.store(limit.max(1), Ordering::Relaxed);
    }

    /// Drains every shard whose adaptation queue is non-empty by taking a
    /// write-side entry (which applies or drops each parked batch). The
    /// empty-queue fast check means quiescent shards stay untouched.
    pub fn drain_adaptation_queues(&self) {
        for shard in 0..self.shards.len() {
            if self.queues[shard].depth.load(Ordering::Acquire) > 0 {
                drop(self.shard_write(shard));
            }
        }
    }

    /// Registers the background applier thread for queue-depth wakeups.
    pub fn register_applier(&self, thread: std::thread::Thread) {
        *self.applier.lock() = Some(thread);
    }

    /// Signals the applier loop to exit and wakes it.
    pub fn shutdown_applier(&self) {
        self.applier_exit.store(1, Ordering::Release);
        if let Some(thread) = &*self.applier.lock() {
            thread.unpark();
        }
    }

    /// True once [`shutdown_applier`](Self::shutdown_applier) was called.
    pub fn applier_should_exit(&self) -> bool {
        self.applier_exit.load(Ordering::Acquire) != 0
    }

    /// Consumes the "queued work exists" latch (applier loop): true at most
    /// once per set. A missed set (push racing the swap) only delays the
    /// drain to the applier's next timeout tick or the next write-side
    /// shard entry — never loses a batch.
    pub fn take_apply_due(&self) -> bool {
        self.apply_due.swap(0, Ordering::AcqRel) != 0
    }

    /// Aggregate adaptation-queue counters across all shards.
    pub fn adaptation_stats(&self) -> AdaptationStats {
        let mut stats = AdaptationStats::default();
        for queue in &self.queues {
            stats.depth += queue.depth.load(Ordering::Acquire);
            stats.enqueued += queue.enqueued.load(Ordering::Relaxed);
            stats.applied += queue.applied.load(Ordering::Relaxed);
            stats.dropped += queue.dropped.load(Ordering::Relaxed);
            stats.rejected += queue.rejected.load(Ordering::Relaxed);
        }
        stats
    }

    /// Consistency check across every shard (tests): per-shard invariants
    /// plus the cross-shard budget reconciliation.
    pub fn check_invariants(&self) {
        for shard in self.read_all() {
            shard.check_invariants();
        }
    }
}

impl std::fmt::Debug for ShardedSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSpace")
            .field("shards", &self.shards.len())
            .field("buffers", &self.num_buffers())
            .finish_non_exhaustive()
    }
}

/// Write guard for one shard. While held, the shard's published epoch reads
/// as a sentinel, so no snapshot of this shard validates; dropping the
/// guard republishes the (possibly advanced) true epoch, instantly
/// re-validating snapshots after write windows that mutated nothing.
pub struct ShardWriteGuard<'a> {
    inner: RwLockWriteGuard<'a, IndexBufferSpace>,
    published: &'a AtomicU64,
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        self.published.store(self.inner.epoch(), Ordering::Release);
    }
}

impl std::ops::Deref for ShardWriteGuard<'_> {
    type Target = IndexBufferSpace;
    fn deref(&self) -> &IndexBufferSpace {
        &self.inner
    }
}

impl std::ops::DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut IndexBufferSpace {
        &mut self.inner
    }
}

/// Staged buffer insertions from one snapshot-planned scan, stamped with
/// the shard epoch the plan was validated at. Applied off-path only while
/// the shard epoch still proves nothing displaced, cleared, reset, or
/// redefined the buffer since the plan (`C[p]` re-checks then catch
/// page-granular races with sibling scans).
#[derive(Debug)]
pub struct AdaptationBatch {
    /// The buffer the entries belong to.
    pub buffer: BufferId,
    /// Shard epoch of the snapshot the producing scan planned against.
    pub epoch: u64,
    /// The staged pages (tuples gathered during the sweep).
    pub staged: Vec<StagedPage>,
}

/// Aggregate adaptation-queue counters (see
/// [`ShardedSpace::adaptation_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptationStats {
    /// Batches currently parked across all shards.
    pub depth: usize,
    /// Batches ever queued.
    pub enqueued: u64,
    /// Batches applied by a drain (epoch matched).
    pub applied: u64,
    /// Batches dropped by a drain (stale epoch).
    pub dropped: u64,
    /// Pushes rejected because the queue was at its depth cap.
    pub rejected: u64,
}

/// One shard's MPSC adaptation queue: producers are snapshot-planned scans
/// (any thread), the consumer is whoever enters the shard write-side next —
/// the background applier or an unrelated writer. The mutex is a leaf in
/// the lock hierarchy; `depth` is the lock-free emptiness fast check.
struct AdaptationQueue {
    batches: Mutex<VecDeque<AdaptationBatch>>,
    depth: AtomicUsize,
    enqueued: AtomicU64,
    applied: AtomicU64,
    dropped: AtomicU64,
    rejected: AtomicU64,
}

impl AdaptationQueue {
    fn new() -> Self {
        AdaptationQueue {
            batches: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
            enqueued: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Applies or drops every parked batch against the write-locked shard.
    ///
    /// Freshness is judged against the shard epoch *at drain start*: each
    /// apply bumps the epoch, so same-generation batches from sibling scans
    /// all pass the epoch gate and rely on the per-page `C[p] != 0` check
    /// to drop exactly the pages another batch already indexed. A batch
    /// whose epoch predates drain start saw buffer state some write since
    /// invalidated (displacement, clear, reset, DDL) and is dropped whole —
    /// its pages' counters still route them into a later scan's selection,
    /// so nothing is lost, only deferred. Model test:
    /// `adaptation_queue_vs_ddl`; seeded bug `queued_apply_skips_epoch_check`
    /// applies stale batches and resurrects cleared entries.
    fn drain_into(&self, inner: &mut IndexBufferSpace) {
        // Acquire pairs with the push's Release depth store: observing the
        // count implies observing the batch behind the mutex. A missed
        // concurrent push is drained by the *next* entry — the push cannot
        // have planned against this writer's mutations (its epoch stamp
        // predates them), so skipping it here is always sound.
        if self.depth.load(Ordering::Acquire) == 0 {
            return;
        }
        let batches: Vec<AdaptationBatch> = {
            let mut q = self.batches.lock();
            self.depth.store(0, Ordering::Release);
            q.drain(..).collect()
        };
        let epoch_start = inner.epoch();
        let mut applied_any = false;
        for batch in batches {
            let AdaptationBatch {
                buffer,
                epoch,
                staged,
            } = batch;
            #[cfg(not(model_seeded_bug = "queued_apply_skips_epoch_check"))]
            let fresh = epoch == epoch_start;
            // Seeded bug: skip the epoch gate — a batch staged before a
            // clear_buffer/reset_counters re-applies dead entries.
            #[cfg(model_seeded_bug = "queued_apply_skips_epoch_check")]
            let fresh = {
                let _ = epoch;
                true
            };
            if !fresh {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut stats = ScanStats::default();
            inner.with_buffer_mut(buffer, |buffer, counters| {
                apply_staged_checked(buffer, counters, staged, &mut stats);
            });
            self.applied.fetch_add(1, Ordering::Relaxed);
            applied_any = true;
        }
        if applied_any {
            inner.sync_budget();
        }
    }
}

/// An epoch-stamped, read-only view of the whole space: per-buffer entry
/// counts, footprints and cloned skip bitsets, plus the shared deferred-
/// event cells. Valid (per [`ShardedSpace::validate`]) it answers
/// fully-skippable queries and introspection without any lock.
#[derive(Debug)]
pub struct SpaceSnapshot {
    generation: u64,
    sections: Vec<ShardSection>,
}

#[derive(Debug)]
struct ShardSection {
    epoch: u64,
    buffers: Vec<BufferSummary>,
}

/// One buffer's entry in a [`SpaceSnapshot`].
#[derive(Debug)]
pub struct BufferSummary {
    id: BufferId,
    entries: usize,
    footprint: usize,
    /// The shard epoch the summary was built at (== its section's).
    epoch: u64,
    /// Partitions resident at snapshot time (victim-eligibility input for
    /// [`ShardedSpace::plan_selection`]).
    partitions: usize,
    /// The buffer's configured partition size in pages.
    partition_pages: u32,
    skip: SkipBitset,
    /// Candidate pages in ascending `(C[p], p)` order at snapshot time —
    /// the input Algorithm 2 grows a selection from.
    candidates: Vec<(u32, u32)>,
    pending: Arc<BufferPending>,
}

impl BufferSummary {
    /// The buffer's id.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Entries resident at snapshot time.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Resident bytes at snapshot time.
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// The shard epoch this summary was built at. A planned scan stamps its
    /// [`AdaptationBatch`] with this, and an epoch-guarded probe of the
    /// live buffer compares against it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Partitions resident at snapshot time.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The buffer's configured partition size in pages.
    pub fn partition_pages(&self) -> u32 {
        self.partition_pages
    }

    /// The skip bitset at snapshot time, sized to the tracked page range.
    pub fn skip(&self) -> &SkipBitset {
        &self.skip
    }

    /// Candidate pages (`C[p] > 0`) in ascending `(C[p], p)` order at
    /// snapshot time.
    pub fn candidates(&self) -> &[(u32, u32)] {
        &self.candidates
    }

    /// The buffer's deferred-event cell (shared with the live slot).
    pub fn pending(&self) -> &BufferPending {
        &self.pending
    }

    /// True when a scan of `heap_pages` table pages against this buffer
    /// would skip every page *and* find nothing in the buffer itself —
    /// exactly the queries the lock-free fast path may answer. Requires
    /// `entries == 0` because a non-empty buffer contributes buffer-scan
    /// matches the snapshot cannot produce.
    pub fn fully_skippable(&self, heap_pages: u32) -> bool {
        self.entries == 0 && self.skip.len() >= heap_pages && self.skip.count() == self.skip.len()
    }
}

impl SpaceSnapshot {
    /// The buffer-roster stamp this snapshot was built at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Every buffer in the space, ascending shard then registration order.
    pub fn buffers(&self) -> impl Iterator<Item = &BufferSummary> + '_ {
        self.sections.iter().flat_map(|s| s.buffers.iter())
    }

    /// Looks up one buffer's summary.
    pub fn buffer(&self, id: BufferId) -> Option<&BufferSummary> {
        self.buffers().find(|b| b.id == id)
    }

    /// Per-buffer entry counts in ascending buffer-id order (the shape
    /// query metrics report).
    pub fn buffer_entries(&self) -> Vec<usize> {
        let mut all: Vec<(BufferId, usize)> = self.buffers().map(|b| (b.id, b.entries)).collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all.into_iter().map(|(_, entries)| entries).collect()
    }
}

/// A client-private snapshot cache: the current [`SpaceSnapshot`] `Arc`
/// plus locally accumulated deferred Table II events.
///
/// The point of the local accumulators is scaling: a fast-path query that
/// did a `fetch_add` on shared pending cells would still bounce cache lines
/// between cores. Instead each client counts its events in plain integers
/// and [`flush`](Self::flush)es them into the shared cells only at slow-path
/// boundaries (any lock acquisition) or when the client retires.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    snapshot: Option<Arc<SpaceSnapshot>>,
    /// Deferred events per buffer, indexed by global [`BufferId`].
    local: Vec<LocalPending>,
}

#[derive(Debug, Default, Clone, Copy)]
struct LocalPending {
    ticks: u64,
    uses: u64,
    /// Ticks accumulated before this batch's first use.
    uses_at: u64,
}

impl SnapshotCache {
    /// An empty cache (no snapshot, no deferred events).
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached snapshot if it still validates against `space`, otherwise
    /// a freshly fetched one (which may rebuild under shard read locks —
    /// callers must not hold any shard lock).
    pub fn ensure(&mut self, space: &ShardedSpace) -> &Arc<SpaceSnapshot> {
        let stale = match &self.snapshot {
            Some(snapshot) => !space.validate(snapshot),
            None => true,
        };
        if stale {
            self.snapshot = Some(space.space_snapshot());
        }
        // The option was just populated on the stale path.
        // aib-lint: allow(no-panic) — set two lines above.
        self.snapshot.as_ref().expect("snapshot just ensured")
    }

    /// Defers one query's Table II events locally (no shared write at all).
    /// Call only with the snapshot returned by [`ensure`](Self::ensure)
    /// this query: events are recorded against its buffer roster.
    pub fn record(&mut self, queried: Option<BufferId>, partial_hit: bool) {
        let Some(snapshot) = &self.snapshot else {
            return;
        };
        let max_id = snapshot.buffers().map(|b| b.id).max();
        if let Some(max_id) = max_id {
            if self.local.len() <= max_id {
                self.local.resize(max_id + 1, LocalPending::default());
            }
        }
        for buffer in snapshot.buffers() {
            let cell = &mut self.local[buffer.id];
            if Some(buffer.id) == queried && !partial_hit {
                if cell.uses == 0 {
                    cell.uses_at = cell.ticks;
                }
                cell.uses += 1;
            } else {
                cell.ticks += 1;
            }
        }
    }

    /// Publishes every locally deferred event into the shared pending
    /// cells. Cheap when nothing is deferred; called before any lock
    /// acquisition and when the client retires.
    pub fn flush(&mut self) {
        let Some(snapshot) = &self.snapshot else {
            return;
        };
        for buffer in snapshot.buffers() {
            let Some(cell) = self.local.get_mut(buffer.id) else {
                continue;
            };
            if cell.ticks != 0 || cell.uses != 0 {
                buffer.pending().defer(cell.ticks, cell.uses, cell.uses_at);
                *cell = LocalPending::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> SpaceConfig {
        SpaceConfig {
            shards,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn buffers_route_to_shards_round_robin() {
        let space = ShardedSpace::new(cfg(3));
        let ids: Vec<BufferId> = (0..7)
            .map(|i| space.register(format!("b{i}"), BufferConfig::default(), vec![1; 4]))
            .collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        assert_eq!(space.num_buffers(), 7);
        assert_eq!(space.shard_read(0).num_buffers(), 3);
        assert_eq!(space.shard_read(1).num_buffers(), 2);
        assert_eq!(space.shard_read(2).num_buffers(), 2);
        // Every buffer is reachable through its shard under its global id.
        for &id in &ids {
            let shard = space.shard_read(space.shard_of(id));
            assert_eq!(shard.buffer(id).id(), id);
        }
        space.check_invariants();
    }

    #[test]
    fn snapshot_validates_until_a_mutation_and_revalidates_after() {
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![0; 4]);
        let snap = space.space_snapshot();
        assert!(space.validate(&snap));
        assert!(snap.buffer(a).is_some());

        // A write window that mutates nothing re-validates on drop.
        drop(space.shard_write(space.shard_of(a)));
        assert!(space.validate(&snap), "no mutation, epoch republished");

        // A mutation inside the window invalidates for good.
        space
            .shard_write(space.shard_of(a))
            .with_buffer_mut(a, |_, _| {});
        assert!(!space.validate(&snap), "mutated shard stales the snapshot");
        let fresh = space.space_snapshot();
        assert!(space.validate(&fresh));
    }

    #[test]
    fn snapshot_invalidates_while_writer_is_inside() {
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![0; 4]);
        let snap = space.space_snapshot();
        let guard = space.shard_write(space.shard_of(a));
        assert!(
            !space.validate(&snap),
            "sentinel parks while the writer holds the shard"
        );
        drop(guard);
        assert!(space.validate(&snap), "clean window restores validity");
    }

    #[test]
    fn bulk_counter_resets_stale_published_snapshots() {
        // Satellite regression: reset_counters / clear_buffer flip pages
        // skippable; a snapshot published before the reset must not keep
        // validating (it would answer from the stale bitset).
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![1; 4]);
        let before = space.space_snapshot();
        assert!(space.validate(&before));
        space
            .shard_write(space.shard_of(a))
            .reset_counters(a, vec![0; 4]);
        assert!(
            !space.validate(&before),
            "reset_counters must invalidate published snapshots"
        );
        let after = space.space_snapshot();
        let summary = after.buffer(a).expect("registered");
        assert!(summary.fully_skippable(4));

        let again = space.space_snapshot();
        space.shard_write(space.shard_of(a)).clear_buffer(a);
        assert!(
            !space.validate(&again),
            "clear_buffer must invalidate published snapshots"
        );
    }

    #[test]
    fn registration_stales_snapshots_via_generation() {
        let space = ShardedSpace::new(cfg(2));
        space.register("a", BufferConfig::default(), vec![0; 2]);
        let snap = space.space_snapshot();
        assert!(space.validate(&snap));
        let b = space.register("b", BufferConfig::default(), vec![0; 2]);
        assert!(!space.validate(&snap), "roster change invalidates");
        let fresh = space.space_snapshot();
        assert!(fresh.buffer(b).is_some());
    }

    #[test]
    fn fully_skippable_demands_empty_buffer_and_full_bitset() {
        let space = ShardedSpace::new(cfg(1));
        let a = space.register("a", BufferConfig::default(), vec![0, 1, 0]);
        let snap = space.space_snapshot();
        let s = snap.buffer(a).expect("registered");
        assert!(!s.fully_skippable(3), "page 1 still has uncovered tuples");
        space.shard_write(0).reset_counters(a, vec![0, 0, 0]);
        let snap = space.space_snapshot();
        let s = snap.buffer(a).expect("registered");
        assert!(s.fully_skippable(3));
        assert!(s.fully_skippable(2), "tracked range may exceed the heap");
        assert!(!s.fully_skippable(4), "untracked pages are never skippable");
    }

    #[test]
    fn cache_defers_locally_and_flushes_through_shared_cells() {
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), Vec::new());
        let b = space.register("b", BufferConfig::default(), Vec::new());
        let mut cache = SnapshotCache::new();
        cache.ensure(&space);
        // tick-all, then a use on `a`, then another tick-all.
        cache.record(None, false);
        cache.record(Some(a), false);
        cache.record(None, false);
        // Nothing visible anywhere until the flush...
        assert!(space.shard_read(space.shard_of(a)).pending(a).is_empty());
        cache.flush();
        // ...then the write-side drain applies them in deferral order.
        drop(space.shard_write(space.shard_of(a)));
        drop(space.shard_write(space.shard_of(b)));
        let sa = space.shard_read(space.shard_of(a));
        assert_eq!(sa.buffer(a).history().uses(), 1);
        assert_eq!(sa.buffer(a).history().clock(), 2);
        drop(sa);
        let sb = space.shard_read(space.shard_of(b));
        assert_eq!(sb.buffer(b).history().uses(), 0);
        assert_eq!(sb.buffer(b).history().clock(), 3);
    }

    #[test]
    fn plan_selection_matches_locked_selection_when_plannable() {
        use aib_storage::DEFAULT_ENTRY_FOOTPRINT;
        // Unlimited budget: the planned selection must equal the locked one.
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![3, 0, 1, 2]);
        let snap = space.space_snapshot();
        let planned = space.plan_selection(&snap, a).expect("unlimited budget");
        let locked = space
            .shard_write(space.shard_of(a))
            .select_pages_for_buffer(a);
        assert_eq!(planned, locked.pages);
        assert_eq!(planned, vec![2, 3, 0], "ascending counter order");

        // Zero headroom, no sibling partitions: plannable, empty.
        let tight = ShardedSpace::new(SpaceConfig {
            max_bytes: Some(0),
            shards: 1,
            seed: 7,
            ..Default::default()
        });
        let b = tight.register("b", BufferConfig::default(), vec![5, 5]);
        let snap = tight.space_snapshot();
        assert_eq!(tight.plan_selection(&snap, b), Some(Vec::new()));
        let locked = tight.shard_write(0).select_pages_for_buffer(b);
        assert!(locked.pages.is_empty() && locked.displaced.is_empty());

        // Limited budget with headroom: growth is nonzero → not plannable.
        let roomy = ShardedSpace::new(SpaceConfig {
            max_bytes: Some(10 * DEFAULT_ENTRY_FOOTPRINT),
            shards: 1,
            seed: 7,
            ..Default::default()
        });
        let c = roomy.register("c", BufferConfig::default(), vec![1, 1]);
        let snap = roomy.space_snapshot();
        assert_eq!(roomy.plan_selection(&snap, c), None);

        // No candidates at all: plannable regardless of budget.
        let d = roomy.register("d", BufferConfig::default(), vec![0, 0]);
        let snap = roomy.space_snapshot();
        assert_eq!(roomy.plan_selection(&snap, d), Some(Vec::new()));
    }

    #[test]
    fn plan_selection_fails_closed_when_displacement_is_reachable() {
        use aib_storage::{Rid, Value};
        // Zero headroom but a sibling owns a partition: the locked path
        // would consult the RNG-weighted victim pick — not plannable.
        let space = ShardedSpace::new(SpaceConfig {
            max_bytes: Some(2 * aib_storage::DEFAULT_ENTRY_FOOTPRINT),
            shards: 1,
            seed: 7,
            ..Default::default()
        });
        let a = space.register("a", BufferConfig::default(), vec![1, 1]);
        let b = space.register("b", BufferConfig::default(), vec![4, 4]);
        {
            let mut s = space.shard_write(0);
            s.with_buffer_mut(a, |buffer, counters| {
                buffer.index_page(0, vec![(Value::Int(0), Rid::new(0, 0))]);
                counters.set_zero(0);
                buffer.index_page(1, vec![(Value::Int(1), Rid::new(1, 0))]);
                counters.set_zero(1);
            });
            s.sync_budget();
        }
        let snap = space.space_snapshot();
        assert_eq!(
            space.plan_selection(&snap, b),
            None,
            "sibling partition makes the victim pick reachable"
        );
    }

    #[test]
    fn queued_batches_apply_on_next_write_entry() {
        use aib_storage::{Rid, Value};
        let space = ShardedSpace::new(cfg(1));
        let a = space.register("a", BufferConfig::default(), vec![2, 3]);
        let snap = space.space_snapshot();
        let epoch = snap.buffer(a).expect("registered").epoch();
        assert!(space
            .push_adaptation(AdaptationBatch {
                buffer: a,
                epoch,
                staged: vec![crate::scan::StagedPage {
                    ordinal: 0,
                    entries: vec![
                        (Value::Int(7), Rid::new(0, 0)),
                        (Value::Int(9), Rid::new(0, 1))
                    ],
                }],
            })
            .is_ok());
        assert_eq!(space.adaptation_stats().depth, 1);
        // The next write-side entry drains and applies.
        drop(space.shard_write(0));
        let stats = space.adaptation_stats();
        assert_eq!((stats.depth, stats.applied, stats.dropped), (0, 1, 0));
        let s = space.shard_read(0);
        assert_eq!(s.buffer(a).num_entries(), 2);
        assert_eq!(s.counters(a).get(0), 0, "applied page goes skippable");
        drop(s);
        space.check_invariants();
    }

    #[test]
    fn stale_batches_are_dropped_not_applied() {
        use aib_storage::{Rid, Value};
        let space = ShardedSpace::new(cfg(1));
        let a = space.register("a", BufferConfig::default(), vec![2]);
        let snap = space.space_snapshot();
        let epoch = snap.buffer(a).expect("registered").epoch();
        // A post-snapshot mutation (the reset) stales the stamp.
        space.shard_write(0).reset_counters(a, vec![4]);
        assert!(space
            .push_adaptation(AdaptationBatch {
                buffer: a,
                epoch,
                staged: vec![crate::scan::StagedPage {
                    ordinal: 0,
                    entries: vec![(Value::Int(7), Rid::new(0, 0))],
                }],
            })
            .is_ok());
        space.drain_adaptation_queues();
        let stats = space.adaptation_stats();
        assert_eq!((stats.depth, stats.applied, stats.dropped), (0, 0, 1));
        let s = space.shard_read(0);
        assert_eq!(s.buffer(a).num_entries(), 0, "stale batch must not apply");
        assert_eq!(s.counters(a).get(0), 4, "counter untouched");
    }

    #[test]
    fn full_queue_rejects_push() {
        let space = ShardedSpace::new(cfg(1));
        let a = space.register("a", BufferConfig::default(), vec![1]);
        space.set_adaptation_queue_limit(1);
        let epoch = space
            .space_snapshot()
            .buffer(a)
            .expect("registered")
            .epoch();
        let batch = |epoch| AdaptationBatch {
            buffer: a,
            epoch,
            staged: Vec::new(),
        };
        assert!(space.push_adaptation(batch(epoch)).is_ok());
        let rejected = space.push_adaptation(batch(epoch));
        assert!(rejected.is_err(), "at cap: rejected, batch handed back");
        let stats = space.adaptation_stats();
        assert_eq!((stats.enqueued, stats.rejected), (1, 1));
    }

    #[test]
    fn snapshot_carries_planning_inputs() {
        let space = ShardedSpace::new(cfg(1));
        let a = space.register("a", BufferConfig::default(), vec![0, 2, 1]);
        let snap = space.space_snapshot();
        let s = snap.buffer(a).expect("registered");
        assert_eq!(s.candidates(), &[(2, 1), (1, 2)]);
        assert_eq!(s.partitions(), 0);
        assert_eq!(s.partition_pages(), BufferConfig::default().partition_pages);
        let live = space.shard_read(0);
        assert_eq!(s.epoch(), live.epoch());
    }

    #[test]
    fn shards_share_one_budget() {
        use aib_storage::{Rid, Value};
        let space = ShardedSpace::new(SpaceConfig {
            max_bytes: Some(10 * aib_storage::DEFAULT_ENTRY_FOOTPRINT),
            shards: 2,
            seed: 7,
            ..Default::default()
        });
        let a = space.register("a", BufferConfig::default(), vec![1; 8]);
        let b = space.register("b", BufferConfig::default(), vec![1; 8]);
        assert_ne!(space.shard_of(a), space.shard_of(b));
        // Fill shard 0's buffer; shard 1 must see the shrunken headroom.
        {
            let mut s0 = space.shard_write(space.shard_of(a));
            for p in 0..8u32 {
                s0.with_buffer_mut(a, |buffer, counters| {
                    buffer.index_page(p, vec![(Value::Int(p as i64), Rid::new(p, 0))]);
                    counters.set_zero(p);
                });
            }
            s0.sync_budget();
        }
        let s1 = space.shard_read(space.shard_of(b));
        assert_eq!(s1.free_entries(), 2, "8 of 10 entries claimed by shard 0");
        drop(s1);
        space.check_invariants();
    }
}
