//! The sharded Index Buffer Space: [`SpaceConfig::shards`] independently
//! locked [`IndexBufferSpace`] shards behind one facade, plus the
//! epoch-stamped read-only [`SpaceSnapshot`] that gives fully-skippable
//! queries a lock-free fast path.
//!
//! ### Why shard
//!
//! With one `RwLock<IndexBufferSpace>`, every query — even one that touches
//! no page — serialises on the space write lock for its Table II history
//! operations, so the CPU-bound fully-skippable workload cannot scale past
//! one core. Sharding assigns each buffer to shard `id % shards`; clients
//! touching disjoint buffers take disjoint locks, and the shared
//! [`MemoryBudget`] still sees the fleet's total footprint (each shard
//! publishes its resident bytes into a shared slot vector and charges the
//! governor with the sum, so displacement pressure crosses shards).
//!
//! ### The lock-free fast path
//!
//! Each shard carries a mutation **epoch**, bumped by every operation that
//! changes buffer or counter state and *published* (via an atomic per shard)
//! only while no writer is inside. A [`SpaceSnapshot`] records, per shard,
//! the epoch its bitsets were cloned at; a snapshot validates by comparing
//! every published epoch against its sections with plain `Acquire` loads —
//! no lock, no shared write. While a writer holds a shard, a sentinel
//! (`epoch + 1`) is parked in the published slot so validation fails for the
//! whole critical section; the guard's drop republishes the true epoch.
//!
//! A validated snapshot proves the skip bitsets are current, so a query
//! whose every page is skippable can answer without any space lock. Its
//! Table II history operations are deferred into per-buffer
//! [`BufferPending`] atomics (shared by `Arc` between slots and snapshots)
//! and drained — in deferral order — by the next write-side entry, which is
//! also why [`ShardedSpace::shard_write`] drains before handing out the
//! guard: no benefit is ever read with deferred events outstanding.
//!
//! ### Lock hierarchy
//!
//! `catalog → shard(0) → shard(1) → … → pool`: shard locks nest inside the
//! catalog lock and outside the buffer-pool internals, and multi-shard
//! acquisitions always proceed in ascending shard index (enforced by
//! `aib-lint`'s lock-order rule).

// aib-lint: allow-file(no-index) — the shard and published vectors are
// sized once at construction and only indexed by `shard_of()` results or
// enumerate() positions; the cache's local cells are resized ahead of every
// indexed access.

use std::sync::Arc;

use crate::sync::{AtomicU64, AtomicUsize, Ordering, RwLock, RwLockReadGuard, RwLockWriteGuard};

use aib_storage::{BudgetComponent, MemoryBudget, MemoryUsage};

use crate::config::{BufferConfig, SpaceConfig};
use crate::counters::SkipBitset;
use crate::index_buffer::BufferId;
use crate::space::{BufferPending, IndexBufferSpace};

/// The sharded Index Buffer Space facade. With `shards = 1` this is a
/// single [`IndexBufferSpace`] behind one lock — bit-for-bit the sequential
/// layout — and every additional shard only splits the lock, never the
/// budget.
pub struct ShardedSpace {
    shards: Box<[RwLock<IndexBufferSpace>]>,
    /// Per-shard published epoch: the shard's epoch as of the last write
    /// guard drop, or a sentinel (`epoch + 1`) while a writer is inside.
    published: Box<[AtomicU64]>,
    /// Buffer-set stamp, bumped on registration: snapshots must also prove
    /// they saw the current buffer roster.
    generation: AtomicU64,
    /// The last built snapshot; possibly stale (every consumer revalidates).
    snapshot: RwLock<Arc<SpaceSnapshot>>,
    /// Globally allocated buffer ids (`id % shards` routes to a shard).
    next_buffer: AtomicUsize,
    config: SpaceConfig,
    budget: Arc<MemoryBudget>,
}

impl ShardedSpace {
    /// Creates an empty sharded space drawing from a shared
    /// [`MemoryBudget`]; the caller configures the budget's limits.
    pub fn with_budget(config: SpaceConfig, budget: Arc<MemoryBudget>) -> Self {
        config.validate();
        let footprints: Arc<Vec<AtomicUsize>> =
            Arc::new((0..config.shards).map(|_| AtomicUsize::new(0)).collect());
        let shards: Box<[RwLock<IndexBufferSpace>]> = (0..config.shards)
            .map(|i| {
                RwLock::new(IndexBufferSpace::for_shard(
                    config,
                    Arc::clone(&budget),
                    Arc::clone(&footprints),
                    i,
                ))
            })
            .collect();
        let published = (0..config.shards).map(|_| AtomicU64::new(0)).collect();
        ShardedSpace {
            shards,
            published,
            generation: AtomicU64::new(0),
            snapshot: RwLock::new(Arc::new(SpaceSnapshot {
                generation: 0,
                sections: Vec::new(),
            })),
            next_buffer: AtomicUsize::new(0),
            config,
            budget,
        }
    }

    /// Creates an empty sharded space with its own private budget, capped
    /// at [`SpaceConfig::budget_bytes`].
    pub fn new(config: SpaceConfig) -> Self {
        let budget = match config.budget_bytes() {
            Some(bytes) => {
                MemoryBudget::unlimited().with_component_limit(BudgetComponent::IndexSpace, bytes)
            }
            None => MemoryBudget::unlimited(),
        };
        Self::with_budget(config, Arc::new(budget))
    }

    /// The space configuration.
    pub fn config(&self) -> &SpaceConfig {
        &self.config
    }

    /// The governor this space draws from.
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total buffers registered across all shards.
    pub fn num_buffers(&self) -> usize {
        self.next_buffer.load(Ordering::Acquire)
    }

    /// The shard a buffer lives in.
    pub fn shard_of(&self, id: BufferId) -> usize {
        id % self.shards.len()
    }

    /// Registers a new Index Buffer (see [`IndexBufferSpace::register`]);
    /// the global id also selects the shard. Bumps the generation so
    /// published snapshots that predate the roster change invalidate.
    pub fn register(
        &self,
        name: impl Into<String>,
        config: BufferConfig,
        counts: Vec<u32>,
    ) -> BufferId {
        let id = self.next_buffer.fetch_add(1, Ordering::AcqRel);
        self.shard_write(self.shard_of(id))
            .register_as(id, name, config, counts);
        self.generation.fetch_add(1, Ordering::AcqRel);
        id
    }

    /// Write-locks one shard. Acquisition parks the epoch sentinel (failing
    /// fast-path validation for the whole critical section) and drains the
    /// shard's deferred Table II events, so the guard always exposes
    /// histories with nothing outstanding.
    pub fn shard_write(&self, shard: usize) -> ShardWriteGuard<'_> {
        let mut inner = self.shards[shard].write();
        // Park the sentinel: `epoch + 1` can never equal an epoch a section
        // was built at, so every validation fails until the guard's drop
        // republishes the truth. Model test: `snapshot_validation_vs_writer`.
        #[cfg(not(model_seeded_bug = "missing_sentinel"))]
        self.published[shard].store(inner.epoch().wrapping_add(1), Ordering::Release);
        #[cfg(not(model_seeded_bug = "missing_drain"))]
        inner.drain_deferred();
        ShardWriteGuard {
            inner,
            published: &self.published[shard],
        }
    }

    /// Read-locks one shard (no drain — readers cannot mutate histories).
    pub fn shard_read(&self, shard: usize) -> RwLockReadGuard<'_, IndexBufferSpace> {
        self.shards[shard].read()
    }

    /// Write-locks every shard, in ascending shard index.
    pub fn write_all(&self) -> Vec<ShardWriteGuard<'_>> {
        (0..self.shards.len())
            .map(|shard| self.shard_write(shard))
            .collect()
    }

    /// Read-locks every shard, in ascending shard index.
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, IndexBufferSpace>> {
        (0..self.shards.len())
            .map(|shard| self.shard_read(shard))
            .collect()
    }

    /// Reconciles the governor with every shard's resident footprint.
    pub fn sync_all(&self) {
        for shard in self.read_all() {
            shard.sync_budget();
        }
    }

    /// True when `snapshot` still reflects the live space: same buffer
    /// roster and, for every shard, a published epoch equal to the one its
    /// section was built at. Plain `Acquire` loads — no lock, no shared
    /// write — so the fast path can validate on every query.
    pub fn validate(&self, snapshot: &SpaceSnapshot) -> bool {
        snapshot.sections.len() == self.shards.len()
            && snapshot.generation == self.generation.load(Ordering::Acquire)
            && snapshot
                .sections
                .iter()
                .enumerate()
                .all(|(i, s)| self.published[i].load(Ordering::Acquire) == s.epoch)
    }

    /// A validated read-only snapshot of the whole space: returns the
    /// published one when still valid, otherwise rebuilds (under shard read
    /// locks, ascending) and republishes. Callers must not hold any shard
    /// lock.
    pub fn space_snapshot(&self) -> Arc<SpaceSnapshot> {
        let current = Arc::clone(&self.snapshot.read());
        // Seeded bug: serve any non-empty cached snapshot without
        // validating — a DDL (`register`) that staled the roster goes
        // unnoticed. Model test: `generation_vs_add_buffer`.
        #[cfg(model_seeded_bug = "stale_snapshot_cache")]
        if !current.sections.is_empty() {
            return current;
        }
        if self.validate(&current) {
            return current;
        }
        let generation = self.generation.load(Ordering::Acquire);
        let sections = self
            .read_all()
            .iter()
            .map(|shard| ShardSection {
                epoch: shard.epoch(),
                buffers: shard
                    .buffer_ids()
                    .map(|id| {
                        let counters = shard.counters(id);
                        BufferSummary {
                            id,
                            entries: shard.buffer(id).num_entries(),
                            footprint: shard.buffer(id).footprint(),
                            skip: counters.skip_snapshot(counters.num_pages()),
                            pending: Arc::clone(shard.pending(id)),
                        }
                    })
                    .collect(),
            })
            .collect();
        let rebuilt = Arc::new(SpaceSnapshot {
            generation,
            sections,
        });
        // Last-build-wins publication; a concurrently staled snapshot is
        // caught by the next validation, never served silently.
        *self.snapshot.write() = Arc::clone(&rebuilt);
        rebuilt
    }

    /// Defers one query's Table II events into every buffer's pending cell
    /// (Table II touches all histories). The queried buffer's shard-write
    /// entry then drains them in order. Callers must not hold any shard
    /// lock (the snapshot may rebuild).
    pub fn record_shared(&self, queried: Option<BufferId>, partial_hit: bool) {
        let snapshot = self.space_snapshot();
        for buffer in snapshot.buffers() {
            if Some(buffer.id()) == queried && !partial_hit {
                buffer.pending().defer(0, 1, 0);
            } else {
                buffer.pending().defer(1, 0, 0);
            }
        }
    }

    /// Consistency check across every shard (tests): per-shard invariants
    /// plus the cross-shard budget reconciliation.
    pub fn check_invariants(&self) {
        for shard in self.read_all() {
            shard.check_invariants();
        }
    }
}

impl std::fmt::Debug for ShardedSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSpace")
            .field("shards", &self.shards.len())
            .field("buffers", &self.num_buffers())
            .finish_non_exhaustive()
    }
}

/// Write guard for one shard. While held, the shard's published epoch reads
/// as a sentinel, so no snapshot of this shard validates; dropping the
/// guard republishes the (possibly advanced) true epoch, instantly
/// re-validating snapshots after write windows that mutated nothing.
pub struct ShardWriteGuard<'a> {
    inner: RwLockWriteGuard<'a, IndexBufferSpace>,
    published: &'a AtomicU64,
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        self.published.store(self.inner.epoch(), Ordering::Release);
    }
}

impl std::ops::Deref for ShardWriteGuard<'_> {
    type Target = IndexBufferSpace;
    fn deref(&self) -> &IndexBufferSpace {
        &self.inner
    }
}

impl std::ops::DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut IndexBufferSpace {
        &mut self.inner
    }
}

/// An epoch-stamped, read-only view of the whole space: per-buffer entry
/// counts, footprints and cloned skip bitsets, plus the shared deferred-
/// event cells. Valid (per [`ShardedSpace::validate`]) it answers
/// fully-skippable queries and introspection without any lock.
#[derive(Debug)]
pub struct SpaceSnapshot {
    generation: u64,
    sections: Vec<ShardSection>,
}

#[derive(Debug)]
struct ShardSection {
    epoch: u64,
    buffers: Vec<BufferSummary>,
}

/// One buffer's entry in a [`SpaceSnapshot`].
#[derive(Debug)]
pub struct BufferSummary {
    id: BufferId,
    entries: usize,
    footprint: usize,
    skip: SkipBitset,
    pending: Arc<BufferPending>,
}

impl BufferSummary {
    /// The buffer's id.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Entries resident at snapshot time.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Resident bytes at snapshot time.
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// The skip bitset at snapshot time, sized to the tracked page range.
    pub fn skip(&self) -> &SkipBitset {
        &self.skip
    }

    /// The buffer's deferred-event cell (shared with the live slot).
    pub fn pending(&self) -> &BufferPending {
        &self.pending
    }

    /// True when a scan of `heap_pages` table pages against this buffer
    /// would skip every page *and* find nothing in the buffer itself —
    /// exactly the queries the lock-free fast path may answer. Requires
    /// `entries == 0` because a non-empty buffer contributes buffer-scan
    /// matches the snapshot cannot produce.
    pub fn fully_skippable(&self, heap_pages: u32) -> bool {
        self.entries == 0 && self.skip.len() >= heap_pages && self.skip.count() == self.skip.len()
    }
}

impl SpaceSnapshot {
    /// The buffer-roster stamp this snapshot was built at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Every buffer in the space, ascending shard then registration order.
    pub fn buffers(&self) -> impl Iterator<Item = &BufferSummary> + '_ {
        self.sections.iter().flat_map(|s| s.buffers.iter())
    }

    /// Looks up one buffer's summary.
    pub fn buffer(&self, id: BufferId) -> Option<&BufferSummary> {
        self.buffers().find(|b| b.id == id)
    }

    /// Per-buffer entry counts in ascending buffer-id order (the shape
    /// query metrics report).
    pub fn buffer_entries(&self) -> Vec<usize> {
        let mut all: Vec<(BufferId, usize)> = self.buffers().map(|b| (b.id, b.entries)).collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all.into_iter().map(|(_, entries)| entries).collect()
    }
}

/// A client-private snapshot cache: the current [`SpaceSnapshot`] `Arc`
/// plus locally accumulated deferred Table II events.
///
/// The point of the local accumulators is scaling: a fast-path query that
/// did a `fetch_add` on shared pending cells would still bounce cache lines
/// between cores. Instead each client counts its events in plain integers
/// and [`flush`](Self::flush)es them into the shared cells only at slow-path
/// boundaries (any lock acquisition) or when the client retires.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    snapshot: Option<Arc<SpaceSnapshot>>,
    /// Deferred events per buffer, indexed by global [`BufferId`].
    local: Vec<LocalPending>,
}

#[derive(Debug, Default, Clone, Copy)]
struct LocalPending {
    ticks: u64,
    uses: u64,
    /// Ticks accumulated before this batch's first use.
    uses_at: u64,
}

impl SnapshotCache {
    /// An empty cache (no snapshot, no deferred events).
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached snapshot if it still validates against `space`, otherwise
    /// a freshly fetched one (which may rebuild under shard read locks —
    /// callers must not hold any shard lock).
    pub fn ensure(&mut self, space: &ShardedSpace) -> &Arc<SpaceSnapshot> {
        let stale = match &self.snapshot {
            Some(snapshot) => !space.validate(snapshot),
            None => true,
        };
        if stale {
            self.snapshot = Some(space.space_snapshot());
        }
        // The option was just populated on the stale path.
        // aib-lint: allow(no-panic) — set two lines above.
        self.snapshot.as_ref().expect("snapshot just ensured")
    }

    /// Defers one query's Table II events locally (no shared write at all).
    /// Call only with the snapshot returned by [`ensure`](Self::ensure)
    /// this query: events are recorded against its buffer roster.
    pub fn record(&mut self, queried: Option<BufferId>, partial_hit: bool) {
        let Some(snapshot) = &self.snapshot else {
            return;
        };
        let max_id = snapshot.buffers().map(|b| b.id).max();
        if let Some(max_id) = max_id {
            if self.local.len() <= max_id {
                self.local.resize(max_id + 1, LocalPending::default());
            }
        }
        for buffer in snapshot.buffers() {
            let cell = &mut self.local[buffer.id];
            if Some(buffer.id) == queried && !partial_hit {
                if cell.uses == 0 {
                    cell.uses_at = cell.ticks;
                }
                cell.uses += 1;
            } else {
                cell.ticks += 1;
            }
        }
    }

    /// Publishes every locally deferred event into the shared pending
    /// cells. Cheap when nothing is deferred; called before any lock
    /// acquisition and when the client retires.
    pub fn flush(&mut self) {
        let Some(snapshot) = &self.snapshot else {
            return;
        };
        for buffer in snapshot.buffers() {
            let Some(cell) = self.local.get_mut(buffer.id) else {
                continue;
            };
            if cell.ticks != 0 || cell.uses != 0 {
                buffer.pending().defer(cell.ticks, cell.uses, cell.uses_at);
                *cell = LocalPending::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> SpaceConfig {
        SpaceConfig {
            shards,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn buffers_route_to_shards_round_robin() {
        let space = ShardedSpace::new(cfg(3));
        let ids: Vec<BufferId> = (0..7)
            .map(|i| space.register(format!("b{i}"), BufferConfig::default(), vec![1; 4]))
            .collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        assert_eq!(space.num_buffers(), 7);
        assert_eq!(space.shard_read(0).num_buffers(), 3);
        assert_eq!(space.shard_read(1).num_buffers(), 2);
        assert_eq!(space.shard_read(2).num_buffers(), 2);
        // Every buffer is reachable through its shard under its global id.
        for &id in &ids {
            let shard = space.shard_read(space.shard_of(id));
            assert_eq!(shard.buffer(id).id(), id);
        }
        space.check_invariants();
    }

    #[test]
    fn snapshot_validates_until_a_mutation_and_revalidates_after() {
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![0; 4]);
        let snap = space.space_snapshot();
        assert!(space.validate(&snap));
        assert!(snap.buffer(a).is_some());

        // A write window that mutates nothing re-validates on drop.
        drop(space.shard_write(space.shard_of(a)));
        assert!(space.validate(&snap), "no mutation, epoch republished");

        // A mutation inside the window invalidates for good.
        space
            .shard_write(space.shard_of(a))
            .with_buffer_mut(a, |_, _| {});
        assert!(!space.validate(&snap), "mutated shard stales the snapshot");
        let fresh = space.space_snapshot();
        assert!(space.validate(&fresh));
    }

    #[test]
    fn snapshot_invalidates_while_writer_is_inside() {
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![0; 4]);
        let snap = space.space_snapshot();
        let guard = space.shard_write(space.shard_of(a));
        assert!(
            !space.validate(&snap),
            "sentinel parks while the writer holds the shard"
        );
        drop(guard);
        assert!(space.validate(&snap), "clean window restores validity");
    }

    #[test]
    fn bulk_counter_resets_stale_published_snapshots() {
        // Satellite regression: reset_counters / clear_buffer flip pages
        // skippable; a snapshot published before the reset must not keep
        // validating (it would answer from the stale bitset).
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), vec![1; 4]);
        let before = space.space_snapshot();
        assert!(space.validate(&before));
        space
            .shard_write(space.shard_of(a))
            .reset_counters(a, vec![0; 4]);
        assert!(
            !space.validate(&before),
            "reset_counters must invalidate published snapshots"
        );
        let after = space.space_snapshot();
        let summary = after.buffer(a).expect("registered");
        assert!(summary.fully_skippable(4));

        let again = space.space_snapshot();
        space.shard_write(space.shard_of(a)).clear_buffer(a);
        assert!(
            !space.validate(&again),
            "clear_buffer must invalidate published snapshots"
        );
    }

    #[test]
    fn registration_stales_snapshots_via_generation() {
        let space = ShardedSpace::new(cfg(2));
        space.register("a", BufferConfig::default(), vec![0; 2]);
        let snap = space.space_snapshot();
        assert!(space.validate(&snap));
        let b = space.register("b", BufferConfig::default(), vec![0; 2]);
        assert!(!space.validate(&snap), "roster change invalidates");
        let fresh = space.space_snapshot();
        assert!(fresh.buffer(b).is_some());
    }

    #[test]
    fn fully_skippable_demands_empty_buffer_and_full_bitset() {
        let space = ShardedSpace::new(cfg(1));
        let a = space.register("a", BufferConfig::default(), vec![0, 1, 0]);
        let snap = space.space_snapshot();
        let s = snap.buffer(a).expect("registered");
        assert!(!s.fully_skippable(3), "page 1 still has uncovered tuples");
        space.shard_write(0).reset_counters(a, vec![0, 0, 0]);
        let snap = space.space_snapshot();
        let s = snap.buffer(a).expect("registered");
        assert!(s.fully_skippable(3));
        assert!(s.fully_skippable(2), "tracked range may exceed the heap");
        assert!(!s.fully_skippable(4), "untracked pages are never skippable");
    }

    #[test]
    fn cache_defers_locally_and_flushes_through_shared_cells() {
        let space = ShardedSpace::new(cfg(2));
        let a = space.register("a", BufferConfig::default(), Vec::new());
        let b = space.register("b", BufferConfig::default(), Vec::new());
        let mut cache = SnapshotCache::new();
        cache.ensure(&space);
        // tick-all, then a use on `a`, then another tick-all.
        cache.record(None, false);
        cache.record(Some(a), false);
        cache.record(None, false);
        // Nothing visible anywhere until the flush...
        assert!(space.shard_read(space.shard_of(a)).pending(a).is_empty());
        cache.flush();
        // ...then the write-side drain applies them in deferral order.
        drop(space.shard_write(space.shard_of(a)));
        drop(space.shard_write(space.shard_of(b)));
        let sa = space.shard_read(space.shard_of(a));
        assert_eq!(sa.buffer(a).history().uses(), 1);
        assert_eq!(sa.buffer(a).history().clock(), 2);
        drop(sa);
        let sb = space.shard_read(space.shard_of(b));
        assert_eq!(sb.buffer(b).history().uses(), 0);
        assert_eq!(sb.buffer(b).history().clock(), 3);
    }

    #[test]
    fn shards_share_one_budget() {
        use aib_storage::{Rid, Value};
        let space = ShardedSpace::new(SpaceConfig {
            max_bytes: Some(10 * aib_storage::DEFAULT_ENTRY_FOOTPRINT),
            shards: 2,
            seed: 7,
            ..Default::default()
        });
        let a = space.register("a", BufferConfig::default(), vec![1; 8]);
        let b = space.register("b", BufferConfig::default(), vec![1; 8]);
        assert_ne!(space.shard_of(a), space.shard_of(b));
        // Fill shard 0's buffer; shard 1 must see the shrunken headroom.
        {
            let mut s0 = space.shard_write(space.shard_of(a));
            for p in 0..8u32 {
                s0.with_buffer_mut(a, |buffer, counters| {
                    buffer.index_page(p, vec![(Value::Int(p as i64), Rid::new(p, 0))]);
                    counters.set_zero(p);
                });
            }
            s0.sync_budget();
        }
        let s1 = space.shard_read(space.shard_of(b));
        assert_eq!(s1.free_entries(), 2, "8 of 10 entries claimed by shard 0");
        drop(s1);
        space.check_invariants();
    }
}
