//! Runtime invariant shadow model — the dynamic half of `aib-lint`.
//!
//! The static lint confines *who may mutate* `C[p]`; this module checks
//! *what the mutations produced*. Everything here recomputes ground truth
//! from first principles — the heap, the coverage predicate, and the buffer
//! contents — and diffs it against the engine's incremental bookkeeping:
//!
//! * **`C[p]` exactness** (paper §III): for every page, the counter must
//!   equal the number of live tuples on that page that are neither covered
//!   by the partial index nor present in the Index Buffer. A counter that
//!   is *too low* silently loses result tuples to page skipping; one that
//!   is *too high* only costs a wasted page read — the shadow model treats
//!   both as violations because either means Table I or Algorithm 1
//!   diverged from the heap.
//! * **Partition structure** (§IV, Fig. 5): partitions of one buffer cover
//!   disjoint page sets, per-page entry tallies agree with the entry maps,
//!   and no partition exceeds the configured page capacity.
//! * **Budget agreement**: the bytes charged to
//!   [`BudgetComponent::IndexSpace`](aib_storage::BudgetComponent) equal
//!   the space's summed resident footprint (the buffer-pool side of the
//!   same check lives in `aib_storage::BufferPool::verify_budget`).
//!
//! Compiled only under the `invariant-checks` feature; every check is a
//! full rescan, priced for tests, not production.

use std::collections::HashMap;

use aib_storage::{BudgetComponent, HeapFile, MemoryUsage, StorageError, Tuple, Value};

use crate::counters::PageCounters;
use crate::index_buffer::IndexBuffer;
use crate::space::IndexBufferSpace;

/// Outcome of a shadow-model pass: empty means every invariant held.
#[derive(Debug, Default, Clone)]
pub struct InvariantReport {
    violations: Vec<String>,
}

impl InvariantReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, in discovery order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Converts the report into a `Result`, joining violations into one
    /// message (what the engine surfaces as `EngineError::Invariant`).
    pub fn into_result(self) -> Result<(), String> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations.join("; "))
        }
    }

    /// Absorbs another report's violations.
    pub fn merge(&mut self, other: InvariantReport) {
        self.violations.extend(other.violations);
    }

    fn push(&mut self, msg: String) {
        self.violations.push(msg);
    }
}

impl std::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ok() {
            write!(f, "all invariants hold")
        } else {
            write!(f, "{}", self.violations.join("; "))
        }
    }
}

/// Per-page unindexed-tuple counts recomputed from first principles.
///
/// `counts[p]` is the number of live tuples on heap page ordinal `p` whose
/// column value is neither covered by the partial index (the `covered`
/// predicate) nor held by the Index Buffer — i.e. what `C[p]` *must* be if
/// every Table I transition and every Algorithm 1 `set_zero`/`restore` was
/// applied correctly.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    counts: Vec<u32>,
}

impl GroundTruth {
    /// Recomputes the truth for one buffered column with a full heap scan.
    pub fn compute(
        heap: &HeapFile,
        column: usize,
        covered: &dyn Fn(&Value) -> bool,
        buffer: &IndexBuffer,
    ) -> Result<GroundTruth, StorageError> {
        let mut counts = vec![0u32; heap.num_pages() as usize];
        for ord in 0..heap.num_pages() {
            for (rid, bytes) in heap.read_page(ord)? {
                let value = Tuple::read_column(&bytes, column)?;
                if !covered(&value) && !buffer.contains(&value, rid) {
                    if let Some(slot) = counts.get_mut(ord as usize) {
                        *slot += 1;
                    }
                }
            }
        }
        Ok(GroundTruth { counts })
    }

    /// The recomputed per-page counts, indexed by heap page ordinal.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }
}

/// Diffs one buffer (and its counters) against recomputed ground truth and
/// checks the buffer's partition structure.
pub fn verify_buffer(
    buffer: &IndexBuffer,
    counters: &PageCounters,
    truth: &GroundTruth,
) -> InvariantReport {
    let mut report = InvariantReport::default();
    let name = buffer.name();

    // 1. C[p] must equal the recomputed count on every page. Counters may
    //    track fewer pages than the heap holds (untracked reads as 0 and is
    //    never skippable), so compare over the union of both ranges.
    let pages = truth.counts.len().max(counters.num_pages() as usize);
    for page in 0..pages as u32 {
        let expected = truth.counts.get(page as usize).copied().unwrap_or(0);
        let actual = counters.get(page);
        if expected != actual {
            report.push(format!(
                "{name}: C[{page}] = {actual}, ground truth {expected}"
            ));
        }
    }

    // 2. A buffered page is a completed page: its counter must be zero
    //    (Algorithm 1 line 17 set it; Table I keeps it there).
    for page in 0..pages as u32 {
        if buffer.is_buffered(page) && counters.get(page) != 0 {
            report.push(format!(
                "{name}: page {page} is buffered but C[{page}] = {} != 0",
                counters.get(page)
            ));
        }
    }

    // 3. The maintained skip bitset must mirror `C[p] == 0` exactly — the
    //    fast sweep trusts it to jump whole runs without reading `C`.
    if let Err(e) = counters.check_bitset() {
        report.push(format!("{name}: {e}"));
    }

    report.merge(verify_structure(buffer));
    report
}

/// Structural partition checks for one buffer (no heap access needed).
fn verify_structure(buffer: &IndexBuffer) -> InvariantReport {
    let mut report = InvariantReport::default();
    let name = buffer.name();
    let partition_pages = buffer.config().partition_pages;

    let mut owner: HashMap<u32, crate::partition::PartitionId> = HashMap::new();
    let mut total_entries = 0usize;
    let mut total_pages = 0usize;
    for pid in buffer.partition_ids() {
        let Some(part) = buffer.partition(pid) else {
            report.push(format!("{name}: partition {pid} listed but missing"));
            continue;
        };
        // Page-range capacity (Fig. 5: fixed-size partitions).
        if part.pages_covered() > partition_pages {
            report.push(format!(
                "{name}: partition {pid} covers {} pages, capacity {partition_pages}",
                part.pages_covered()
            ));
        }
        // Per-page entry tallies must sum to the partition's entry count.
        let mut tally = 0u64;
        for (page, entries) in part.pages() {
            tally += u64::from(entries);
            total_pages += 1;
            if let Some(prev) = owner.insert(page, pid) {
                report.push(format!(
                    "{name}: page {page} buffered by partitions {prev} and {pid}"
                ));
            }
            if !buffer.is_buffered(page) {
                report.push(format!(
                    "{name}: partition {pid} covers page {page} but the buffer \
                     does not report it as buffered"
                ));
            }
        }
        if tally != part.num_entries() as u64 {
            report.push(format!(
                "{name}: partition {pid} per-page tallies sum to {tally}, \
                 entry map holds {}",
                part.num_entries()
            ));
        }
        total_entries += part.num_entries();
    }
    if total_entries != buffer.num_entries() {
        report.push(format!(
            "{name}: partitions hold {total_entries} entries, buffer reports {}",
            buffer.num_entries()
        ));
    }
    if total_pages != buffer.num_buffered_pages() {
        report.push(format!(
            "{name}: partitions cover {total_pages} pages, buffer reports {}",
            buffer.num_buffered_pages()
        ));
    }
    report
}

/// Checks the whole Index Buffer Space: per-buffer partition structure plus
/// agreement between the governor's byte charge and the summed resident
/// footprint.
///
/// Deliberately does **not** call
/// [`sync_budget`](IndexBufferSpace::sync_budget) first — syncing would
/// overwrite the very charge under test. A mismatch here means some
/// mutation path forgot its reconciliation barrier.
pub fn verify_space(space: &IndexBufferSpace) -> InvariantReport {
    verify_shards(&[space])
}

/// [`verify_space`] across the shards of one sharded space, against the
/// caller's already-held locks: per-buffer partition structure in every
/// shard, plus agreement between the governor's single `IndexSpace` charge
/// and the *fleet's* summed resident footprint (no per-shard charge exists
/// — the shards share one budget component).
pub fn verify_shards(shards: &[&IndexBufferSpace]) -> InvariantReport {
    let mut report = InvariantReport::default();
    let mut footprint = 0usize;
    for space in shards {
        for id in space.buffer_ids() {
            report.merge(verify_structure(space.buffer(id)));
        }
        footprint += space.footprint();
    }
    let charged = shards
        .first()
        .map_or(0, |s| s.budget().used(BudgetComponent::IndexSpace));
    if charged != footprint {
        report.push(format!(
            "governor charges {charged} bytes to IndexSpace, resident \
             footprint is {footprint}"
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BufferConfig, SpaceConfig};
    use aib_storage::{Rid, Value};

    fn rid(page: u32, slot: u16) -> Rid {
        Rid {
            page: aib_storage::PageId(page),
            slot: aib_storage::SlotId(slot),
        }
    }

    #[test]
    fn clean_buffer_passes() {
        let mut buffer = IndexBuffer::new(0, "t.k", BufferConfig::default());
        buffer.index_page(3, vec![(Value::Int(1), rid(3, 0))]);
        let mut counters = PageCounters::from_counts(vec![2, 0, 1, 1]);
        counters.set_zero(3);
        let truth = GroundTruth {
            counts: vec![2, 0, 1, 0],
        };
        let report = verify_buffer(&buffer, &counters, &truth);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn counter_drift_is_detected() {
        let buffer = IndexBuffer::new(0, "t.k", BufferConfig::default());
        let counters = PageCounters::from_counts(vec![2, 5]);
        let truth = GroundTruth { counts: vec![2, 4] };
        let report = verify_buffer(&buffer, &counters, &truth);
        assert!(!report.is_ok());
        assert!(report.to_string().contains("C[1]"), "{report}");
    }

    #[test]
    fn buffered_page_with_nonzero_counter_is_detected() {
        let mut buffer = IndexBuffer::new(0, "t.k", BufferConfig::default());
        buffer.index_page(0, vec![(Value::Int(1), rid(0, 0))]);
        let counters = PageCounters::from_counts(vec![1]);
        let truth = GroundTruth { counts: vec![1] };
        let report = verify_buffer(&buffer, &counters, &truth);
        assert!(!report.is_ok());
        assert!(report.to_string().contains("buffered"), "{report}");
    }

    #[test]
    fn space_budget_drift_is_detected() {
        let mut space = IndexBufferSpace::new(SpaceConfig::default());
        let id = space.register("t.k", BufferConfig::default(), vec![1, 1]);
        space.with_buffer_mut(id, |buffer, _| {
            buffer.index_page(0, vec![(Value::Int(9), rid(0, 0))]);
        });
        // Mutated behind the governor's back: not yet reconciled.
        let report = verify_space(&space);
        assert!(!report.is_ok(), "{report}");
        // After the reconciliation barrier the space verifies clean.
        space.sync_budget();
        let report = verify_space(&space);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn report_merges_and_displays() {
        let mut a = InvariantReport::default();
        assert!(a.is_ok());
        assert_eq!(a.to_string(), "all invariants hold");
        let mut b = InvariantReport::default();
        b.push("x".into());
        a.merge(b);
        assert_eq!(a.violations(), ["x"]);
        assert!(a.into_result().is_err());
    }
}
