//! Index Buffer maintenance under DML — the paper's Table I.
//!
//! Every insert, update, delete (and partial-index adaptation that moves a
//! tuple across the coverage boundary) decomposes into one case of the
//! 4×4 matrix over:
//!
//! * `t_old ∈ IX` — was the old tuple covered by the partial index?
//! * `t_new ∈ IX` — will the new tuple be covered?
//! * `p_old ∈ B` — is the old tuple's page buffered?
//! * `p_new ∈ B` — is the new tuple's page buffered?
//!
//! The partial-index row (independent of `B`):
//!
//! | | `t_new ∈ IX` | `t_new ∉ IX` |
//! |---|---|---|
//! | `t_old ∈ IX` | `IX.Update(t_old, t_new)` | `IX.Remove(t_old)` |
//! | `t_old ∉ IX` | `IX.Add(t_new)` | — |
//!
//! The buffer/counter matrix (for the uncovered sides only):
//!
//! | | `(IX,IX)` | `(IX,∉IX)` | `(∉IX,IX)` | `(∉IX,∉IX)` |
//! |---|---|---|---|---|
//! | `p_old ∈ B, p_new ∈ B` | — | `B.Add(t_new)` | `B.Remove(t_old)` | `B.Update(t_old,t_new)` |
//! | `p_old ∈ B, p_new ∉ B` | — | `C[p_new]++` | `B.Remove(t_old)` | `B.Remove(t_old), C[p_new]++` |
//! | `p_old ∉ B, p_new ∈ B` | — | `B.Add(t_new)` | `C[p_old]--` | `B.Add(t_new), C[p_old]--` |
//! | `p_old ∉ B, p_new ∉ B` | — | `C[p_new]++` | `C[p_old]--` | `C[p_old]--, C[p_new]++` |
//!
//! Inserts are the no-old-side column, deletes the no-new-side row.

use aib_index::PartialIndex;
use aib_storage::{Rid, Value};

use crate::counters::{CounterError, PageCounters};
use crate::index_buffer::IndexBuffer;

/// One side (old or new) of a tuple mutation, as seen by one column's
/// index/buffer pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleRef {
    /// The column value.
    pub value: Value,
    /// The tuple's record id.
    pub rid: Rid,
    /// Table-local page ordinal of `rid.page`.
    pub page: u32,
}

impl TupleRef {
    /// Convenience constructor.
    pub fn new(value: Value, rid: Rid, page: u32) -> Self {
        TupleRef { value, rid, page }
    }
}

/// The primitive operations of Table I, reported for verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaintAction {
    /// `IX.Update(t_old, t_new)`
    IxUpdate,
    /// `IX.Remove(t_old)`
    IxRemove,
    /// `IX.Add(t_new)`
    IxAdd,
    /// `B.Add(t_new)`
    BAdd,
    /// `B.Remove(t_old)`
    BRemove,
    /// `B.Update(t_old, t_new)`
    BUpdate,
    /// `C[p_old]--`
    DecOld,
    /// `C[p_new]++`
    IncNew,
}

/// Applies Table I for one column. `old`/`new` are the before/after images
/// of the mutated tuple as this column sees them (`None` for insert/delete).
/// Returns the primitive operations performed, in execution order.
///
/// The only failure mode is a counter underflow, which means the
/// maintenance bookkeeping has diverged from the heap — see
/// [`PageCounters::decrement`] for how the `invariant-checks` feature
/// changes its reporting.
pub fn maintain(
    partial: &mut PartialIndex,
    buffer: &mut IndexBuffer,
    counters: &mut PageCounters,
    old: Option<TupleRef>,
    new: Option<TupleRef>,
) -> Result<Vec<MaintAction>, CounterError> {
    let mut actions = Vec::with_capacity(2);
    let old_in_ix = old.as_ref().map(|t| partial.covers(&t.value));
    let new_in_ix = new.as_ref().map(|t| partial.covers(&t.value));

    // --- Partial index row -------------------------------------------------
    match (&old, old_in_ix, &new, new_in_ix) {
        (Some(o), Some(true), Some(n), Some(true)) => {
            partial.update(&o.value, o.rid, n.value.clone(), n.rid);
            actions.push(MaintAction::IxUpdate);
        }
        (Some(o), Some(true), _, _) => {
            partial.remove(&o.value, o.rid);
            actions.push(MaintAction::IxRemove);
        }
        (_, _, Some(n), Some(true)) => {
            partial.add(n.value.clone(), n.rid);
            actions.push(MaintAction::IxAdd);
        }
        _ => {}
    }

    // --- Buffer / counter matrix -------------------------------------------
    // Only uncovered sides participate.
    let old_u = match (old, old_in_ix) {
        (Some(t), Some(false)) => Some(t),
        _ => None,
    };
    let new_u = match (new, new_in_ix) {
        (Some(t), Some(false)) => Some(t),
        _ => None,
    };
    if let Some(n) = &new_u {
        counters.ensure_page(n.page);
    }
    match (old_u, new_u) {
        (None, None) => {}
        (None, Some(n)) => {
            if buffer.is_buffered(n.page) {
                buffer.add(n.value, n.rid, n.page);
                actions.push(MaintAction::BAdd);
            } else {
                counters.increment(n.page);
                actions.push(MaintAction::IncNew);
            }
        }
        (Some(o), None) => {
            if buffer.is_buffered(o.page) {
                buffer.remove(&o.value, o.rid, o.page);
                actions.push(MaintAction::BRemove);
            } else {
                counters.decrement(o.page)?;
                actions.push(MaintAction::DecOld);
            }
        }
        (Some(o), Some(n)) => match (buffer.is_buffered(o.page), buffer.is_buffered(n.page)) {
            (true, true) => {
                buffer.update(&o.value, o.rid, o.page, n.value, n.rid, n.page);
                actions.push(MaintAction::BUpdate);
            }
            (true, false) => {
                buffer.remove(&o.value, o.rid, o.page);
                counters.increment(n.page);
                actions.push(MaintAction::BRemove);
                actions.push(MaintAction::IncNew);
            }
            (false, true) => {
                buffer.add(n.value, n.rid, n.page);
                counters.decrement(o.page)?;
                actions.push(MaintAction::BAdd);
                actions.push(MaintAction::DecOld);
            }
            (false, false) => {
                counters.decrement(o.page)?;
                counters.increment(n.page);
                actions.push(MaintAction::DecOld);
                actions.push(MaintAction::IncNew);
            }
        },
    }
    Ok(actions)
}

/// Adaptation: a tuple's value has just been *added to* the partial index's
/// coverage (online tuning moved the coverage boundary over it). The tuple
/// leaves the "uncovered" bookkeeping — its buffered entry is removed, or its
/// page counter decremented — the `(∉IX → IX)` column of Table I with the
/// tuple itself staying put.
pub fn cover_tuple(
    buffer: &mut IndexBuffer,
    counters: &mut PageCounters,
    value: &Value,
    rid: Rid,
    page: u32,
) -> Result<MaintAction, CounterError> {
    if buffer.is_buffered(page) {
        buffer.remove(value, rid, page);
        Ok(MaintAction::BRemove)
    } else {
        counters.decrement(page)?;
        Ok(MaintAction::DecOld)
    }
}

/// Adaptation: a tuple's value has just been *evicted from* the partial
/// index's coverage. The tuple re-enters the "uncovered" bookkeeping — a
/// buffered page gains the entry, an unbuffered one a counter increment —
/// the `(IX → ∉IX)` column of Table I with the tuple staying put.
pub fn uncover_tuple(
    buffer: &mut IndexBuffer,
    counters: &mut PageCounters,
    value: Value,
    rid: Rid,
    page: u32,
) -> MaintAction {
    counters.ensure_page(page);
    if buffer.is_buffered(page) {
        buffer.add(value, rid, page);
        MaintAction::BAdd
    } else {
        counters.increment(page);
        MaintAction::IncNew
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BufferConfig;
    use aib_index::{Coverage, IndexBackend};
    use MaintAction::*;

    /// Fixture: partial index covers values < 100; pages 0 and 1 are
    /// buffered; pages 2 and 3 are not.
    struct Fix {
        partial: PartialIndex,
        buffer: IndexBuffer,
        counters: PageCounters,
    }

    fn fix() -> Fix {
        let partial = PartialIndex::new(
            "col",
            Coverage::IntRange { lo: 0, hi: 99 },
            IndexBackend::BTree,
        );
        let mut buffer = IndexBuffer::new(0, "col", BufferConfig::default());
        // Pages 0 and 1 buffered with one pre-existing uncovered tuple each.
        buffer.index_page(0, vec![(Value::Int(500), Rid::new(0, 0))]);
        buffer.index_page(1, vec![(Value::Int(501), Rid::new(1, 0))]);
        // Counters: buffered pages at 0; unbuffered pages 2,3 hold 5 each.
        let counters = PageCounters::from_counts(vec![0, 0, 5, 5]);
        Fix {
            partial,
            buffer,
            counters,
        }
    }

    fn covered(v: i64) -> Value {
        assert!(v < 100);
        Value::Int(v)
    }

    fn uncovered(v: i64) -> Value {
        assert!(v >= 100);
        Value::Int(v)
    }

    fn apply(f: &mut Fix, old: Option<TupleRef>, new: Option<TupleRef>) -> Vec<MaintAction> {
        maintain(&mut f.partial, &mut f.buffer, &mut f.counters, old, new).unwrap()
    }

    // --- Table I, row by row (update cases) --------------------------------

    #[test]
    fn both_buffered() {
        // (IX, IX): only the partial index moves.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(1), Rid::new(0, 1), 0)),
            Some(TupleRef::new(covered(2), Rid::new(1, 1), 1)),
        );
        assert_eq!(a, vec![IxUpdate]);

        // (IX, ∉IX): B.Add.
        let mut f = fix();
        f.partial.add(covered(1), Rid::new(0, 1));
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(1), Rid::new(0, 1), 0)),
            Some(TupleRef::new(uncovered(200), Rid::new(1, 1), 1)),
        );
        assert_eq!(a, vec![IxRemove, BAdd]);
        assert!(f.buffer.contains(&uncovered(200), Rid::new(1, 1)));

        // (∉IX, IX): B.Remove.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(0, 0), 0)),
            Some(TupleRef::new(covered(3), Rid::new(1, 1), 1)),
        );
        assert_eq!(a, vec![IxAdd, BRemove]);
        assert!(!f.buffer.contains(&uncovered(500), Rid::new(0, 0)));

        // (∉IX, ∉IX): B.Update.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(0, 0), 0)),
            Some(TupleRef::new(uncovered(600), Rid::new(1, 1), 1)),
        );
        assert_eq!(a, vec![BUpdate]);
        assert!(f.buffer.contains(&uncovered(600), Rid::new(1, 1)));
        assert!(!f.buffer.contains(&uncovered(500), Rid::new(0, 0)));
    }

    #[test]
    fn old_buffered_new_not() {
        // (IX, ∉IX): C[p_new]++.
        let mut f = fix();
        f.partial.add(covered(1), Rid::new(0, 1));
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(1), Rid::new(0, 1), 0)),
            Some(TupleRef::new(uncovered(200), Rid::new(2, 9), 2)),
        );
        assert_eq!(a, vec![IxRemove, IncNew]);
        assert_eq!(f.counters.get(2), 6);

        // (∉IX, IX): B.Remove.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(0, 0), 0)),
            Some(TupleRef::new(covered(3), Rid::new(2, 9), 2)),
        );
        assert_eq!(a, vec![IxAdd, BRemove]);

        // (∉IX, ∉IX): B.Remove + C[p_new]++.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(0, 0), 0)),
            Some(TupleRef::new(uncovered(600), Rid::new(2, 9), 2)),
        );
        assert_eq!(a, vec![BRemove, IncNew]);
        assert_eq!(f.counters.get(2), 6);
        assert_eq!(f.buffer.num_entries(), 1);
    }

    #[test]
    fn old_not_buffered_new_buffered() {
        // (IX, ∉IX): B.Add.
        let mut f = fix();
        f.partial.add(covered(1), Rid::new(2, 1));
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(1), Rid::new(2, 1), 2)),
            Some(TupleRef::new(uncovered(200), Rid::new(0, 5), 0)),
        );
        assert_eq!(a, vec![IxRemove, BAdd]);

        // (∉IX, IX): C[p_old]--.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(2, 1), 2)),
            Some(TupleRef::new(covered(3), Rid::new(0, 5), 0)),
        );
        assert_eq!(a, vec![IxAdd, DecOld]);
        assert_eq!(f.counters.get(2), 4);

        // (∉IX, ∉IX): B.Add + C[p_old]--.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(2, 1), 2)),
            Some(TupleRef::new(uncovered(600), Rid::new(0, 5), 0)),
        );
        assert_eq!(a, vec![BAdd, DecOld]);
        assert_eq!(f.counters.get(2), 4);
        assert!(f.buffer.contains(&uncovered(600), Rid::new(0, 5)));
    }

    #[test]
    fn neither_buffered() {
        // (IX, IX): nothing but the IX update.
        let mut f = fix();
        f.partial.add(covered(1), Rid::new(2, 1));
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(1), Rid::new(2, 1), 2)),
            Some(TupleRef::new(covered(2), Rid::new(3, 1), 3)),
        );
        assert_eq!(a, vec![IxUpdate]);
        assert_eq!(f.counters.get(2), 5);
        assert_eq!(f.counters.get(3), 5);

        // (IX, ∉IX): C[p_new]++.
        let mut f = fix();
        f.partial.add(covered(1), Rid::new(2, 1));
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(1), Rid::new(2, 1), 2)),
            Some(TupleRef::new(uncovered(200), Rid::new(3, 1), 3)),
        );
        assert_eq!(a, vec![IxRemove, IncNew]);
        assert_eq!(f.counters.get(3), 6);

        // (∉IX, IX): C[p_old]--.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(2, 1), 2)),
            Some(TupleRef::new(covered(3), Rid::new(3, 1), 3)),
        );
        assert_eq!(a, vec![IxAdd, DecOld]);
        assert_eq!(f.counters.get(2), 4);

        // (∉IX, ∉IX): C[p_old]--, C[p_new]++.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(2, 1), 2)),
            Some(TupleRef::new(uncovered(600), Rid::new(3, 1), 3)),
        );
        assert_eq!(a, vec![DecOld, IncNew]);
        assert_eq!(f.counters.get(2), 4);
        assert_eq!(f.counters.get(3), 6);
    }

    // --- Insert / delete degenerate cases ----------------------------------

    #[test]
    fn insert_cases() {
        // Covered insert: IX.Add only.
        let mut f = fix();
        let a = apply(
            &mut f,
            None,
            Some(TupleRef::new(covered(7), Rid::new(2, 2), 2)),
        );
        assert_eq!(a, vec![IxAdd]);
        assert!(f.partial.contains(&covered(7), Rid::new(2, 2)));

        // Uncovered insert into buffered page: B.Add keeps the page skippable.
        let mut f = fix();
        let a = apply(
            &mut f,
            None,
            Some(TupleRef::new(uncovered(700), Rid::new(0, 2), 0)),
        );
        assert_eq!(a, vec![BAdd]);
        assert_eq!(f.counters.get(0), 0, "page stays fully indexed");

        // Uncovered insert into unbuffered page: C[p]++.
        let mut f = fix();
        let a = apply(
            &mut f,
            None,
            Some(TupleRef::new(uncovered(700), Rid::new(2, 2), 2)),
        );
        assert_eq!(a, vec![IncNew]);
        assert_eq!(f.counters.get(2), 6);

        // Uncovered insert into a brand-new page: counters grow.
        let mut f = fix();
        let a = apply(
            &mut f,
            None,
            Some(TupleRef::new(uncovered(700), Rid::new(9, 0), 9)),
        );
        assert_eq!(a, vec![IncNew]);
        assert_eq!(f.counters.get(9), 1);
    }

    #[test]
    fn delete_cases() {
        // Covered delete: IX.Remove only.
        let mut f = fix();
        f.partial.add(covered(7), Rid::new(2, 2));
        let a = apply(
            &mut f,
            Some(TupleRef::new(covered(7), Rid::new(2, 2), 2)),
            None,
        );
        assert_eq!(a, vec![IxRemove]);

        // Uncovered delete from buffered page: B.Remove.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(0, 0), 0)),
            None,
        );
        assert_eq!(a, vec![BRemove]);
        assert_eq!(f.buffer.num_entries(), 1);

        // Uncovered delete from unbuffered page: C[p]--.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(2, 0), 2)),
            None,
        );
        assert_eq!(a, vec![DecOld]);
        assert_eq!(f.counters.get(2), 4);
    }

    #[test]
    fn same_page_update_is_consistent() {
        // An uncovered→uncovered update within the same unbuffered page must
        // leave the counter unchanged (−1 then +1).
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(2, 1), 2)),
            Some(TupleRef::new(uncovered(600), Rid::new(2, 1), 2)),
        );
        assert_eq!(a, vec![DecOld, IncNew]);
        assert_eq!(f.counters.get(2), 5);

        // Same within a buffered page: B.Update keeps entries consistent.
        let mut f = fix();
        let a = apply(
            &mut f,
            Some(TupleRef::new(uncovered(500), Rid::new(0, 0), 0)),
            Some(TupleRef::new(uncovered(600), Rid::new(0, 0), 0)),
        );
        assert_eq!(a, vec![BUpdate]);
        assert_eq!(f.buffer.num_entries(), 2);
        f.buffer.check_invariants();
    }

    #[test]
    fn skippability_invariant_preserved() {
        // After any maintenance op, a page with C[p] == 0 must contain no
        // uncovered-unbuffered tuple. We verify the bookkeeping by replaying
        // a mixed op sequence and checking buffer/counter consistency.
        let mut f = fix();
        let ops: Vec<(Option<TupleRef>, Option<TupleRef>)> = vec![
            (None, Some(TupleRef::new(uncovered(700), Rid::new(0, 3), 0))),
            (None, Some(TupleRef::new(uncovered(701), Rid::new(2, 3), 2))),
            (
                Some(TupleRef::new(uncovered(700), Rid::new(0, 3), 0)),
                Some(TupleRef::new(uncovered(702), Rid::new(2, 4), 2)),
            ),
            (Some(TupleRef::new(uncovered(701), Rid::new(2, 3), 2)), None),
            (
                Some(TupleRef::new(uncovered(702), Rid::new(2, 4), 2)),
                Some(TupleRef::new(covered(9), Rid::new(2, 4), 2)),
            ),
        ];
        for (old, new) in ops {
            apply(&mut f, old, new);
            f.buffer.check_invariants();
        }
        // Buffered pages kept C == 0 throughout.
        assert_eq!(f.counters.get(0), 0);
        assert_eq!(f.counters.get(1), 0);
        // Page 2: 5 initial +1 (insert) +1 (move-in) −1 (delete) −1 (covered
        // update takes the uncovered tuple away) = 5.
        assert_eq!(f.counters.get(2), 5);
    }
}
