//! Tuning knobs of the Index Buffer and the Index Buffer Space, named after
//! the paper's parameters.

use aib_index::IndexBackend;

/// Per-Index-Buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// `P` — maximum number of table pages one partition covers (paper §IV;
    /// the experiments use `P = 10,000`).
    pub partition_pages: u32,
    /// `K` — length of the LRU-K access-interval history (paper Table II).
    pub history_k: usize,
    /// Backing structure for partition entries (paper §III: B\*-tree by
    /// default, hash possible).
    pub backend: IndexBackend,
}

impl Default for BufferConfig {
    fn default() -> Self {
        // The paper does not state its LRU-K depth. K = 8 makes the mean
        // access interval T_B stable enough that equally hot buffers stop
        // displacing each other spuriously and the published space dynamics
        // (Fig. 8) reproduce; shallow histories (K = 2) ping-pong. See
        // EXPERIMENTS.md "Fig. 8".
        BufferConfig {
            partition_pages: 10_000,
            history_k: 8,
            backend: IndexBackend::BTree,
        }
    }
}

impl BufferConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// If `partition_pages == 0` or `history_k == 0`.
    pub fn validate(&self) {
        assert!(
            self.partition_pages > 0,
            "P (partition_pages) must be positive"
        );
        assert!(self.history_k > 0, "K (history_k) must be positive");
    }
}

/// Index Buffer Space configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpaceConfig {
    /// Byte cap for the Index Buffer Space component of the shared
    /// [`aib_storage::MemoryBudget`]. `None` = unlimited (paper
    /// experiment 1). The paper's entry bound `L` compiles down to bytes at
    /// [`aib_storage::DEFAULT_ENTRY_FOOTPRINT`] per entry — exact for the
    /// INTEGER key columns the paper evaluates — so experiment 3's
    /// `L = 800,000` entries is `Some(800_000 * DEFAULT_ENTRY_FOOTPRINT)`.
    pub max_bytes: Option<usize>,
    /// `I^MAX` — maximum pages newly indexed during one table scan
    /// (paper Algorithm 2; the experiments use 5,000 / 10,000).
    pub i_max: u32,
    /// Seed for the probabilistic stage-1 victim selection, making
    /// experiments reproducible. Sharded spaces derive per-shard seeds as
    /// `seed + shard_index`, so shard 0 of any sharding replays the
    /// unsharded RNG stream.
    pub seed: u64,
    /// Number of independently locked shards the space is split into.
    /// Buffers map to shards by `id % shards`; `1` (the default) keeps the
    /// single-lock layout whose results every sequential test pins down.
    pub shards: usize,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            max_bytes: None,
            i_max: 5_000,
            seed: 0x5EED_1DE4,
            shards: 1,
        }
    }
}

impl SpaceConfig {
    /// The byte cap this configuration imposes on the Index Buffer Space:
    /// `max_bytes`, or `None` (unlimited).
    pub fn budget_bytes(&self) -> Option<usize> {
        self.max_bytes
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// If `i_max == 0` or `shards == 0`.
    pub fn validate(&self) {
        assert!(self.i_max > 0, "I^MAX (i_max) must be positive");
        assert!(self.shards > 0, "shards must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_experiments() {
        let b = BufferConfig::default();
        assert_eq!(b.partition_pages, 10_000, "paper: P = 10,000");
        let s = SpaceConfig::default();
        assert_eq!(s.i_max, 5_000, "paper experiments 1-3: I^MAX = 5,000");
        assert_eq!(s.max_bytes, None, "experiment 1: unlimited space");
        assert_eq!(s.budget_bytes(), None, "no cap -> no byte budget");
        assert_eq!(s.shards, 1, "single-lock layout by default");
        b.validate();
        s.validate();
    }

    #[test]
    fn byte_cap_is_the_budget() {
        let bytes = SpaceConfig {
            max_bytes: Some(1 << 20),
            ..Default::default()
        };
        assert_eq!(bytes.budget_bytes(), Some(1 << 20));
        bytes.validate();
    }

    #[test]
    #[should_panic(expected = "P (partition_pages)")]
    fn zero_p_rejected() {
        BufferConfig {
            partition_pages: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "K (history_k)")]
    fn zero_k_rejected() {
        BufferConfig {
            history_k: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "I^MAX")]
    fn zero_imax_rejected() {
        SpaceConfig {
            i_max: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn zero_shards_rejected() {
        SpaceConfig {
            shards: 0,
            ..Default::default()
        }
        .validate();
    }
}
