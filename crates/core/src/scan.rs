//! The indexing table scan — paper Algorithm 1.
//!
//! A query whose predicate misses the partial index runs this scan. It:
//!
//! 1. asks the Index Buffer Space which pages to index (`SelectPagesForBuffer`,
//!    Algorithm 2 — displacement happens inside);
//! 2. scans the Index Buffer for matching tuples (lines 8–10);
//! 3. scans the table, skipping every page with `C[p] == 0` (line 11); on
//!    unskipped pages it evaluates the predicate (line 13–14), and for pages
//!    selected in step 1 it inserts all tuples not covered by the partial
//!    index into the buffer and zeroes the page's counter (lines 15–17).
//!
//! The scan is instrumented: the per-query series of the paper's Figures 6–9
//! (runtime, buffer entries, pages skipped) come straight out of
//! [`ScanStats`].
//!
//! # Fast path
//!
//! The table sweep is zero-copy on every page that is *not* being indexed by
//! this scan. The predicate is compiled once per scan into a
//! [`CompiledPredicate`]; its page-level driver
//! ([`CompiledPredicate::matches_page`]) walks the slot directory with
//! [`PageView::for_each_live`] and, for equality, compares the pre-encoded
//! query-key bytes against a same-length byte window at the column's offset
//! — in place, with no per-tuple `Value` allocation, no column decode, and
//! an inline byte loop instead of an out-of-line `memcmp` call (the call
//! overhead dominates at ~10-byte keys). Range predicates borrow the column
//! extent ([`Tuple::read_column_raw`]) and compare under value ordering.
//! Pages selected for indexing fall back to the decoding path, which the
//! buffer insert needs anyway; equivalence of the paths is proven by unit
//! tests here and by the `compiled_predicate_matches_decoded_values`
//! proptest.
//!
//! Page skipping is run-at-a-time: the maintained
//! [`SkipBitset`] in [`PageCounters`] yields alternating
//! (extent, skippable) runs, skippable runs are jumped whole (word-at-a-time
//! in the bitset, no per-page predicate), and each unskipped run is read
//! through [`HeapFile::sweep_read_runs`], which pins pages in batches — one
//! pool-bookkeeping pass and one batched disk request per batch rather than
//! one of each per page.
//!
//! # Parallel execution
//!
//! [`indexing_scan_parallel`] splits the same algorithm into three phases so
//! that the table sweep can fan out across threads while the result stays
//! *sequential-equivalent* — bit-for-bit the same `Q`, buffer contents,
//! partition composition and `C[p]` counters as [`indexing_scan`]:
//!
//! 1. **Select + buffer scan (sequential).** `SelectPagesForBuffer` draws
//!    from the space's RNG exactly once, and the buffer scan appends its
//!    matches to `out` first — identical to the sequential path. Both scans
//!    share this preamble (and the [`ScanPlan`] it produces) via one
//!    `prepare_scan` helper, so the two paths cannot drift.
//! 2. **Discover (parallel, read-only).** The page range is cut into
//!    partition-aligned chunks ([`page_range_chunks`]); workers claim chunks
//!    in order and run [`scan_chunk`], which only *reads* pages and stages
//!    would-be buffer entries per page.
//! 3. **Apply (sequential, ordered).** Chunk results merge in ascending page
//!    order: matches append to `out` in page order, and staged pages feed
//!    [`apply_staged`], which inserts into the buffer and zeroes `C[p]` in
//!    the exact order the sequential scan would.

use std::cmp::Ordering as CmpOrdering;
use std::ops::Range;
use std::sync::OnceLock;
use std::thread;

use aib_storage::{ColumnRef, HeapFile, PageId, PageView, Rid, StorageError, Tuple, Value};

use crate::counters::{PageCounters, SkipBitset};
use crate::index_buffer::{BufferId, IndexBuffer};
use crate::partition::page_range_chunks;
use crate::space::IndexBufferSpace;
use crate::sync::{AtomicUsize, Ordering};

/// Query predicate over a single column — the paper's `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `column = value` (the paper's experiments are point queries).
    Equals(Value),
    /// `lo <= column <= hi` (range extension; works on B+-tree buffers).
    Between(Value, Value),
}

impl Predicate {
    /// Evaluates the predicate on a column value.
    #[inline]
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Equals(q) => v == q,
            Predicate::Between(lo, hi) => lo <= v && v <= hi,
        }
    }
}

/// A [`Predicate`] compiled for the zero-copy sweep: evaluated against the
/// raw encoded column bytes of a stored tuple, without decoding a [`Value`].
///
/// Equality compares the pre-encoded query key against the column's raw
/// extent — valid for every value variant because the tuple encoding is
/// canonical (exactly one byte string per value), so raw-byte equality ⇔
/// `Value` equality. Ranges compare through the borrowing
/// [`ColumnView`](aib_storage::ColumnView), because little-endian integer
/// bytes do not memcmp in value order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledPredicate {
    /// `column = key` as a raw-byte comparison against the encoded key.
    Equals {
        /// The query value, pre-encoded once at compile time.
        key: Vec<u8>,
    },
    /// `lo <= column <= hi` through the decoded-view comparison.
    Between {
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
}

impl CompiledPredicate {
    /// Compiles `predicate` — done once per scan, before the sweep starts.
    pub fn compile(predicate: &Predicate) -> Self {
        match predicate {
            Predicate::Equals(v) => {
                let mut key = Vec::with_capacity(v.encoded_len());
                v.encode(&mut key);
                CompiledPredicate::Equals { key }
            }
            Predicate::Between(lo, hi) => CompiledPredicate::Between {
                lo: lo.clone(),
                hi: hi.clone(),
            },
        }
    }

    /// Evaluates the predicate on a borrowed column. Equivalent to
    /// [`Predicate::matches`] on the decoded value, without the decode.
    #[inline]
    pub fn matches(&self, col: &ColumnRef<'_>) -> bool {
        match self {
            CompiledPredicate::Equals { key } => col.raw() == &key[..],
            CompiledPredicate::Between { lo, hi } => {
                col.cmp_value(lo) != CmpOrdering::Less && col.cmp_value(hi) != CmpOrdering::Greater
            }
        }
    }

    /// Evaluates the predicate straight off a stored tuple's encoded bytes —
    /// the per-tuple fast path. `Equals` compares the pre-encoded key against
    /// the column's byte window in place, with no decode at all; `Between`
    /// decodes a borrowed [`ColumnRef`] view. Structural corruption *before*
    /// the column errors on both arms; corruption inside the compared column
    /// reports as a non-match on the `Equals` arm (the window read does not
    /// decode it), matching [`Predicate::matches`] on every well-formed
    /// tuple.
    #[inline]
    pub fn matches_tuple(&self, bytes: &[u8], column: usize) -> Result<bool, StorageError> {
        match self {
            CompiledPredicate::Equals { key } => {
                Ok(Tuple::read_column_window(bytes, column, key.len())?
                    .is_some_and(|w| short_bytes_eq(w, key)))
            }
            CompiledPredicate::Between { .. } => {
                let col = Tuple::read_column_raw(bytes, column)?;
                Ok(self.matches(&col))
            }
        }
    }

    /// Pushes the rid of every matching live tuple on one page — the
    /// page-level fast path behind both scan drivers. The predicate shape is
    /// dispatched once per page, not once per row; the `Equals` row loop is
    /// a slot-directory decode, a bounds-checked window read, and an inlined
    /// short byte compare, nothing else. Failure modes: the `Between` arm
    /// (and the decoding path on indexed pages) surface a corrupt tuple as
    /// [`StorageError::Corrupt`]; the `Equals` arm reports it as a
    /// non-match — its window read never decodes the tuple, which is exactly
    /// why it is fast. On well-formed pages all paths agree with
    /// [`Predicate::matches`] tuple for tuple.
    pub fn matches_page(
        &self,
        view: &PageView<'_>,
        page: PageId,
        column: usize,
        out: &mut Vec<Rid>,
    ) -> Result<(), StorageError> {
        match self {
            CompiledPredicate::Equals { key } => {
                if column == 0 {
                    // First column: the window starts right after the 2-byte
                    // arity header, so the row loop has no skip work at all.
                    view.for_each_live(|slot, bytes| {
                        let hit = bytes
                            .get(2..2 + key.len())
                            .is_some_and(|w| short_bytes_eq(w, key));
                        if hit {
                            out.push(Rid { page, slot });
                        }
                    });
                } else {
                    view.for_each_live(|slot, bytes| {
                        let mut pos = 2usize;
                        for _ in 0..column {
                            if Value::skip(bytes, &mut pos).is_err() {
                                return;
                            }
                        }
                        let hit = pos
                            .checked_add(key.len())
                            .and_then(|end| bytes.get(pos..end))
                            .is_some_and(|w| short_bytes_eq(w, key));
                        if hit {
                            out.push(Rid { page, slot });
                        }
                    });
                }
                Ok(())
            }
            CompiledPredicate::Between { .. } => {
                let mut err: Option<StorageError> = None;
                view.for_each_live(|slot, bytes| {
                    if err.is_some() {
                        return;
                    }
                    match Tuple::read_column_raw(bytes, column) {
                        Ok(col) => {
                            if self.matches(&col) {
                                out.push(Rid { page, slot });
                            }
                        }
                        Err(e) => err = Some(e),
                    }
                });
                err.map_or(Ok(()), Err)
            }
        }
    }
}

/// Byte equality that inlines for the short keys predicates compare —
/// dodges the out-of-line `memcmp` call a dynamic-length slice `==` lowers
/// to, which dominates per-row cost on the scan fast path.
#[inline]
fn short_bytes_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y)
}

/// Instrumentation of one indexing scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanStats {
    /// Matching tuples found (buffer + table scan).
    pub matches: usize,
    /// Matches served from the Index Buffer scan.
    pub buffer_matches: usize,
    /// Table pages fetched.
    pub pages_read: u32,
    /// Table pages skipped thanks to `C[p] == 0`.
    pub pages_skipped: u32,
    /// Pages newly indexed into the buffer by this scan (`|I|` realised).
    pub pages_indexed: u32,
    /// Contiguous fully-indexed runs the sweep jumped whole.
    ///
    /// Computed analytically from the skip snapshot so sequential and
    /// parallel scans report the identical figure regardless of chunking.
    pub skip_runs: u32,
    /// Batched page-sweep requests a *sequential* sweep issues for the
    /// unskipped runs (runs are read [`HeapFile::sweep_batch_pages`] pages
    /// per batch; batches never span a skip gap).
    ///
    /// Computed analytically from the skip snapshot so sequential and
    /// parallel scans report the identical figure regardless of chunking.
    pub sweep_batches: u32,
    /// Buffer entries added by this scan.
    pub entries_added: u64,
    /// Pages staged onto the adaptation queue for off-path apply (queued
    /// mode only; such pages count neither in `pages_indexed` nor
    /// `entries_added` for this query — the apply happens asynchronously
    /// and is attributed to no query).
    pub pages_staged: u32,
    /// Partitions displaced to make room.
    pub partitions_dropped: usize,
    /// Entries freed by displacement.
    pub entries_displaced: usize,
}

/// Immutable per-scan sweep plan shared by every chunk worker: counter and
/// selection snapshots taken before any page is read, plus the predicate
/// compiled once per scan. Workers never see mid-scan counter zeroing, so
/// every chunk observes the state the sequential scan started from.
#[derive(Debug)]
pub struct ScanPlan {
    /// Snapshot of the `C[p] == 0` skip bitset, sized to the heap.
    pub skip: SkipBitset,
    /// Pages chosen by `SelectPagesForBuffer` (`I`), as a bitset.
    pub to_index: SkipBitset,
    /// The predicate, compiled once for the zero-copy path.
    pub compiled: CompiledPredicate,
    /// Heap size the snapshots were taken at.
    pub num_pages: u32,
}

/// The shared pre-sweep portion of Algorithm 1 — everything both scan
/// flavours do identically before touching table pages.
///
/// Public because the staged-apply boundary is also the engine's
/// *concurrency* boundary: a multi-client executor runs [`prepare_scan`]
/// under its space write lock, the sweep ([`sweep_plan`]) with no space lock
/// at all, and the apply ([`apply_staged_checked`]) under the write lock
/// again.
#[derive(Debug)]
pub struct ScanPrep {
    /// Stats with selection, buffer-scan and analytic sweep fields filled.
    pub stats: ScanStats,
    /// The sweep plan handed to the page-visiting phase.
    pub plan: ScanPlan,
}

/// Runs lines 1–10 of Algorithm 1 plus sweep planning: page selection (with
/// displacement), the Index Buffer scan (matches appended to `out`), the
/// skip/to-index snapshots, predicate compilation, and the analytic
/// run/batch statistics. Both [`indexing_scan`] and
/// [`indexing_scan_parallel`] start here, so the two paths cannot drift.
pub fn prepare_scan(
    heap: &HeapFile,
    space: &mut IndexBufferSpace,
    buffer_id: BufferId,
    predicate: &Predicate,
    out: &mut Vec<Rid>,
) -> ScanPrep {
    let mut stats = ScanStats::default();

    // Line 7: I ← SelectPagesForBuffer() — with displacement as needed.
    let selection = space.select_pages_for_buffer(buffer_id);
    stats.partitions_dropped = selection.displaced.len();
    stats.entries_displaced = selection.displaced.iter().map(|d| d.entries_freed).sum();
    let num_pages = heap.num_pages();
    let mut to_index = SkipBitset::with_len(num_pages);
    for &p in &selection.pages {
        to_index.insert(p);
    }

    // Lines 8–10: Index Buffer scan. Read-only from here on: a prepare
    // that selects nothing (and displaces nothing) leaves the space's
    // mutation epoch untouched, so published snapshots stay valid across
    // fully-skippable queries.
    let buffer_rids = buffer_scan_rids(space.buffer(buffer_id), predicate);
    stats.buffer_matches = buffer_rids.len();
    out.extend_from_slice(&buffer_rids);

    // Snapshot of the skip bitset; the sweep (and every chunk worker) never
    // sees mid-scan zeroing.
    let skip = space.counters(buffer_id).skip_snapshot(num_pages);

    // Analytic sweep shape: how many fully-indexed runs a sequential sweep
    // jumps whole and how many batched reads it issues for the rest.
    // Derived from the plan, not from execution, so parallel chunking
    // cannot change the reported figures.
    let (skip_runs, sweep_batches) = skip.sweep_shape(num_pages, heap.sweep_batch_pages() as u32);
    stats.skip_runs = skip_runs;
    stats.sweep_batches = sweep_batches;

    ScanPrep {
        stats,
        plan: ScanPlan {
            skip,
            to_index,
            compiled: CompiledPredicate::compile(predicate),
            num_pages,
        },
    }
}

/// The snapshot-planned twin of [`prepare_scan`]: builds the same
/// [`ScanPrep`] from read-only inputs, with **no space lock held**.
///
/// The caller supplies what the locked prepare would have computed under
/// the shard write lock: `selection` from `ShardedSpace::plan_selection`
/// (which proves the locked selection would displace nothing and draw no
/// randomness), `skip` from the validated snapshot's
/// [`BufferSummary`](crate::sharded::BufferSummary), and
/// `buffer_rids` from either an empty buffer (no probe at all) or an
/// epoch-guarded probe of the live buffer under the shard *read* latch.
/// Displacement fields are structurally zero — a plan with displacement is
/// not plannable and never reaches here.
pub fn prepare_scan_from_snapshot(
    heap: &HeapFile,
    skip: &SkipBitset,
    selection: &[u32],
    buffer_rids: Vec<Rid>,
    predicate: &Predicate,
    out: &mut Vec<Rid>,
) -> ScanPrep {
    let mut stats = ScanStats::default();
    let num_pages = heap.num_pages();
    let mut to_index = SkipBitset::with_len(num_pages);
    for &p in selection {
        to_index.insert(p);
    }
    stats.buffer_matches = buffer_rids.len();
    out.extend(buffer_rids);
    // The summary's bitset is sized to the tracked counter range; re-size
    // to the heap exactly like the locked path's `skip_snapshot(num_pages)`
    // (resizing an already-resized clone is idempotent: grown pages read
    // unskippable either way).
    let skip = skip.resized(num_pages);
    let (skip_runs, sweep_batches) = skip.sweep_shape(num_pages, heap.sweep_batch_pages() as u32);
    stats.skip_runs = skip_runs;
    stats.sweep_batches = sweep_batches;
    ScanPrep {
        stats,
        plan: ScanPlan {
            skip,
            to_index,
            compiled: CompiledPredicate::compile(predicate),
            num_pages,
        },
    }
}

/// Runs Algorithm 1 for `buffer_id` over `heap`.
///
/// * `column` — position of the queried column in the stored tuples.
/// * `covered` — the partial-index membership test `t ∈ IX` (line 15).
/// * `predicate` — the query predicate `q`.
/// * `out` — receives the rids of matching tuples (the result set `Q`).
///
/// The caller is responsible for having applied Table II
/// ([`IndexBufferSpace::on_query`]) first; this function only performs the
/// scan itself.
pub fn indexing_scan(
    heap: &HeapFile,
    space: &mut IndexBufferSpace,
    buffer_id: BufferId,
    column: usize,
    covered: &(dyn Fn(&Value) -> bool + Sync),
    predicate: &Predicate,
    out: &mut Vec<Rid>,
) -> Result<ScanStats, StorageError> {
    let ScanPrep { mut stats, plan } = prepare_scan(heap, space, buffer_id, predicate, out);

    // Lines 11–17: table sweep with run skipping and on-the-fly indexing.
    // Pages being indexed take the decoding path (the buffer insert needs
    // owned values anyway); every other page takes the zero-copy path.
    let mut pending: Vec<(Value, Rid)> = Vec::new();
    let mut decode_error: Option<StorageError> = None;
    let (read, skipped) = space.with_buffer_mut(buffer_id, |buffer, counters| {
        heap.sweep_read_runs(plan.skip.runs(0..plan.num_pages), |ord, pid, view| {
            if decode_error.is_some() {
                return;
            }
            if plan.to_index.contains(ord) {
                pending.clear();
                for (slot, bytes) in view.iter() {
                    let value = match Tuple::read_column(bytes, column) {
                        Ok(v) => v,
                        Err(e) => {
                            decode_error = Some(e);
                            return;
                        }
                    };
                    let rid = Rid { page: pid, slot };
                    if predicate.matches(&value) {
                        out.push(rid);
                    }
                    if !covered(&value) {
                        pending.push((value, rid));
                    }
                }
                stats.entries_added += buffer.index_page(ord, pending.drain(..)) as u64;
                counters.set_zero(ord);
                stats.pages_indexed += 1;
            } else if let Err(e) = plan.compiled.matches_page(&view, pid, column, out) {
                decode_error = Some(e);
            }
        })
    })?;
    if let Some(e) = decode_error {
        return Err(e);
    }
    // The scan mutated the buffer through a direct borrow; reconcile the
    // governor's IndexSpace charge with the new resident footprint.
    space.sync_budget();
    stats.pages_read = read;
    stats.pages_skipped = skipped;
    stats.matches = out.len();
    Ok(stats)
}

/// Lines 8–10 of Algorithm 1: scan the Index Buffer itself for matches.
///
/// Public because the snapshot-planned path probes the live buffer under
/// the shard *read* latch (epoch-guarded) and must produce exactly the rid
/// set the locked prepare would: all three routes below return the full
/// sorted matching rid set, so the output is backend-independent.
pub fn buffer_scan_rids(buffer: &IndexBuffer, predicate: &Predicate) -> Vec<Rid> {
    match predicate {
        Predicate::Equals(v) => buffer.scan_point(v),
        Predicate::Between(lo, hi) => buffer.scan_range(lo, hi).unwrap_or_else(|| {
            // Hash-backed buffers cannot range-scan; fall back to a full
            // buffer sweep (still memory-only, no page I/O).
            let mut rids = Vec::new();
            for pid in buffer.partition_ids() {
                if let Some(p) = buffer.partition(pid) {
                    p.for_each(&mut |v, rid| {
                        if predicate.matches(v) {
                            rids.push(rid);
                        }
                    });
                }
            }
            rids.sort_unstable();
            rids
        }),
    }
}

/// Chunks handed to each scan worker per thread — the load-balancing
/// granularity of [`indexing_scan_parallel`].
pub const CHUNKS_PER_THREAD: usize = 4;

/// Minimum table pages needed to justify each additional scan worker; below
/// `threads * MIN_PAGES_PER_THREAD` pages the planned parallelism degrades
/// toward a plain sequential scan.
pub const MIN_PAGES_PER_THREAD: u32 = 16;

/// Number of scan workers the executor should actually use for a table of
/// `num_pages` pages when the caller requested `requested` threads.
///
/// Returns 1 (sequential) for single-threaded requests and for tables too
/// small to amortise worker start-up; otherwise `requested` capped so that
/// every worker has at least [`MIN_PAGES_PER_THREAD`] pages to chew on.
pub fn planned_scan_threads(num_pages: u32, requested: usize) -> usize {
    if requested <= 1 {
        return 1;
    }
    let cap = (num_pages / MIN_PAGES_PER_THREAD) as usize;
    requested.min(cap.max(1))
}

/// Entries one chunk scan discovered on a single page, waiting to be applied
/// to the Index Buffer in page order.
#[derive(Debug)]
pub struct StagedPage {
    /// Page ordinal the entries came from (the `p` of `C[p]`).
    pub ordinal: u32,
    /// Uncovered tuples of that page, in slot order — exactly what
    /// Algorithm 1 line 16 would insert.
    pub entries: Vec<(Value, Rid)>,
}

/// Read-only result of scanning one page-range chunk.
#[derive(Debug, Default)]
pub struct ChunkResult {
    /// Rids matching the predicate, in page-then-slot order.
    pub matches: Vec<Rid>,
    /// Pages staged for buffer insertion, in ascending page order.
    pub staged: Vec<StagedPage>,
    /// Pages fetched by this chunk.
    pub pages_read: u32,
    /// Pages skipped (`C[p] == 0`) by this chunk.
    pub pages_skipped: u32,
}

/// Scans one chunk of table pages without touching the buffer or counters.
///
/// This is the "discover" half of the split Algorithm 1: it evaluates the
/// predicate (lines 13–14) and *stages* the tuples line 16 would insert,
/// leaving all mutation to [`apply_staged`]. The [`ScanPlan`] snapshots are
/// taken before any worker starts, so every chunk sees the same counter
/// state the sequential scan would, and the chunk sweep uses the same
/// run-skipping batched reads as the sequential path.
pub fn scan_chunk(
    heap: &HeapFile,
    range: Range<u32>,
    plan: &ScanPlan,
    column: usize,
    covered: &(dyn Fn(&Value) -> bool + Sync),
    predicate: &Predicate,
) -> Result<ChunkResult, StorageError> {
    let mut result = ChunkResult::default();
    let mut decode_error: Option<StorageError> = None;
    // Hoisted out of the page callback: a page that stages entries hands the
    // filled vec to its `StagedPage` (which must own them), while pages that
    // stage nothing keep reusing the same allocation.
    let mut pending: Vec<(Value, Rid)> = Vec::new();
    let (read, skipped) = heap.sweep_read_runs(plan.skip.runs(range), |ord, pid, view| {
        if decode_error.is_some() {
            return;
        }
        if plan.to_index.contains(ord) {
            for (slot, bytes) in view.iter() {
                let value = match Tuple::read_column(bytes, column) {
                    Ok(v) => v,
                    Err(e) => {
                        decode_error = Some(e);
                        return;
                    }
                };
                let rid = Rid { page: pid, slot };
                if predicate.matches(&value) {
                    result.matches.push(rid);
                }
                if !covered(&value) {
                    pending.push((value, rid));
                }
            }
            result.staged.push(StagedPage {
                ordinal: ord,
                entries: std::mem::take(&mut pending),
            });
        } else if let Err(e) = plan
            .compiled
            .matches_page(&view, pid, column, &mut result.matches)
        {
            decode_error = Some(e);
        }
    })?;
    if let Some(e) = decode_error {
        return Err(e);
    }
    result.pages_read = read;
    result.pages_skipped = skipped;
    Ok(result)
}

/// Applies staged pages to the buffer in ascending page order — the "mutate"
/// half of the split Algorithm 1 (lines 16–17).
///
/// Ascending order reproduces the sequential scan's insertion sequence, so
/// partition composition (which pages share a partition) and the displacement
/// victim order downstream are identical to a sequential run.
pub fn apply_staged(
    buffer: &mut IndexBuffer,
    counters: &mut PageCounters,
    mut staged: Vec<StagedPage>,
    stats: &mut ScanStats,
) {
    staged.sort_by_key(|s| s.ordinal);
    for page in staged {
        stats.entries_added += u64::from(buffer.index_page(page.ordinal, page.entries));
        counters.set_zero(page.ordinal);
        stats.pages_indexed += 1;
    }
}

/// Like [`apply_staged`], but validates every staged page against the
/// *current* counters first: a page whose `C[p]` has dropped to zero since
/// the plan snapshot was indexed by a concurrent scan in the meantime — with
/// exactly the entries staged here, because the heap and the coverage
/// predicate are frozen for the duration of a read query — so it is skipped
/// instead of double-inserted (the buffer treats a second `index_page` of a
/// buffered page as a caller bug). Returns the number of staged pages
/// skipped.
///
/// An uncontended scan skips nothing and mutates the buffer, counters and
/// stats bit-for-bit identically to [`apply_staged`]; only overlapping scans
/// of the same buffer ever diverge, and then only by not repeating work
/// another scan already completed.
pub fn apply_staged_checked(
    buffer: &mut IndexBuffer,
    counters: &mut PageCounters,
    mut staged: Vec<StagedPage>,
    stats: &mut ScanStats,
) -> usize {
    staged.sort_by_key(|s| s.ordinal);
    let mut skipped = 0usize;
    for page in staged {
        if counters.get(page.ordinal) == 0 {
            skipped += 1;
            continue;
        }
        stats.entries_added += u64::from(buffer.index_page(page.ordinal, page.entries));
        counters.set_zero(page.ordinal);
        stats.pages_indexed += 1;
    }
    skipped
}

/// The "discover" phase of the split Algorithm 1 for a whole table: sweeps
/// every page the plan does not skip — fanned out over `threads` workers
/// when the table is big enough, on the calling thread otherwise — and
/// returns one merged [`ChunkResult`] in ascending page order.
///
/// Touches only the heap and the immutable [`ScanPlan`]; never the space.
/// That is the point: a concurrent executor calls this *without* holding any
/// engine lock, between a [`prepare_scan`] and an
/// [`apply_staged_checked`] that do. `partition_pages` is the queried
/// buffer's partition extent (chunk boundaries align to it so staged pages
/// group exactly as a sequential scan would group them).
pub fn sweep_plan(
    heap: &HeapFile,
    plan: &ScanPlan,
    partition_pages: u32,
    column: usize,
    covered: &(dyn Fn(&Value) -> bool + Sync),
    predicate: &Predicate,
    threads: usize,
) -> Result<ChunkResult, StorageError> {
    let num_pages = plan.num_pages;
    let chunks = if threads <= 1 {
        Vec::new()
    } else {
        page_range_chunks(num_pages, partition_pages, threads * CHUNKS_PER_THREAD)
    };
    if chunks.len() <= 1 {
        // Sequential (or not enough pages to split): one chunk, this thread.
        return scan_chunk(heap, 0..num_pages, plan, column, covered, predicate);
    }

    // Workers claim chunks from a shared cursor and record results per
    // chunk slot.
    let workers = threads.min(chunks.len());
    let results: Vec<OnceLock<Result<ChunkResult, StorageError>>> =
        chunks.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    {
        let (chunks, results, cursor) = (&chunks, &results, &cursor);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    // Relaxed: atomicity alone makes each claim unique; the
                    // scope join publishes the per-chunk results.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = chunks.get(i) else { break };
                    let r = scan_chunk(heap, range.clone(), plan, column, covered, predicate);
                    if let Some(cell) = results.get(i) {
                        let set = cell.set(r);
                        debug_assert!(set.is_ok(), "chunk {i} claimed twice");
                    }
                });
            }
        });
    }

    // Merge in ascending page order.
    let mut merged = ChunkResult::default();
    for cell in results {
        let chunk = cell.into_inner().ok_or_else(|| {
            StorageError::Corrupt("scan chunk never claimed by a worker".into())
        })??;
        merged.pages_read += chunk.pages_read;
        merged.pages_skipped += chunk.pages_skipped;
        merged.matches.extend(chunk.matches);
        merged.staged.extend(chunk.staged);
    }
    Ok(merged)
}

/// Runs Algorithm 1 with the table sweep fanned out over `threads` workers.
///
/// Sequential-equivalent to [`indexing_scan`]: same result rids in the same
/// order, same buffer contents and partition composition, same final `C[p]`
/// counters, same [`ScanStats`] — only wall-clock differs. With `threads <=
/// 1` (or a single chunk) this *is* the sequential scan.
///
/// On error (I/O or tuple decode in any chunk) the first failing chunk's
/// error, in page order, is returned and **no** staged entries are applied:
/// unlike the sequential path, the buffer and counters are left untouched.
#[allow(clippy::too_many_arguments)]
pub fn indexing_scan_parallel(
    heap: &HeapFile,
    space: &mut IndexBufferSpace,
    buffer_id: BufferId,
    column: usize,
    covered: &(dyn Fn(&Value) -> bool + Sync),
    predicate: &Predicate,
    out: &mut Vec<Rid>,
    threads: usize,
) -> Result<ScanStats, StorageError> {
    if threads <= 1 {
        return indexing_scan(heap, space, buffer_id, column, covered, predicate, out);
    }

    // Phase 1 (sequential): the shared preamble — the space's single RNG
    // draw per scan, the buffer scan, and the sweep-plan snapshots.
    let ScanPrep { mut stats, plan } = prepare_scan(heap, space, buffer_id, predicate, out);
    let partition_pages = space.buffer(buffer_id).config().partition_pages;

    // Phase 2 (parallel, read-only) + phase 3 merge.
    let chunk = sweep_plan(
        heap,
        &plan,
        partition_pages,
        column,
        covered,
        predicate,
        threads,
    )?;
    stats.pages_read = chunk.pages_read;
    stats.pages_skipped = chunk.pages_skipped;
    out.extend(chunk.matches);

    // Phase 4 (sequential): apply in ascending page order. Nothing staged
    // means nothing to mutate — skip the epoch-stamping borrow entirely so
    // fully-skippable scans leave published snapshots valid.
    if !chunk.staged.is_empty() {
        space.with_buffer_mut(buffer_id, |buffer, counters| {
            apply_staged(buffer, counters, chunk.staged, &mut stats);
        });
        space.sync_budget();
    }
    stats.matches = out.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BufferConfig, SpaceConfig};

    use aib_storage::{BufferPool, BufferPoolConfig, Column, CostModel, DiskManager, Schema};

    /// Builds a heap of two-column tuples (key, payload) with `n` keys
    /// `0..n`, plus a space with one buffer whose partial index covers keys
    /// `< covered_below`.
    fn setup(n: i64, covered_below: i64) -> (HeapFile, IndexBufferSpace, usize) {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(16),
        );
        let heap = HeapFile::new(pool);
        let _schema = Schema::new(vec![Column::int("k"), Column::str("pad")]);
        for i in 0..n {
            let t = Tuple::new(vec![Value::Int(i), Value::from("x".repeat(200))]);
            heap.insert(&t.to_bytes()).unwrap();
        }
        // Initialise counters: tuples per page minus covered tuples.
        let mut counts = Vec::new();
        for ord in 0..heap.num_pages() {
            let mut uncovered = 0u32;
            for (_, bytes) in heap.read_page(ord).unwrap() {
                let v = Tuple::read_column(&bytes, 0).unwrap();
                if v.as_int().unwrap() >= covered_below {
                    uncovered += 1;
                }
            }
            counts.push(uncovered);
        }
        let mut space = IndexBufferSpace::new(SpaceConfig {
            i_max: 1_000_000,
            seed: 1,
            ..Default::default()
        });
        let id = space.register("k", BufferConfig::default(), counts);
        (heap, space, id)
    }

    fn covered_fn(covered_below: i64) -> impl Fn(&Value) -> bool {
        move |v: &Value| v.as_int().is_some_and(|i| i < covered_below)
    }

    #[test]
    fn first_scan_reads_everything_second_skips_everything() {
        let (heap, mut space, id) = setup(500, 0);
        let covered = covered_fn(0);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        let s1 = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(42)),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(s1.pages_read, heap.num_pages());
        assert_eq!(s1.pages_skipped, 0);
        assert_eq!(s1.skip_runs, 0, "nothing skippable on a cold table");
        assert_eq!(
            s1.sweep_batches,
            heap.num_pages().div_ceil(heap.sweep_batch_pages() as u32),
            "one unskipped run, read in pool-sized batches"
        );
        assert_eq!(
            s1.pages_indexed,
            heap.num_pages(),
            "unlimited space indexes all pages"
        );
        assert_eq!(s1.entries_added, 500);
        assert_eq!(s1.buffer_matches, 0);

        space.on_query(Some(id), false);
        let mut out2 = Vec::new();
        let s2 = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(42)),
            &mut out2,
        )
        .unwrap();
        assert_eq!(out2, out, "same result from the buffer");
        assert_eq!(s2.pages_read, 0, "everything skipped");
        assert_eq!(s2.pages_skipped, heap.num_pages());
        assert_eq!(s2.skip_runs, 1, "the whole table is one skippable run");
        assert_eq!(s2.sweep_batches, 0, "no batched reads needed");
        assert_eq!(s2.buffer_matches, 1);
        space.check_invariants();
    }

    #[test]
    fn covered_tuples_are_not_buffered() {
        let (heap, mut space, id) = setup(300, 100);
        let covered = covered_fn(100);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        let s = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(250)),
            &mut out,
        )
        .unwrap();
        assert_eq!(
            s.entries_added, 200,
            "only the 200 uncovered tuples enter the buffer"
        );
        assert_eq!(space.buffer(id).num_entries(), 200);
    }

    #[test]
    fn results_identical_with_and_without_buffer() {
        let (heap, mut space, id) = setup(400, 50);
        let covered = covered_fn(50);
        let predicate = Predicate::Between(Value::Int(200), Value::Int(210));
        // Ground truth via plain scan.
        let mut expected = Vec::new();
        heap.scan_pages(
            |_| false,
            |rid, bytes| {
                let v = Tuple::read_column(bytes, 0).unwrap();
                if predicate.matches(&v) {
                    expected.push(rid);
                }
            },
        )
        .unwrap();
        expected.sort_unstable();

        for round in 0..3 {
            space.on_query(Some(id), false);
            let mut out = Vec::new();
            indexing_scan(&heap, &mut space, id, 0, &covered, &predicate, &mut out).unwrap();
            out.sort_unstable();
            assert_eq!(out, expected, "round {round}");
        }
    }

    #[test]
    fn imax_limits_pages_indexed_per_scan() {
        let (heap, space0, _) = setup(500, 0);
        // Re-register with a small I^MAX.
        let counts: Vec<u32> = (0..heap.num_pages())
            .map(|p| space0.counters(0).get(p))
            .collect();
        let mut space = IndexBufferSpace::new(SpaceConfig {
            i_max: 3,
            seed: 1,
            ..Default::default()
        });
        let id = space.register("k", BufferConfig::default(), counts);
        let covered = covered_fn(0);
        let total = heap.num_pages();
        let mut indexed_so_far = 0;
        let mut scans = 0;
        loop {
            space.on_query(Some(id), false);
            let mut out = Vec::new();
            let s = indexing_scan(
                &heap,
                &mut space,
                id,
                0,
                &covered,
                &Predicate::Equals(Value::Int(1)),
                &mut out,
            )
            .unwrap();
            assert!(s.pages_indexed <= 3, "I^MAX=3");
            assert_eq!(s.pages_skipped, indexed_so_far);
            indexed_so_far += s.pages_indexed;
            scans += 1;
            if indexed_so_far == total {
                break;
            }
            assert!(scans < 1000, "must converge");
        }
        assert_eq!(scans, total.div_ceil(3));
    }

    #[test]
    fn range_predicate_on_buffer() {
        let (heap, mut space, id) = setup(200, 0);
        let covered = covered_fn(0);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Between(Value::Int(10), Value::Int(20)),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 11);
        // Second scan: all from buffer.
        space.on_query(Some(id), false);
        let mut out2 = Vec::new();
        let s = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Between(Value::Int(10), Value::Int(20)),
            &mut out2,
        )
        .unwrap();
        assert_eq!(s.buffer_matches, 11);
        assert_eq!(s.pages_read, 0);
        out.sort_unstable();
        out2.sort_unstable();
        assert_eq!(out, out2);
    }

    #[test]
    fn parallel_scan_is_sequential_equivalent() {
        // Two identical worlds: one scanned sequentially, one in parallel.
        let (heap_s, mut space_s, id_s) = setup(600, 150);
        let (heap_p, mut space_p, id_p) = setup(600, 150);
        let covered = covered_fn(150);
        let predicates = [
            Predicate::Equals(Value::Int(400)),
            Predicate::Between(Value::Int(180), Value::Int(320)),
            Predicate::Equals(Value::Int(599)),
        ];
        for (round, predicate) in predicates.iter().enumerate() {
            space_s.on_query(Some(id_s), false);
            space_p.on_query(Some(id_p), false);
            let mut out_s = Vec::new();
            let mut out_p = Vec::new();
            let stats_s = indexing_scan(
                &heap_s,
                &mut space_s,
                id_s,
                0,
                &covered,
                predicate,
                &mut out_s,
            )
            .unwrap();
            let stats_p = indexing_scan_parallel(
                &heap_p,
                &mut space_p,
                id_p,
                0,
                &covered,
                predicate,
                &mut out_p,
                4,
            )
            .unwrap();
            assert_eq!(out_p, out_s, "round {round}: rids in identical order");
            assert_eq!(stats_p, stats_s, "round {round}: identical ScanStats");
        }
        assert_eq!(
            space_p.buffer(id_p).num_entries(),
            space_s.buffer(id_s).num_entries()
        );
        assert_eq!(
            space_p.buffer(id_p).num_partitions(),
            space_s.buffer(id_s).num_partitions(),
            "partition composition must match a sequential run"
        );
        let counters_s: Vec<u32> = (0..heap_s.num_pages())
            .map(|p| space_s.counters(id_s).get(p))
            .collect();
        let counters_p: Vec<u32> = (0..heap_p.num_pages())
            .map(|p| space_p.counters(id_p).get(p))
            .collect();
        assert_eq!(counters_p, counters_s, "identical final C[p] vectors");
        space_p.check_invariants();
    }

    #[test]
    fn parallel_scan_with_one_thread_is_the_sequential_scan() {
        let (heap, mut space, id) = setup(100, 0);
        let covered = covered_fn(0);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        let s = indexing_scan_parallel(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(7)),
            &mut out,
            1,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(s.pages_read, heap.num_pages());
    }

    #[test]
    fn planned_threads_degrade_on_small_tables() {
        assert_eq!(planned_scan_threads(10_000, 8), 8);
        assert_eq!(planned_scan_threads(64, 4), 4);
        assert_eq!(planned_scan_threads(48, 4), 3);
        assert_eq!(planned_scan_threads(10, 4), 1);
        assert_eq!(planned_scan_threads(0, 4), 1);
        assert_eq!(planned_scan_threads(10_000, 1), 1);
        assert_eq!(planned_scan_threads(10_000, 0), 1);
    }

    #[test]
    fn predicate_matching() {
        let eq = Predicate::Equals(Value::Int(5));
        assert!(eq.matches(&Value::Int(5)));
        assert!(!eq.matches(&Value::Int(6)));
        let between = Predicate::Between(Value::Int(1), Value::Int(3));
        assert!(between.matches(&Value::Int(1)));
        assert!(between.matches(&Value::Int(3)));
        assert!(!between.matches(&Value::Int(0)));
        assert!(!between.matches(&Value::Int(4)));
    }

    #[test]
    fn compiled_predicate_agrees_with_interpreted() {
        let values = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(7),
            Value::Int(i64::MAX),
            Value::from(""),
            Value::from("abc"),
            Value::from("abd"),
        ];
        let mut predicates = Vec::new();
        for v in &values {
            predicates.push(Predicate::Equals(v.clone()));
        }
        for lo in &values {
            for hi in &values {
                predicates.push(Predicate::Between(lo.clone(), hi.clone()));
            }
        }
        for predicate in &predicates {
            let compiled = CompiledPredicate::compile(predicate);
            for v in &values {
                let tuple = Tuple::new(vec![Value::from("pad"), v.clone()]);
                let bytes = tuple.to_bytes();
                let col = Tuple::read_column_raw(&bytes, 1).unwrap();
                assert_eq!(
                    compiled.matches(&col),
                    predicate.matches(v),
                    "{predicate:?} on {v:?}"
                );
                assert_eq!(
                    compiled.matches_tuple(&bytes, 1).unwrap(),
                    predicate.matches(v),
                    "window path: {predicate:?} on {v:?}"
                );
            }
        }
    }
}
