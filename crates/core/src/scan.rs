//! The indexing table scan — paper Algorithm 1.
//!
//! A query whose predicate misses the partial index runs this scan. It:
//!
//! 1. asks the Index Buffer Space which pages to index (`SelectPagesForBuffer`,
//!    Algorithm 2 — displacement happens inside);
//! 2. scans the Index Buffer for matching tuples (lines 8–10);
//! 3. scans the table, skipping every page with `C[p] == 0` (line 11); on
//!    unskipped pages it evaluates the predicate (line 13–14), and for pages
//!    selected in step 1 it inserts all tuples not covered by the partial
//!    index into the buffer and zeroes the page's counter (lines 15–17).
//!
//! The scan is instrumented: the per-query series of the paper's Figures 6–9
//! (runtime, buffer entries, pages skipped) come straight out of
//! [`ScanStats`].

use aib_storage::{HeapFile, Rid, StorageError, Tuple, Value};

use crate::index_buffer::BufferId;
use crate::space::IndexBufferSpace;

/// Query predicate over a single column — the paper's `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `column = value` (the paper's experiments are point queries).
    Equals(Value),
    /// `lo <= column <= hi` (range extension; works on B+-tree buffers).
    Between(Value, Value),
}

impl Predicate {
    /// Evaluates the predicate on a column value.
    #[inline]
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Equals(q) => v == q,
            Predicate::Between(lo, hi) => lo <= v && v <= hi,
        }
    }
}

/// Instrumentation of one indexing scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanStats {
    /// Matching tuples found (buffer + table scan).
    pub matches: usize,
    /// Matches served from the Index Buffer scan.
    pub buffer_matches: usize,
    /// Table pages fetched.
    pub pages_read: u32,
    /// Table pages skipped thanks to `C[p] == 0`.
    pub pages_skipped: u32,
    /// Pages newly indexed into the buffer by this scan (`|I|` realised).
    pub pages_indexed: u32,
    /// Buffer entries added by this scan.
    pub entries_added: u64,
    /// Partitions displaced to make room.
    pub partitions_dropped: usize,
    /// Entries freed by displacement.
    pub entries_displaced: usize,
}

/// Runs Algorithm 1 for `buffer_id` over `heap`.
///
/// * `column` — position of the queried column in the stored tuples.
/// * `covered` — the partial-index membership test `t ∈ IX` (line 15).
/// * `predicate` — the query predicate `q`.
/// * `out` — receives the rids of matching tuples (the result set `Q`).
///
/// The caller is responsible for having applied Table II
/// ([`IndexBufferSpace::on_query`]) first; this function only performs the
/// scan itself.
pub fn indexing_scan(
    heap: &HeapFile,
    space: &mut IndexBufferSpace,
    buffer_id: BufferId,
    column: usize,
    covered: &dyn Fn(&Value) -> bool,
    predicate: &Predicate,
    out: &mut Vec<Rid>,
) -> Result<ScanStats, StorageError> {
    let mut stats = ScanStats::default();

    // Line 7: I ← SelectPagesForBuffer() — with displacement as needed.
    let selection = space.select_pages_for_buffer(buffer_id);
    stats.partitions_dropped = selection.displaced.len();
    stats.entries_displaced = selection.displaced.iter().map(|d| d.entries_freed).sum();
    let mut to_index = vec![false; heap.num_pages() as usize];
    for &p in &selection.pages {
        if let Some(slot) = to_index.get_mut(p as usize) {
            *slot = true;
        }
    }

    let (buffer, counters) = space.buffer_and_counters_mut(buffer_id);

    // Lines 8–10: Index Buffer scan.
    let buffer_rids = match predicate {
        Predicate::Equals(v) => buffer.scan_point(v),
        Predicate::Between(lo, hi) => buffer.scan_range(lo, hi).unwrap_or_else(|| {
            // Hash-backed buffers cannot range-scan; fall back to a full
            // buffer sweep (still memory-only, no page I/O).
            let mut rids = Vec::new();
            for pid in buffer.partition_ids().collect::<Vec<_>>() {
                if let Some(p) = buffer.partition(pid) {
                    p.for_each(&mut |v, rid| {
                        if predicate.matches(v) {
                            rids.push(rid);
                        }
                    });
                }
            }
            rids.sort_unstable();
            rids
        }),
    };
    stats.buffer_matches = buffer_rids.len();
    out.extend_from_slice(&buffer_rids);

    // Lines 11–17: table scan with page skipping and on-the-fly indexing.
    let skip: Vec<bool> = (0..heap.num_pages())
        .map(|p| counters.is_fully_indexed(p))
        .collect();
    let mut pending: Vec<(Value, Rid)> = Vec::new();
    let mut decode_error: Option<StorageError> = None;
    let (read, skipped) = heap.scan_page_views(
        |ord| skip[ord as usize],
        |ord, pid, view| {
            if decode_error.is_some() {
                return;
            }
            let index_this_page = to_index[ord as usize];
            pending.clear();
            for (slot, bytes) in view.iter() {
                let value = match Tuple::read_column(bytes, column) {
                    Ok(v) => v,
                    Err(e) => {
                        decode_error = Some(e);
                        return;
                    }
                };
                let rid = Rid { page: pid, slot };
                if predicate.matches(&value) {
                    out.push(rid);
                }
                if index_this_page && !covered(&value) {
                    pending.push((value, rid));
                }
            }
            if index_this_page {
                stats.entries_added += buffer.index_page(ord, pending.drain(..)) as u64;
                counters.set_zero(ord);
                stats.pages_indexed += 1;
            }
        },
    )?;
    if let Some(e) = decode_error {
        return Err(e);
    }
    stats.pages_read = read;
    stats.pages_skipped = skipped;
    stats.matches = out.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BufferConfig, SpaceConfig};
    use crate::counters::PageCounters;
    use aib_storage::{BufferPool, BufferPoolConfig, Column, CostModel, DiskManager, Schema};

    /// Builds a heap of two-column tuples (key, payload) with `n` keys
    /// `0..n`, plus a space with one buffer whose partial index covers keys
    /// `< covered_below`.
    fn setup(n: i64, covered_below: i64) -> (HeapFile, IndexBufferSpace, usize) {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(16),
        );
        let heap = HeapFile::new(pool);
        let _schema = Schema::new(vec![Column::int("k"), Column::str("pad")]);
        for i in 0..n {
            let t = Tuple::new(vec![Value::Int(i), Value::from("x".repeat(200))]);
            heap.insert(&t.to_bytes()).unwrap();
        }
        // Initialise counters: tuples per page minus covered tuples.
        let mut counts = Vec::new();
        for ord in 0..heap.num_pages() {
            let mut uncovered = 0u32;
            for (_, bytes) in heap.read_page(ord).unwrap() {
                let v = Tuple::read_column(&bytes, 0).unwrap();
                if v.as_int().unwrap() >= covered_below {
                    uncovered += 1;
                }
            }
            counts.push(uncovered);
        }
        let mut space = IndexBufferSpace::new(SpaceConfig {
            max_entries: None,
            i_max: 1_000_000,
            seed: 1,
        });
        let id = space.register(
            "k",
            BufferConfig::default(),
            PageCounters::from_counts(counts),
        );
        (heap, space, id)
    }

    fn covered_fn(covered_below: i64) -> impl Fn(&Value) -> bool {
        move |v: &Value| v.as_int().is_some_and(|i| i < covered_below)
    }

    #[test]
    fn first_scan_reads_everything_second_skips_everything() {
        let (heap, mut space, id) = setup(500, 0);
        let covered = covered_fn(0);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        let s1 = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(42)),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(s1.pages_read, heap.num_pages());
        assert_eq!(s1.pages_skipped, 0);
        assert_eq!(
            s1.pages_indexed,
            heap.num_pages(),
            "unlimited space indexes all pages"
        );
        assert_eq!(s1.entries_added, 500);
        assert_eq!(s1.buffer_matches, 0);

        space.on_query(Some(id), false);
        let mut out2 = Vec::new();
        let s2 = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(42)),
            &mut out2,
        )
        .unwrap();
        assert_eq!(out2, out, "same result from the buffer");
        assert_eq!(s2.pages_read, 0, "everything skipped");
        assert_eq!(s2.pages_skipped, heap.num_pages());
        assert_eq!(s2.buffer_matches, 1);
        space.check_invariants();
    }

    #[test]
    fn covered_tuples_are_not_buffered() {
        let (heap, mut space, id) = setup(300, 100);
        let covered = covered_fn(100);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        let s = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Equals(Value::Int(250)),
            &mut out,
        )
        .unwrap();
        assert_eq!(
            s.entries_added, 200,
            "only the 200 uncovered tuples enter the buffer"
        );
        assert_eq!(space.buffer(id).num_entries(), 200);
    }

    #[test]
    fn results_identical_with_and_without_buffer() {
        let (heap, mut space, id) = setup(400, 50);
        let covered = covered_fn(50);
        let predicate = Predicate::Between(Value::Int(200), Value::Int(210));
        // Ground truth via plain scan.
        let mut expected = Vec::new();
        heap.scan_pages(
            |_| false,
            |rid, bytes| {
                let v = Tuple::read_column(bytes, 0).unwrap();
                if predicate.matches(&v) {
                    expected.push(rid);
                }
            },
        )
        .unwrap();
        expected.sort_unstable();

        for round in 0..3 {
            space.on_query(Some(id), false);
            let mut out = Vec::new();
            indexing_scan(&heap, &mut space, id, 0, &covered, &predicate, &mut out).unwrap();
            out.sort_unstable();
            assert_eq!(out, expected, "round {round}");
        }
    }

    #[test]
    fn imax_limits_pages_indexed_per_scan() {
        let (heap, space0, _) = setup(500, 0);
        // Re-register with a small I^MAX.
        let counts: Vec<u32> = (0..heap.num_pages())
            .map(|p| space0.counters(0).get(p))
            .collect();
        let mut space = IndexBufferSpace::new(SpaceConfig {
            max_entries: None,
            i_max: 3,
            seed: 1,
        });
        let id = space.register(
            "k",
            BufferConfig::default(),
            PageCounters::from_counts(counts),
        );
        let covered = covered_fn(0);
        let total = heap.num_pages();
        let mut indexed_so_far = 0;
        let mut scans = 0;
        loop {
            space.on_query(Some(id), false);
            let mut out = Vec::new();
            let s = indexing_scan(
                &heap,
                &mut space,
                id,
                0,
                &covered,
                &Predicate::Equals(Value::Int(1)),
                &mut out,
            )
            .unwrap();
            assert!(s.pages_indexed <= 3, "I^MAX=3");
            assert_eq!(s.pages_skipped, indexed_so_far);
            indexed_so_far += s.pages_indexed;
            scans += 1;
            if indexed_so_far == total {
                break;
            }
            assert!(scans < 1000, "must converge");
        }
        assert_eq!(scans, total.div_ceil(3));
    }

    #[test]
    fn range_predicate_on_buffer() {
        let (heap, mut space, id) = setup(200, 0);
        let covered = covered_fn(0);
        space.on_query(Some(id), false);
        let mut out = Vec::new();
        indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Between(Value::Int(10), Value::Int(20)),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 11);
        // Second scan: all from buffer.
        space.on_query(Some(id), false);
        let mut out2 = Vec::new();
        let s = indexing_scan(
            &heap,
            &mut space,
            id,
            0,
            &covered,
            &Predicate::Between(Value::Int(10), Value::Int(20)),
            &mut out2,
        )
        .unwrap();
        assert_eq!(s.buffer_matches, 11);
        assert_eq!(s.pages_read, 0);
        out.sort_unstable();
        out2.sort_unstable();
        assert_eq!(out, out2);
    }

    #[test]
    fn predicate_matching() {
        let eq = Predicate::Equals(Value::Int(5));
        assert!(eq.matches(&Value::Int(5)));
        assert!(!eq.matches(&Value::Int(6)));
        let between = Predicate::Between(Value::Int(1), Value::Int(3));
        assert!(between.matches(&Value::Int(1)));
        assert!(between.matches(&Value::Int(3)));
        assert!(!between.matches(&Value::Int(0)));
        assert!(!between.matches(&Value::Int(4)));
    }
}
