//! Index Buffer partitions (paper §IV, Fig. 5).
//!
//! "For the precise and efficient discarding of entries from an Index
//! Buffer, we partition the B\*-Tree of an Index Buffer. Each partition
//! covers P pages of the table, so that the partitions are disjunct in the
//! sets of pages they reference."
//!
//! Partitions group pages *in indexing order* (Fig. 5 shows Partition 1
//! covering pages 1 and 7 — groups are not contiguous page ranges). Each
//! Index Buffer has at most one *incomplete* partition (`X_p < P`): the one
//! currently being filled. Displacement always drops whole partitions; the
//! per-page entry counts recorded here are what lets the drop restore the
//! pages' `C[p]` counters exactly.

use std::collections::HashMap;
use std::ops::Range;

use aib_index::{IndexBackend, SecondaryIndex};
use aib_storage::{MemoryUsage, Rid, Value};

/// Identifier of a partition within its Index Buffer (monotonic).
pub type PartitionId = u64;

/// Splits `num_pages` table pages into contiguous page-range chunks for a
/// parallel indexing scan.
///
/// Chunks are **partition-aligned**: no chunk is larger than
/// `partition_pages` (`P`), so the pages one chunk stages for the buffer
/// never exceed one partition's capacity. Below that cap, the chunk size
/// shrinks until at least `min_chunks` chunks exist (when the table has that
/// many pages), giving the worker pool enough pieces to balance load.
///
/// The ranges are returned in ascending page order and exactly cover
/// `0..num_pages`; an empty table yields no chunks.
pub fn page_range_chunks(
    num_pages: u32,
    partition_pages: u32,
    min_chunks: usize,
) -> Vec<Range<u32>> {
    if num_pages == 0 {
        return Vec::new();
    }
    let target = num_pages.div_ceil(min_chunks.max(1) as u32);
    let chunk = target.clamp(1, partition_pages.max(1));
    let mut out = Vec::with_capacity(num_pages.div_ceil(chunk) as usize);
    let mut start = 0;
    while start < num_pages {
        let end = (start + chunk).min(num_pages);
        out.push(start..end);
        start = end;
    }
    out
}

/// One partition: a group of up to `P` buffered pages and their entries.
pub struct Partition {
    id: PartitionId,
    entries: Box<dyn SecondaryIndex>,
    /// Buffer entries per covered page — exactly the value `C[p]` must be
    /// restored to if this partition is dropped.
    per_page: HashMap<u32, u32>,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new(id: PartitionId, backend: IndexBackend) -> Self {
        Partition {
            id,
            entries: backend.build(),
            per_page: HashMap::new(),
        }
    }

    /// Partition id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// `X_p` — number of pages this partition covers.
    pub fn pages_covered(&self) -> u32 {
        self.per_page.len() as u32
    }

    /// `n_p` — number of entries in this partition.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Whether this partition covers `page`.
    pub fn covers(&self, page: u32) -> bool {
        self.per_page.contains_key(&page)
    }

    /// Registers `page` as covered with `entry_count` freshly added entries.
    ///
    /// # Panics
    /// If the page is already covered (partitions within a buffer are
    /// disjoint; double registration is a scan bug).
    pub fn add_page(&mut self, page: u32, entry_count: u32) {
        let prev = self.per_page.insert(page, entry_count);
        assert!(
            prev.is_none(),
            "page {page} registered twice in partition {}",
            self.id
        );
    }

    /// Adds one entry for an already-covered page (Table I `B.Add`).
    pub fn add_entry(&mut self, value: Value, rid: Rid, page: u32) -> bool {
        debug_assert!(self.covers(page), "B.Add to page {page} not covered here");
        let added = self.entries.add(value, rid);
        if added {
            *self.per_page.entry(page).or_insert(0) += 1;
        }
        added
    }

    /// Removes one entry (Table I `B.Remove`).
    pub fn remove_entry(&mut self, value: &Value, rid: Rid, page: u32) -> bool {
        let removed = self.entries.remove(value, rid);
        if removed {
            if let Some(slot) = self.per_page.get_mut(&page) {
                debug_assert!(*slot > 0, "per-page count underflow on page {page}");
                *slot = slot.saturating_sub(1);
            } else {
                debug_assert!(false, "removed entry's page {page} is uncovered");
            }
        }
        removed
    }

    /// Bulk-adds the freshly indexed entries of a new page (Algorithm 1
    /// line 16). Returns the number of entries actually added.
    pub fn index_page(&mut self, page: u32, tuples: impl IntoIterator<Item = (Value, Rid)>) -> u32 {
        let mut n = 0;
        for (value, rid) in tuples {
            if self.entries.add(value, rid) {
                n += 1;
            }
        }
        self.add_page(page, n);
        n
    }

    /// Point lookup within this partition.
    pub fn lookup(&self, value: &Value) -> Vec<Rid> {
        self.entries.lookup(value)
    }

    /// Range lookup, if the backend supports it.
    pub fn lookup_range(&self, lo: &Value, hi: &Value) -> Option<Vec<Rid>> {
        self.entries.lookup_range(lo, hi)
    }

    /// True if the exact entry exists.
    pub fn contains(&self, value: &Value, rid: Rid) -> bool {
        self.entries.contains(value, rid)
    }

    /// The pages this partition covers with their restore counts.
    pub fn pages(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.per_page.iter().map(|(&p, &n)| (p, n))
    }

    /// Visits every entry.
    pub fn for_each(&self, f: &mut dyn FnMut(&Value, Rid)) {
        self.entries.for_each(f);
    }
}

impl MemoryUsage for Partition {
    /// Bytes resident in this partition's entries, as reported by the
    /// backing index. The per-page restore counts are deliberately *not*
    /// charged: they are bookkeeping the space manager keeps regardless of
    /// budget pressure, and excluding them keeps the paper's entry bound
    /// `L` exactly convertible to bytes for INTEGER columns.
    fn footprint(&self) -> usize {
        self.entries.footprint()
    }
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("id", &self.id)
            .field("pages", &self.per_page.len())
            .field("entries", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn index_page_records_counts() {
        let mut p = Partition::new(0, IndexBackend::BTree);
        let n = p.index_page(5, vec![(v(1), Rid::new(5, 0)), (v(2), Rid::new(5, 1))]);
        assert_eq!(n, 2);
        assert_eq!(p.pages_covered(), 1);
        assert_eq!(p.num_entries(), 2);
        assert!(p.covers(5));
        assert!(!p.covers(6));
        assert_eq!(p.lookup(&v(1)), vec![Rid::new(5, 0)]);
    }

    #[test]
    fn maintenance_entry_ops_track_per_page() {
        let mut p = Partition::new(0, IndexBackend::BTree);
        p.index_page(3, vec![(v(10), Rid::new(3, 0))]);
        assert!(p.add_entry(v(11), Rid::new(3, 1), 3));
        assert!(!p.add_entry(v(11), Rid::new(3, 1), 3), "duplicate");
        let counts: HashMap<u32, u32> = p.pages().collect();
        assert_eq!(counts[&3], 2);
        assert!(p.remove_entry(&v(10), Rid::new(3, 0), 3));
        assert!(!p.remove_entry(&v(10), Rid::new(3, 0), 3));
        let counts: HashMap<u32, u32> = p.pages().collect();
        assert_eq!(counts[&3], 1, "restore count follows entries");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_page_registration_panics() {
        let mut p = Partition::new(0, IndexBackend::BTree);
        p.add_page(1, 1);
        p.add_page(1, 1);
    }

    #[test]
    fn empty_page_can_be_covered() {
        // A page whose uncovered tuples were all deleted still counts as
        // covered with restore count 0: it stays skippable even after the
        // partition drops.
        let mut p = Partition::new(0, IndexBackend::BTree);
        p.index_page(9, std::iter::empty());
        assert!(p.covers(9));
        assert_eq!(p.pages_covered(), 1);
        assert_eq!(p.num_entries(), 0);
    }

    #[test]
    fn page_range_chunks_cover_exactly_and_stay_partition_aligned() {
        for (n, p, min_chunks) in [
            (0u32, 10u32, 4usize),
            (1, 10, 4),
            (100, 10, 4),
            (100, 10_000, 16),
            (97, 7, 5),
            (10_000, 10_000, 32),
        ] {
            let chunks = page_range_chunks(n, p, min_chunks);
            if n == 0 {
                assert!(chunks.is_empty());
                continue;
            }
            // Exact, ordered, gapless cover of 0..n.
            let mut next = 0;
            for r in &chunks {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                assert!(r.end - r.start <= p, "chunk larger than a partition");
                next = r.end;
            }
            assert_eq!(next, n);
            // Rounding can undershoot min_chunks slightly, but the split must
            // land in the right ballpark for load balancing.
            if (n as usize) >= min_chunks {
                assert!(
                    chunks.len() * 2 >= min_chunks,
                    "n={n} p={p} min={min_chunks} got {}",
                    chunks.len()
                );
            }
        }
    }

    #[test]
    fn range_lookup_via_btree_backend() {
        let mut p = Partition::new(0, IndexBackend::BTree);
        p.index_page(1, (0..10).map(|i| (v(i), Rid::new(1, i as u16))));
        let rids = p.lookup_range(&v(2), &v(4)).unwrap();
        assert_eq!(rids.len(), 3);

        let hash = Partition::new(1, IndexBackend::Hash);
        assert!(hash.lookup_range(&v(0), &v(1)).is_none());
    }
}
