//! Re-export of the workspace sync shim (see `aib_storage::sync`).
//!
//! Core-layer code imports its atomics and locks from here; in production
//! these are `std::sync::atomic` / `parking_lot`, under `cfg(aib_model)`
//! they are the instrumented model-checker runtime. One import path,
//! model-checkable by construction.

pub use aib_storage::sync::*;
