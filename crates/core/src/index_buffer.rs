//! One Index Buffer: the scratch-pad index complementing one partial index
//! (paper §III–IV).
//!
//! The buffer holds `(value, rid)` entries for tuples **not** covered by the
//! partial index, grouped into [`Partition`]s of up to `P` pages each. Pages
//! become *buffered* when an indexing scan completes them (their `C[p]`
//! drops to 0); they stop being buffered when their partition is dropped by
//! the Index Buffer Space manager.

use std::collections::HashMap;

use aib_storage::{MemoryUsage, Rid, Value};

use crate::config::BufferConfig;
use crate::history::LruKHistory;
use crate::partition::{Partition, PartitionId};

/// Identifier of an Index Buffer within the Index Buffer Space.
pub type BufferId = usize;

/// Pages and restore counts returned by a partition drop. The caller must
/// restore `C[p]` for every listed page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedPartition {
    /// Which partition was dropped.
    pub partition: PartitionId,
    /// `(page, restore_count)` for every page the partition covered.
    pub pages: Vec<(u32, u32)>,
    /// Entries freed.
    pub entries_freed: usize,
    /// Bytes returned to the memory budget — exactly the partition's
    /// [`MemoryUsage::footprint`] at drop time.
    pub bytes_freed: usize,
}

/// A scratch-pad index for one column's partial index.
///
/// ```
/// use aib_core::{BufferConfig, IndexBuffer};
/// use aib_storage::{Rid, Value};
///
/// let mut buffer = IndexBuffer::new(0, "A", BufferConfig::default());
/// // An indexing scan completes page 3 (its two uncovered tuples enter):
/// buffer.index_page(3, vec![
///     (Value::Int(700), Rid::new(3, 0)),
///     (Value::Int(900), Rid::new(3, 4)),
/// ]);
/// assert!(buffer.is_buffered(3));
/// assert_eq!(buffer.scan_point(&Value::Int(900)), vec![Rid::new(3, 4)]);
///
/// // Displacement drops whole partitions, reporting counter restores:
/// let pid = buffer.partition_ids().next().unwrap();
/// let dropped = buffer.drop_partition(pid).unwrap();
/// assert_eq!(dropped.pages, vec![(3, 2)]);
/// assert!(!buffer.is_buffered(3));
/// ```
pub struct IndexBuffer {
    id: BufferId,
    name: String,
    config: BufferConfig,
    partitions: HashMap<PartitionId, Partition>,
    /// Which partition covers each buffered page.
    page_to_partition: HashMap<u32, PartitionId>,
    /// The partition currently being filled (`X_p < P`), if any.
    open_partition: Option<PartitionId>,
    next_partition_id: PartitionId,
    history: LruKHistory,
    total_entries: usize,
}

impl IndexBuffer {
    /// Creates an empty Index Buffer.
    pub fn new(id: BufferId, name: impl Into<String>, config: BufferConfig) -> Self {
        config.validate();
        IndexBuffer {
            id,
            name: name.into(),
            config,
            partitions: HashMap::new(),
            page_to_partition: HashMap::new(),
            open_partition: None,
            next_partition_id: 0,
            history: LruKHistory::new(config.history_k),
            total_entries: 0,
        }
    }

    /// Buffer id within the Index Buffer Space.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Human-readable name (usually the column).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration this buffer was built with.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// The LRU-K history (Table II operations are applied by the space
    /// manager).
    pub fn history(&self) -> &LruKHistory {
        &self.history
    }

    /// Mutable history access for the space manager.
    pub(crate) fn history_mut(&mut self) -> &mut LruKHistory {
        &mut self.history
    }

    /// Total entries across all partitions.
    pub fn num_entries(&self) -> usize {
        self.total_entries
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of buffered (completed) pages.
    pub fn num_buffered_pages(&self) -> usize {
        self.page_to_partition.len()
    }

    /// Whether `page` is buffered — the paper's `p ∈ B` test (Table I).
    #[inline]
    pub fn is_buffered(&self, page: u32) -> bool {
        self.page_to_partition.contains_key(&page)
    }

    /// `T_B⁻¹` — the use-frequency factor of the benefit model.
    pub fn use_frequency(&self) -> f64 {
        self.history.use_frequency()
    }

    /// Benefit of one partition: `b_p = X_p · T_B⁻¹` (paper §IV).
    pub fn partition_benefit(&self, partition: PartitionId) -> f64 {
        let freq = self.use_frequency();
        self.partitions
            .get(&partition)
            .map_or(0.0, |p| p.pages_covered() as f64 * freq)
    }

    /// Benefit of the whole buffer: `b_B = Σ_p b_p`.
    pub fn benefit(&self) -> f64 {
        let freq = self.use_frequency();
        self.partitions
            .values()
            .map(|p| p.pages_covered() as f64 * freq)
            .sum()
    }

    /// Scans the buffer for tuples matching `value` (Algorithm 1 lines
    /// 8–10, point-query case).
    pub fn scan_point(&self, value: &Value) -> Vec<Rid> {
        let mut rids: Vec<Rid> = self
            .partitions
            .values()
            .flat_map(|p| p.lookup(value))
            .collect();
        rids.sort_unstable();
        rids
    }

    /// Scans the buffer for tuples in `[lo, hi]` (range-query extension).
    /// Returns `None` if any partition backend cannot scan ranges.
    pub fn scan_range(&self, lo: &Value, hi: &Value) -> Option<Vec<Rid>> {
        let mut rids = Vec::new();
        for p in self.partitions.values() {
            rids.extend(p.lookup_range(lo, hi)?);
        }
        rids.sort_unstable();
        Some(rids)
    }

    /// True if the exact entry exists in some partition.
    pub fn contains(&self, value: &Value, rid: Rid) -> bool {
        self.partitions.values().any(|p| p.contains(value, rid))
    }

    /// Indexes a freshly scanned page: stores its uncovered tuples and marks
    /// it buffered (Algorithm 1 lines 15–17; the caller sets `C[p] ← 0`).
    /// Returns the number of entries added.
    ///
    /// # Panics
    /// If the page is already buffered.
    pub fn index_page(&mut self, page: u32, tuples: impl IntoIterator<Item = (Value, Rid)>) -> u32 {
        assert!(!self.is_buffered(page), "page {page} is already buffered");
        let partition_pages = self.config.partition_pages;
        let (pid, partition) = self.open_partition_mut();
        let added = partition.index_page(page, tuples);
        let partition_full = partition.pages_covered() >= partition_pages;
        self.total_entries += added as usize;
        self.page_to_partition.insert(page, pid);
        if partition_full {
            self.open_partition = None; // partition is complete
        }
        added
    }

    /// The open (incomplete) partition, creating one if needed.
    fn open_partition_mut(&mut self) -> (PartitionId, &mut Partition) {
        let pid = match self.open_partition {
            Some(pid) if self.partitions.contains_key(&pid) => pid,
            _ => {
                let pid = self.next_partition_id;
                self.next_partition_id += 1;
                self.open_partition = Some(pid);
                pid
            }
        };
        let backend = self.config.backend;
        let partition = self
            .partitions
            .entry(pid)
            .or_insert_with(|| Partition::new(pid, backend));
        (pid, partition)
    }

    /// Table I `B.Add(t_new)`: an uncovered tuple landed in buffered page
    /// `page`.
    pub fn add(&mut self, value: Value, rid: Rid, page: u32) -> bool {
        // Caller contract (Table I): p ∈ B. An unmapped page reads as "not
        // added" instead of panicking; debug builds still flag the misuse.
        let Some(partition) = self
            .page_to_partition
            .get(&page)
            .and_then(|pid| self.partitions.get_mut(pid))
        else {
            debug_assert!(false, "B.Add on unbuffered page {page}");
            return false;
        };
        let added = partition.add_entry(value, rid, page);
        if added {
            self.total_entries += 1;
        }
        added
    }

    /// Table I `B.Remove(t_old)`: an uncovered tuple left buffered page
    /// `page`.
    pub fn remove(&mut self, value: &Value, rid: Rid, page: u32) -> bool {
        // Caller contract (Table I): p ∈ B — same defensive shape as `add`.
        let Some(partition) = self
            .page_to_partition
            .get(&page)
            .and_then(|pid| self.partitions.get_mut(pid))
        else {
            debug_assert!(false, "B.Remove on unbuffered page {page}");
            return false;
        };
        let removed = partition.remove_entry(value, rid, page);
        if removed {
            self.total_entries -= 1;
        }
        removed
    }

    /// Table I `B.Update(t_old, t_new)`: an uncovered tuple changed value
    /// and/or slot, staying within buffered pages.
    pub fn update(
        &mut self,
        old_value: &Value,
        old_rid: Rid,
        old_page: u32,
        new_value: Value,
        new_rid: Rid,
        new_page: u32,
    ) {
        self.remove(old_value, old_rid, old_page);
        self.add(new_value, new_rid, new_page);
    }

    /// Drops a whole partition (paper §IV: "it always drops complete
    /// partitions"). Returns the pages whose `C[p]` the caller must restore.
    pub fn drop_partition(&mut self, partition: PartitionId) -> Option<DroppedPartition> {
        let p = self.partitions.remove(&partition)?;
        if self.open_partition == Some(partition) {
            self.open_partition = None;
        }
        let pages: Vec<(u32, u32)> = p.pages().collect();
        for &(page, _) in &pages {
            self.page_to_partition.remove(&page);
        }
        let entries_freed = p.num_entries();
        let bytes_freed = p.footprint();
        self.total_entries -= entries_freed;
        Some(DroppedPartition {
            partition,
            pages,
            entries_freed,
            bytes_freed,
        })
    }

    /// Partitions in the victim order of §IV stage 2: the incomplete
    /// partition first ("has the lowest benefit within an Index Buffer"),
    /// then complete partitions in descending entry count `n_p` ("because
    /// they have the same benefit").
    pub fn partitions_in_victim_order(&self) -> Vec<PartitionId> {
        let mut complete: Vec<(usize, PartitionId)> = self
            .partitions
            .values()
            .filter(|p| Some(p.id()) != self.open_partition)
            .map(|p| (p.num_entries(), p.id()))
            .collect();
        complete.sort_by(|a, b| b.cmp(a));
        let mut order: Vec<PartitionId> = Vec::with_capacity(self.partitions.len());
        if let Some(open) = self.open_partition {
            order.push(open);
        }
        order.extend(complete.into_iter().map(|(_, id)| id));
        order
    }

    /// Looks up a partition (diagnostics and the space manager).
    pub fn partition(&self, id: PartitionId) -> Option<&Partition> {
        self.partitions.get(&id)
    }

    /// All partition ids.
    pub fn partition_ids(&self) -> impl Iterator<Item = PartitionId> + '_ {
        self.partitions.keys().copied()
    }

    /// Internal consistency check (tests): per-partition entry totals and
    /// page mappings agree with the global bookkeeping.
    pub fn check_invariants(&self) {
        let entries: usize = self.partitions.values().map(Partition::num_entries).sum();
        assert_eq!(entries, self.total_entries, "entry total");
        let pages: usize = self
            .partitions
            .values()
            .map(|p| p.pages_covered() as usize)
            .sum();
        assert_eq!(pages, self.page_to_partition.len(), "page total");
        for (&page, &pid) in &self.page_to_partition {
            assert!(
                self.partitions.get(&pid).is_some_and(|p| p.covers(page)),
                "page {page} mapped to partition {pid} that does not cover it"
            );
        }
        if let Some(open) = self.open_partition {
            assert!(
                self.partitions
                    .get(&open)
                    .is_some_and(|p| p.pages_covered() < self.config.partition_pages),
                "open partition is missing or full"
            );
        }
        for p in self.partitions.values() {
            assert!(
                p.pages_covered() <= self.config.partition_pages,
                "partition over P pages"
            );
        }
    }
}

impl MemoryUsage for IndexBuffer {
    /// Bytes resident across all partitions. Computed on demand from the
    /// partitions' own byte counters, so maintenance churn (Table I
    /// add/remove/update) is reflected without a second set of counters
    /// that could drift.
    fn footprint(&self) -> usize {
        self.partitions.values().map(Partition::footprint).sum()
    }
}

impl std::fmt::Debug for IndexBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexBuffer")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("entries", &self.total_entries)
            .field("partitions", &self.partitions.len())
            .field("buffered_pages", &self.page_to_partition.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aib_index::IndexBackend;

    fn buffer(p: u32) -> IndexBuffer {
        IndexBuffer::new(
            0,
            "col_a",
            BufferConfig {
                partition_pages: p,
                history_k: 2,
                backend: IndexBackend::BTree,
            },
        )
    }

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn index_pages_fill_partitions_of_p_pages() {
        let mut b = buffer(2);
        b.index_page(0, vec![(v(1), Rid::new(0, 0))]);
        b.index_page(7, vec![(v(2), Rid::new(7, 0))]); // Fig. 5: groups are not contiguous
        b.index_page(3, vec![(v(3), Rid::new(3, 0))]);
        assert_eq!(
            b.num_partitions(),
            2,
            "P=2: pages 0,7 complete partition 0; page 3 opens 1"
        );
        assert_eq!(b.num_buffered_pages(), 3);
        assert_eq!(b.num_entries(), 3);
        assert!(b.is_buffered(7));
        assert!(!b.is_buffered(1));
        b.check_invariants();
    }

    #[test]
    #[should_panic(expected = "already buffered")]
    fn double_index_page_panics() {
        let mut b = buffer(10);
        b.index_page(0, vec![]);
        b.index_page(0, vec![]);
    }

    #[test]
    fn scan_point_searches_all_partitions() {
        let mut b = buffer(1); // every page its own partition
        b.index_page(0, vec![(v(5), Rid::new(0, 0))]);
        b.index_page(1, vec![(v(5), Rid::new(1, 0)), (v(6), Rid::new(1, 1))]);
        assert_eq!(b.scan_point(&v(5)), vec![Rid::new(0, 0), Rid::new(1, 0)]);
        assert_eq!(b.scan_point(&v(6)), vec![Rid::new(1, 1)]);
        assert_eq!(b.scan_point(&v(7)), vec![]);
    }

    #[test]
    fn scan_range_extension() {
        let mut b = buffer(10);
        b.index_page(0, (0..10).map(|i| (v(i), Rid::new(0, i as u16))));
        let rids = b.scan_range(&v(3), &v(5)).unwrap();
        assert_eq!(rids.len(), 3);
    }

    #[test]
    fn maintenance_add_remove_update() {
        let mut b = buffer(10);
        b.index_page(4, vec![(v(1), Rid::new(4, 0))]);
        assert!(b.add(v(2), Rid::new(4, 1), 4));
        assert_eq!(b.num_entries(), 2);
        assert!(b.remove(&v(1), Rid::new(4, 0), 4));
        assert_eq!(b.num_entries(), 1);
        b.index_page(9, vec![]);
        b.update(&v(2), Rid::new(4, 1), 4, v(3), Rid::new(9, 0), 9);
        assert!(b.contains(&v(3), Rid::new(9, 0)));
        assert!(!b.contains(&v(2), Rid::new(4, 1)));
        b.check_invariants();
    }

    #[test]
    fn drop_partition_returns_restore_counts() {
        let mut b = buffer(2);
        b.index_page(0, vec![(v(1), Rid::new(0, 0)), (v(2), Rid::new(0, 1))]);
        b.index_page(5, vec![(v(3), Rid::new(5, 0))]);
        let pid = *b.page_to_partition.get(&0).unwrap();
        let before = b.footprint();
        let dropped = b.drop_partition(pid).unwrap();
        assert_eq!(dropped.entries_freed, 3);
        assert_eq!(
            dropped.bytes_freed,
            3 * aib_storage::DEFAULT_ENTRY_FOOTPRINT,
            "INTEGER entries cost exactly the default footprint"
        );
        assert_eq!(before - b.footprint(), dropped.bytes_freed);
        assert_eq!(b.footprint(), 0);
        let mut pages = dropped.pages.clone();
        pages.sort_unstable();
        assert_eq!(pages, vec![(0, 2), (5, 1)]);
        assert_eq!(b.num_entries(), 0);
        assert!(!b.is_buffered(0));
        assert!(!b.is_buffered(5));
        assert_eq!(b.drop_partition(pid), None, "second drop is a no-op");
        b.check_invariants();
    }

    #[test]
    fn drop_reflects_maintenance_changes() {
        let mut b = buffer(2);
        b.index_page(0, vec![(v(1), Rid::new(0, 0))]);
        b.add(v(2), Rid::new(0, 1), 0); // tuple inserted after indexing
        b.index_page(1, vec![(v(9), Rid::new(1, 0))]);
        b.remove(&v(9), Rid::new(1, 0), 1); // tuple deleted after indexing
        let pid = *b.page_to_partition.get(&0).unwrap();
        let dropped = b.drop_partition(pid).unwrap();
        let mut pages = dropped.pages.clone();
        pages.sort_unstable();
        assert_eq!(
            pages,
            vec![(0, 2), (1, 0)],
            "restore counts follow live uncovered tuples, not the original snapshot"
        );
    }

    #[test]
    fn victim_order_incomplete_first_then_by_size_desc() {
        let mut b = buffer(2);
        // Partition 0: pages 0,1 (complete, 3 entries).
        b.index_page(0, vec![(v(1), Rid::new(0, 0)), (v(2), Rid::new(0, 1))]);
        b.index_page(1, vec![(v(3), Rid::new(1, 0))]);
        // Partition 1: pages 2,3 (complete, 5 entries).
        b.index_page(2, (0..3).map(|i| (v(10 + i), Rid::new(2, i as u16))));
        b.index_page(3, (0..2).map(|i| (v(20 + i), Rid::new(3, i as u16))));
        // Partition 2: page 4 (incomplete, 10 entries).
        b.index_page(4, (0..10).map(|i| (v(30 + i), Rid::new(4, i as u16))));
        let order = b.partitions_in_victim_order();
        assert_eq!(order.len(), 3);
        assert_eq!(
            order[0], 2,
            "incomplete partition first despite being largest"
        );
        assert_eq!(order[1], 1, "then complete partitions by descending n_p");
        assert_eq!(order[2], 0);
    }

    #[test]
    fn benefit_scales_with_pages_and_frequency() {
        let mut b = buffer(10);
        assert_eq!(b.benefit(), 0.0, "unused buffer has zero benefit");
        b.index_page(0, vec![(v(1), Rid::new(0, 0))]);
        b.index_page(1, vec![(v(2), Rid::new(1, 0))]);
        assert_eq!(b.benefit(), 0.0, "still zero: history unused");
        b.history_mut().record_use();
        let benefit_hot = b.benefit();
        assert!(
            (benefit_hot - 2.0).abs() < 1e-9,
            "2 pages * T=1: {benefit_hot}"
        );
        // Age the buffer: benefit decays.
        for _ in 0..10 {
            b.history_mut().tick();
        }
        assert!(b.benefit() < benefit_hot);
    }

    #[test]
    fn dropping_open_partition_reopens_cleanly() {
        let mut b = buffer(5);
        b.index_page(0, vec![(v(1), Rid::new(0, 0))]);
        let open = b.open_partition.unwrap();
        b.drop_partition(open).unwrap();
        assert_eq!(b.num_partitions(), 0);
        // New indexing starts a fresh partition.
        b.index_page(1, vec![(v(2), Rid::new(1, 0))]);
        assert_eq!(b.num_partitions(), 1);
        b.check_invariants();
    }
}
