//! # The Adaptive Index Buffer
//!
//! The primary contribution of *"Adaptive Index Buffer"* (Voigt, Jaekel,
//! Kissinger, Lehner — ICDE Workshops 2012): an in-memory scratch-pad index
//! that backs partial secondary indexes during workload shifts.
//!
//! A query that misses its partial index must scan the table; a page can be
//! skipped only when *every* tuple on it is indexed. The Index Buffer makes
//! pages skippable by indexing their remaining uncovered tuples on the fly:
//!
//! * [`counters::PageCounters`] — the `C[p]` array of unindexed tuples per
//!   page (§III).
//! * [`scan::indexing_scan`] — Algorithm 1: scan the buffer, skip
//!   `C[p] == 0` pages, index selected pages as you pass them.
//! * [`scan::indexing_scan_parallel`] — the same algorithm split into
//!   parallel read-only discovery over partition-aligned page chunks plus a
//!   sequential, ordered apply; bit-for-bit sequential-equivalent.
//! * [`index_buffer::IndexBuffer`] / [`partition::Partition`] — the
//!   partitioned scratch-pad itself (§IV, Fig. 5); displacement drops whole
//!   partitions and restores counters exactly.
//! * [`history::LruKHistory`] — per-buffer LRU-K access intervals
//!   (Table II).
//! * [`space::IndexBufferSpace`] — the byte-accurate memory budget (the
//!   paper's entry bound `L` compiles down to bytes, shared with the buffer
//!   pool via [`aib_storage::MemoryBudget`]), the benefit model
//!   `b_p = X_p / T_B`, and Algorithm 2's page selection with two-stage
//!   probabilistic victim selection expressed as a
//!   [`aib_storage::DisplacementPolicy`].
//! * [`maintenance::maintain`] — the 16 DML maintenance cases of Table I.
//!
//! ```
//! use aib_core::{BufferConfig, SpaceConfig, IndexBufferSpace, Predicate, indexing_scan};
//! # use aib_storage::{BufferPool, BufferPoolConfig, CostModel, DiskManager,
//! #                   HeapFile, Tuple, Value};
//! # let pool = BufferPool::new(DiskManager::new(CostModel::free()),
//! #                            BufferPoolConfig::lru(16));
//! # let heap = HeapFile::new(pool);
//! # for i in 0..100i64 {
//! #     heap.insert(&Tuple::new(vec![Value::Int(i)]).to_bytes()).unwrap();
//! # }
//! // One buffer over a table whose partial index covers nothing:
//! let counts: Vec<u32> = (0..heap.num_pages())
//!     .map(|p| heap.tuples_on_page(p).unwrap() as u32)
//!     .collect();
//! let mut space = IndexBufferSpace::new(SpaceConfig::default());
//! let col = space.register("A", BufferConfig::default(), counts);
//!
//! // A query that misses the partial index: Table II, then Algorithm 1.
//! space.on_query(Some(col), false);
//! let mut result = Vec::new();
//! let stats = indexing_scan(&heap, &mut space, col, 0, &|_| false,
//!                           &Predicate::Equals(Value::Int(42)), &mut result).unwrap();
//! assert_eq!(result.len(), 1);
//! assert!(stats.pages_indexed > 0);
//!
//! // The second identical query skips every page.
//! space.on_query(Some(col), false);
//! let mut result2 = Vec::new();
//! let stats2 = indexing_scan(&heap, &mut space, col, 0, &|_| false,
//!                            &Predicate::Equals(Value::Int(42)), &mut result2).unwrap();
//! assert_eq!(stats2.pages_read, 0);
//! assert_eq!(result2, result);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod counters;
pub mod history;
pub mod index_buffer;
#[cfg(feature = "invariant-checks")]
pub mod invariants;
pub mod maintenance;
pub mod partition;
pub mod scan;
pub mod sharded;
pub mod space;
pub mod sync;

pub use config::{BufferConfig, SpaceConfig};
pub use counters::{CounterError, PageCounters, SkipBitset, SkipRuns};
pub use history::LruKHistory;
pub use index_buffer::{BufferId, DroppedPartition, IndexBuffer};
#[cfg(feature = "invariant-checks")]
pub use invariants::{verify_buffer, verify_shards, verify_space, GroundTruth, InvariantReport};
pub use maintenance::{cover_tuple, maintain, uncover_tuple, MaintAction, TupleRef};
pub use partition::{page_range_chunks, Partition, PartitionId};
pub use scan::{
    apply_staged, apply_staged_checked, buffer_scan_rids, indexing_scan, indexing_scan_parallel,
    planned_scan_threads, prepare_scan, prepare_scan_from_snapshot, scan_chunk, sweep_plan,
    ChunkResult, CompiledPredicate, Predicate, ScanPlan, ScanPrep, ScanStats, StagedPage,
    CHUNKS_PER_THREAD, MIN_PAGES_PER_THREAD,
};
pub use sharded::{
    AdaptationBatch, AdaptationStats, BufferSummary, ShardWriteGuard, ShardedSpace, SnapshotCache,
    SpaceSnapshot, DEFAULT_ADAPTATION_QUEUE_DEPTH,
};
pub use space::{BenefitPolicy, BufferPending, Displacement, IndexBufferSpace, Selection};
