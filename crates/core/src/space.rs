//! The Index Buffer Space: all Index Buffers of the system, their share of
//! the byte-accurate [`MemoryBudget`], and the displacement machinery of
//! paper §IV.
//!
//! Responsibilities:
//!
//! * **Registry** — one [`IndexBuffer`] (plus its `C[p]` counters) per
//!   partial index, keyed by [`BufferId`].
//! * **Table II** — applying the LRU-K history operations on every query.
//! * **Algorithm 2** — [`IndexBufferSpace::select_pages_for_buffer`]:
//!   choosing the pages an indexing scan should buffer, displacing old
//!   partitions only while the new index information is more beneficial
//!   than what is discarded, and never exceeding the governor's byte
//!   headroom (the paper's entry bound `L` compiles down to bytes via
//!   [`SpaceConfig::budget_bytes`]).
//!
//! Victim selection is expressed as an
//! [`aib_storage::DisplacementPolicy`]: the
//! [`BenefitPolicy`] here plays the same role for partitions that LRU/Clock/
//! LRU-K play for buffer-pool frames, so both displacement pipelines share
//! one trait and one governor.
//!
//! ### Deviation from the paper's pseudocode
//!
//! Algorithm 2 as printed exits its outer loop *before* re-growing the page
//! set with the newly victimised partition's space (the until-condition
//! tests `b_I'` computed against the previous victim set). Read literally,
//! a full Index Buffer Space would never displace anything (with `n_F = 0`
//! the first candidate set is empty, so the loop exits immediately) —
//! contradicting the paper's own experiment 3, where buffers displace each
//! other freely. We therefore implement the *stated intent* (§IV: "indexes
//! precisely so many pages that the resulting new index information is more
//! beneficial than the old index information that the system must discard"):
//! grow the victim set one partition at a time, recompute the achievable
//! page set, and commit while `b_I > Σ b_p` over the victims.

// aib-lint: allow-file(no-index) — `slots` is only ever indexed by positions
// this module itself resolved via `slot_pos` (which verifies registration);
// remaining brackets index vectors built a few lines above their use. The
// runtime shadow model covers the semantic risk.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::sync::{AtomicU64, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aib_storage::{
    BudgetComponent, DisplacementPolicy, FrameId, MemoryBudget, MemoryUsage,
    DEFAULT_ENTRY_FOOTPRINT,
};

use crate::config::{BufferConfig, SpaceConfig};
use crate::counters::PageCounters;
use crate::index_buffer::{BufferId, IndexBuffer};
use crate::partition::PartitionId;

/// Stage 1 of §IV's victim selection as a [`DisplacementPolicy`].
///
/// The space feeds every eligible Index Buffer's benefit `b_B` via
/// [`record_weight`](DisplacementPolicy::record_weight) (in ascending id
/// order) and then asks [`displace`](DisplacementPolicy::displace) for a
/// victim: never-used buffers (`b_B = 0`) are picked first, uniformly among
/// themselves; otherwise a buffer is picked with probability proportional
/// to `1 / b_B`. The RNG is seeded so experiments stay reproducible.
pub struct BenefitPolicy {
    rng: StdRng,
    /// Candidate weights, iterated in ascending id order so the RNG
    /// consumption is deterministic for a given candidate set.
    weights: BTreeMap<FrameId, f64>,
}

impl BenefitPolicy {
    /// Creates a policy with a seeded RNG and no candidates.
    pub fn new(seed: u64) -> Self {
        BenefitPolicy {
            rng: StdRng::seed_from_u64(seed),
            weights: BTreeMap::new(),
        }
    }

    /// Forgets all candidate weights. The space re-feeds them before every
    /// pick because benefits change with every query.
    pub fn clear_weights(&mut self) {
        self.weights.clear();
    }
}

impl DisplacementPolicy for BenefitPolicy {
    fn record_access(&mut self, _id: FrameId) {
        // Recency is already folded into the weights (benefit embeds the
        // LRU-K use frequency), so accesses carry no extra signal here.
    }

    fn record_weight(&mut self, id: FrameId, weight: f64) {
        self.weights.insert(id, weight);
    }

    fn displace(&mut self, blocked: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        let eligible: Vec<(FrameId, f64)> = self
            .weights
            .iter()
            .map(|(&id, &b)| (id, b))
            .filter(|&(id, _)| !blocked(id))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Zero-benefit candidates are infinitely likely under 1/b weighting.
        let zeros: Vec<FrameId> = eligible
            .iter()
            .filter(|&&(_, b)| b <= f64::EPSILON)
            .map(|&(id, _)| id)
            .collect();
        let chosen = if !zeros.is_empty() {
            let pick = self.rng.gen_range(0..zeros.len());
            zeros.get(pick).copied()
        } else {
            let total: f64 = eligible.iter().map(|&(_, b)| 1.0 / b).sum();
            let mut roll = self.rng.gen_range(0.0..total);
            let mut chosen = eligible.last().map(|&(id, _)| id);
            for &(id, b) in &eligible {
                roll -= 1.0 / b;
                if roll <= 0.0 {
                    chosen = Some(id);
                    break;
                }
            }
            chosen
        };
        let chosen = chosen?;
        self.weights.remove(&chosen);
        Some(chosen)
    }

    fn remove(&mut self, id: FrameId) {
        self.weights.remove(&id);
    }

    fn name(&self) -> &'static str {
        "benefit"
    }
}

impl std::fmt::Debug for BenefitPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenefitPolicy")
            .field("candidates", &self.weights.len())
            .finish()
    }
}

/// A displacement performed during page selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Displacement {
    /// Buffer that lost a partition.
    pub buffer: BufferId,
    /// The dropped partition.
    pub partition: PartitionId,
    /// Entries freed by the drop.
    pub entries_freed: usize,
    /// Bytes returned to the governor by the drop.
    pub bytes_freed: usize,
    /// Pages that ceased to be skippable.
    pub pages_uncovered: usize,
    /// The partition's benefit `b_p` at displacement time.
    pub benefit: f64,
}

/// Result of [`IndexBufferSpace::select_pages_for_buffer`].
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Pages to index during the upcoming table scan (the paper's `I`),
    /// in ascending-counter order.
    pub pages: Vec<u32>,
    /// Entries the new index information will occupy (`n_I = Σ C[s]`).
    pub expected_entries: usize,
    /// Byte estimate for the new index information, at
    /// [`DEFAULT_ENTRY_FOOTPRINT`] per expected entry (exact for INTEGER
    /// key columns).
    pub expected_bytes: usize,
    /// Benefit `b_I` of the new index information.
    pub benefit: f64,
    /// Partitions dropped to make room.
    pub displaced: Vec<Displacement>,
}

/// Grows a page set from `candidates` (ascending `(page, C[p])` counter
/// order) within `available` budget bytes, up to `i_max` pages, returning
/// `(pages, expected_entries, expected_bytes)`. Expected entries are costed
/// at [`DEFAULT_ENTRY_FOOTPRINT`] — exact for the INTEGER columns of the
/// paper's experiments, an estimate otherwise (the post-scan sync reconciles
/// the difference). Shared by the locked selection
/// ([`IndexBufferSpace::select_pages_for_buffer`]) and the snapshot-planned
/// one (`ShardedSpace::plan_selection`) so the two cannot drift.
pub(crate) fn grow_selection(
    candidates: &[(u32, u32)],
    i_max: usize,
    available: usize,
) -> (usize, usize, usize) {
    let mut pages = 0;
    let mut entries = 0usize;
    let mut bytes = 0usize;
    for &(_, c) in candidates {
        let page_bytes = (c as usize).saturating_mul(DEFAULT_ENTRY_FOOTPRINT);
        if pages >= i_max || bytes.saturating_add(page_bytes) > available {
            break;
        }
        pages += 1;
        entries += c as usize;
        bytes += page_bytes;
    }
    (pages, entries, bytes)
}

/// Deferred Table II events for one buffer: the lock-free fast path
/// accumulates its history operations here instead of taking the shard's
/// write lock, and the next write-side entry drains them into the LRU-K
/// history (in deferral order) before reading any benefit.
///
/// The three counters encode one batch: `ticks` queries that only
/// lengthened the open interval, `uses` queries that closed it, and
/// `uses_at` — how many of the ticks preceded the *first* use — which lets
/// the drain replay `tick…use…tick` batches from a single client exactly.
/// Interleaved `use, tick, use` batches from *concurrent* clients collapse
/// to `tick…uses…tick`; the histories those produce differ only in how a
/// racy interleaving was serialised, which no sequential run exhibits.
#[derive(Debug, Default)]
pub struct BufferPending {
    ticks: AtomicU64,
    uses: AtomicU64,
    uses_at: AtomicU64,
}

impl BufferPending {
    /// Defers a batch of `ticks` + `uses` events, `uses_at` ticks before the
    /// first use. Safe to call from any thread, lock-free.
    pub fn defer(&self, ticks: u64, uses: u64, uses_at: u64) {
        let prev_ticks = self.ticks.fetch_add(ticks, Ordering::AcqRel);
        if uses > 0 && self.uses.fetch_add(uses, Ordering::AcqRel) == 0 {
            // First use of the shared batch: anchor it after the ticks
            // already deferred plus our local lead-in.
            self.uses_at
                .store(prev_ticks.saturating_add(uses_at), Ordering::Release);
        }
    }

    /// Takes the accumulated batch, leaving the counters empty. The
    /// `swap`s are what make concurrent [`defer`](Self::defer)s safe: an
    /// increment lands either in the batch this drain takes or in the
    /// empty cell for the next one, never in between. Model test:
    /// `deferred_drain_vs_concurrent_defer`.
    #[cfg(not(model_seeded_bug = "drain_load_store"))]
    fn drain(&self) -> (u64, u64, u64) {
        let ticks = self.ticks.swap(0, Ordering::AcqRel);
        let uses = self.uses.swap(0, Ordering::AcqRel);
        let uses_at = self.uses_at.swap(0, Ordering::AcqRel);
        (ticks, uses, uses_at)
    }

    /// Seeded bug: a load-then-store "drain" loses any defer that lands
    /// between the two — the lost-update race the atomic swap prevents.
    #[cfg(model_seeded_bug = "drain_load_store")]
    fn drain(&self) -> (u64, u64, u64) {
        let ticks = self.ticks.load(Ordering::Acquire);
        self.ticks.store(0, Ordering::Release);
        let uses = self.uses.load(Ordering::Acquire);
        self.uses.store(0, Ordering::Release);
        let uses_at = self.uses_at.load(Ordering::Acquire);
        self.uses_at.store(0, Ordering::Release);
        (ticks, uses, uses_at)
    }

    /// True when no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.ticks.load(Ordering::Acquire) == 0 && self.uses.load(Ordering::Acquire) == 0
    }
}

struct Slot {
    buffer: IndexBuffer,
    counters: PageCounters,
    /// Shared with published snapshots so fast-path queries can defer their
    /// Table II events without any shard lock.
    pending: Arc<BufferPending>,
}

/// The Index Buffer Space manager — one shard of it, when
/// [`SpaceConfig::shards`] `> 1` (the sharded wrapper lives in
/// [`crate::sharded::ShardedSpace`]; a standalone space is simply shard 0
/// of 1).
pub struct IndexBufferSpace {
    slots: Vec<Slot>,
    config: SpaceConfig,
    budget: Arc<MemoryBudget>,
    victim_policy: BenefitPolicy,
    /// Mutation stamp: bumped by every operation that changes buffer or
    /// counter state (never by pure history traffic), so a published
    /// snapshot can tell whether its bitsets are still current.
    epoch: u64,
    /// Per-shard resident footprints, shared across all shards of one
    /// space: the governor's `IndexSpace` charge is their sum.
    footprints: Arc<Vec<AtomicUsize>>,
    shard_index: usize,
}

impl IndexBufferSpace {
    /// Creates an empty space with its own private [`MemoryBudget`], capped
    /// at [`SpaceConfig::budget_bytes`] (unlimited when the config sets no
    /// bound).
    pub fn new(config: SpaceConfig) -> Self {
        let budget = match config.budget_bytes() {
            Some(bytes) => {
                MemoryBudget::unlimited().with_component_limit(BudgetComponent::IndexSpace, bytes)
            }
            None => MemoryBudget::unlimited(),
        };
        Self::with_budget(config, Arc::new(budget))
    }

    /// Creates an empty space drawing from a shared [`MemoryBudget`] — the
    /// engine passes the same budget to the buffer pool, so either side's
    /// growth shrinks the other's headroom. The caller is responsible for
    /// configuring the budget's limits (this constructor applies none).
    pub fn with_budget(config: SpaceConfig, budget: Arc<MemoryBudget>) -> Self {
        Self::for_shard(config, budget, Arc::new(vec![AtomicUsize::new(0)]), 0)
    }

    /// Creates shard `shard_index` of a sharded space: the victim-selection
    /// RNG is re-seeded per shard (`seed + shard_index`, so shard 0 of any
    /// sharding replays the unsharded stream) and the resident footprint is
    /// reported through the shared `footprints` slot for this shard.
    pub(crate) fn for_shard(
        config: SpaceConfig,
        budget: Arc<MemoryBudget>,
        footprints: Arc<Vec<AtomicUsize>>,
        shard_index: usize,
    ) -> Self {
        config.validate();
        assert!(shard_index < footprints.len(), "shard index within fleet");
        IndexBufferSpace {
            slots: Vec::new(),
            victim_policy: BenefitPolicy::new(config.seed.wrapping_add(shard_index as u64)),
            config,
            budget,
            epoch: 0,
            footprints,
            shard_index,
        }
    }

    /// The space configuration.
    pub fn config(&self) -> &SpaceConfig {
        &self.config
    }

    /// The governor this space draws from.
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Registers a new Index Buffer, initialising its page counters from the
    /// per-page uncovered-tuple counts of the creation scan ("the array of
    /// all counters is initialized during the creation of the partial
    /// index", §III).
    ///
    /// Taking raw counts (not a [`PageCounters`]) keeps counter construction
    /// inside the space — one of the few modules `aib-lint` permits to
    /// mutate counter state.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        config: BufferConfig,
        counts: Vec<u32>,
    ) -> BufferId {
        let id = self.slots.len();
        self.register_as(id, name, config, counts);
        id
    }

    /// Registers a buffer under a caller-assigned (globally allocated) id —
    /// the sharded wrapper hands out global ids and routes each to its
    /// shard, so local slot positions and buffer ids decouple.
    pub(crate) fn register_as(
        &mut self,
        id: BufferId,
        name: impl Into<String>,
        config: BufferConfig,
        counts: Vec<u32>,
    ) {
        self.epoch += 1;
        self.slots.push(Slot {
            buffer: IndexBuffer::new(id, name, config),
            counters: PageCounters::from_counts(counts),
            pending: Arc::new(BufferPending::default()),
        });
    }

    /// Number of buffers registered in this space (this shard).
    pub fn num_buffers(&self) -> usize {
        self.slots.len()
    }

    /// Ids of the buffers registered here, in registration order.
    pub fn buffer_ids(&self) -> impl Iterator<Item = BufferId> + '_ {
        self.slots.iter().map(|s| s.buffer.id())
    }

    /// Slot position of a registered buffer.
    ///
    /// # Panics
    /// If `id` was never registered in this space — engine routing handed a
    /// buffer to the wrong shard, which invariant checks must surface.
    fn slot_pos(&self, id: BufferId) -> usize {
        self.slots
            .iter()
            .position(|s| s.buffer.id() == id)
            // aib-lint: allow(no-panic) — misrouted ids are engine bugs.
            .expect("buffer id registered in this shard")
    }

    /// Borrows a buffer.
    pub fn buffer(&self, id: BufferId) -> &IndexBuffer {
        &self.slots[self.slot_pos(id)].buffer
    }

    /// Borrows a buffer's counters.
    pub fn counters(&self, id: BufferId) -> &PageCounters {
        &self.slots[self.slot_pos(id)].counters
    }

    /// The deferred-event cell shared with this buffer's snapshots.
    pub fn pending(&self, id: BufferId) -> &Arc<BufferPending> {
        &self.slots[self.slot_pos(id)].pending
    }

    /// Mutably borrows a buffer together with its counters for the duration
    /// of `f` — the only mutable seam the space exposes. Closure scoping
    /// (rather than returned `&mut`s) keeps counter mutation confined to
    /// space-mediated call sites and lets the space stamp every mutation:
    /// the epoch is bumped so published snapshots of this shard invalidate.
    /// Callers that add or drop entries should call
    /// [`sync_budget`](Self::sync_budget) when done.
    pub fn with_buffer_mut<R>(
        &mut self,
        id: BufferId,
        f: impl FnOnce(&mut IndexBuffer, &mut PageCounters) -> R,
    ) -> R {
        self.epoch += 1;
        let pos = self.slot_pos(id);
        let slot = &mut self.slots[pos];
        f(&mut slot.buffer, &mut slot.counters)
    }

    /// Replaces a buffer's counters wholesale from freshly recomputed
    /// per-page uncovered counts. Partial-index *redefinition* rebuilds its
    /// bookkeeping with a full scan exactly like index creation does (§III),
    /// so the rebuild flows through the space rather than through a raw
    /// `&mut PageCounters`. Bumps the epoch: the rebuilt skip bitset must
    /// never be served from a previously published snapshot.
    pub fn reset_counters(&mut self, id: BufferId, counts: Vec<u32>) {
        self.epoch += 1;
        let pos = self.slot_pos(id);
        self.slots[pos].counters = PageCounters::from_counts(counts);
        self.sync_budget();
    }

    /// Drops every partition of a buffer and zeroes its counters — the
    /// "partial index dropped" transition. The slot stays registered (buffer
    /// ids are stable handles) and an empty buffer costs nothing; its
    /// history only ticks. Bumps the epoch: a snapshot published before the
    /// clear would otherwise keep answering from the dropped bitset.
    pub fn clear_buffer(&mut self, id: BufferId) {
        self.epoch += 1;
        let pos = self.slot_pos(id);
        let slot = &mut self.slots[pos];
        let parts: Vec<_> = slot.buffer.partition_ids().collect();
        for p in parts {
            slot.buffer.drop_partition(p);
        }
        slot.counters = PageCounters::new();
        self.sync_budget();
    }

    /// The shard's mutation stamp (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drains every buffer's deferred fast-path events into its LRU-K
    /// history, in deferral order. Write-side entries call this before
    /// reading any benefit so deferred queries are never outrun by a later
    /// query's Table II application.
    pub fn drain_deferred(&mut self) {
        for slot in &mut self.slots {
            let (ticks, uses, uses_at) = slot.pending.drain();
            if ticks == 0 && uses == 0 {
                continue;
            }
            let history = slot.buffer.history_mut();
            if uses > 0 {
                let lead_in = uses_at.min(ticks);
                history.tick_n(lead_in);
                history.record_use_n(uses);
                history.tick_n(ticks - lead_in);
            } else {
                history.tick_n(ticks);
            }
        }
    }

    /// Total entries across all buffers.
    pub fn total_entries(&self) -> usize {
        self.slots.iter().map(|s| s.buffer.num_entries()).sum()
    }

    /// Reconciles the governor's [`BudgetComponent::IndexSpace`] charge with
    /// the true resident footprint. Mutations flow through `&mut IndexBuffer`
    /// borrows the space hands out, so it cannot intercept them one by one;
    /// instead the selection path and the scan/maintenance drivers reconcile
    /// here at their natural barriers. Under sharding each shard publishes
    /// its own footprint and charges the governor with the fleet's sum, so
    /// every shard's displacement pressure sees every other shard's bytes.
    pub fn sync_budget(&self) {
        self.footprints[self.shard_index].store(self.footprint(), Ordering::Release);
        let total: usize = self
            .footprints
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .sum();
        self.budget
            .set_component_usage(BudgetComponent::IndexSpace, total);
    }

    /// Byte headroom the governor grants this space right now (reconciles
    /// first; `usize::MAX` when unlimited).
    pub fn free_bytes(&self) -> usize {
        self.sync_budget();
        self.budget.headroom(BudgetComponent::IndexSpace)
    }

    /// Free *entries* under the byte budget, at [`DEFAULT_ENTRY_FOOTPRINT`]
    /// bytes per entry (`usize::MAX` when unlimited). Kept so
    /// paper-denominated experiments and tests can keep reasoning in the
    /// paper's unit `L`.
    pub fn free_entries(&self) -> usize {
        if self.budget.is_unlimited(BudgetComponent::IndexSpace) {
            usize::MAX
        } else {
            self.free_bytes() / DEFAULT_ENTRY_FOOTPRINT
        }
    }

    /// Applies Table II to every buffer's history.
    ///
    /// `queried` is the buffer of the queried column; `partial_hit` says
    /// whether the partial index answered the query. A `None` queried buffer
    /// models queries on columns without an Index Buffer (all histories just
    /// tick).
    pub fn on_query(&mut self, queried: Option<BufferId>, partial_hit: bool) {
        for slot in self.slots.iter_mut() {
            if Some(slot.buffer.id()) == queried && !partial_hit {
                slot.buffer.history_mut().record_use();
            } else {
                slot.buffer.history_mut().tick();
            }
        }
    }

    /// Algorithm 2: selects the pages to index for `target` during the
    /// upcoming table scan, displacing partitions as justified by the
    /// benefit model. On return, enough budget headroom is free for the
    /// selection and all counter restores for displaced pages have been
    /// applied.
    pub fn select_pages_for_buffer(&mut self, target: BufferId) -> Selection {
        let i_max = self.config.i_max as usize;
        let tpos = self.slot_pos(target);
        // Candidate pages in ascending counter order (cheapest completions
        // first, §IV).
        let candidates = self.slots[tpos].counters.pages_by_ascending_counter();
        if candidates.is_empty() {
            return Selection::default();
        }
        let target_freq = self.slots[tpos].buffer.use_frequency();

        let grow = |available: usize| grow_selection(&candidates, i_max, available);

        let free = self.free_bytes();
        let (mut best_pages, mut best_entries, mut best_bytes) = grow(free);
        let mut committed_victims: Vec<(BufferId, PartitionId, f64)> = Vec::new();

        if !self.budget.is_unlimited(BudgetComponent::IndexSpace) {
            let mut victims: Vec<(BufferId, PartitionId, f64)> = Vec::new();
            let mut victim_bytes = 0usize;
            let mut victim_benefit = 0.0f64;
            while best_pages < i_max && best_pages < candidates.len() {
                let Some((buf, part)) = self.pick_victim(target, &victims) else {
                    break;
                };
                let bpos = self.slot_pos(buf);
                let benefit = self.slots[bpos].buffer.partition_benefit(part);
                victim_benefit += benefit;
                // A just-picked victim is always present; degrade to zero
                // freed bytes (a conservative non-selection) if it is not.
                victim_bytes += self.slots[bpos]
                    .buffer
                    .partition(part)
                    .map_or(0, MemoryUsage::footprint);
                victims.push((buf, part, benefit));
                let (pages, entries, bytes) = grow(free.saturating_add(victim_bytes));
                let b_new = pages as f64 * target_freq;
                if b_new > victim_benefit && pages > best_pages {
                    best_pages = pages;
                    best_entries = entries;
                    best_bytes = bytes;
                    committed_victims = victims.clone();
                } else {
                    break;
                }
            }
        }

        // Perform the committed displacements, restoring counters.
        let mut displaced = Vec::with_capacity(committed_victims.len());
        for (buf, part, benefit) in committed_victims {
            let bpos = self.slot_pos(buf);
            // A committed victim was present when committed; skipping a
            // vanished one under-reports the displacement, never corrupts.
            let Some(dropped) = self.slots[bpos].buffer.drop_partition(part) else {
                continue;
            };
            for &(page, restore) in &dropped.pages {
                self.slots[bpos].counters.restore(page, restore);
            }
            displaced.push(Displacement {
                buffer: buf,
                partition: part,
                entries_freed: dropped.entries_freed,
                bytes_freed: dropped.bytes_freed,
                pages_uncovered: dropped.pages.len(),
                benefit,
            });
        }
        if !displaced.is_empty() {
            // Counters were restored: published snapshots of the displaced
            // bitsets are stale now.
            self.epoch += 1;
            self.budget.record_displacements(displaced.len() as u64);
        }
        self.sync_budget();

        debug_assert!(
            best_bytes <= self.free_bytes(),
            "selection must fit the freed budget headroom"
        );
        Selection {
            pages: candidates
                .iter()
                .take(best_pages)
                .map(|&(p, _)| p)
                .collect(),
            expected_entries: best_entries,
            expected_bytes: best_bytes,
            benefit: best_pages as f64 * target_freq,
            displaced,
        }
    }

    /// The two-stage victim selection of §IV.
    ///
    /// Stage 1 delegates to the [`BenefitPolicy`]: an Index Buffer other
    /// than the target, with probability proportional to `1 / b_B`
    /// (never-used buffers have zero benefit and are picked first, uniformly
    /// among themselves). Stage 2 picks that buffer's incomplete partition
    /// if any, then complete partitions in descending entry count.
    /// Partitions already in `excluded` are skipped.
    fn pick_victim(
        &mut self,
        target: BufferId,
        excluded: &[(BufferId, PartitionId, f64)],
    ) -> Option<(BufferId, PartitionId)> {
        // Stage 2 helper: first non-excluded partition in victim order.
        let next_of = |slots: &[Slot], pos: usize| -> Option<PartitionId> {
            let id = slots[pos].buffer.id();
            slots[pos]
                .buffer
                .partitions_in_victim_order()
                .into_iter()
                .find(|&p| !excluded.iter().any(|&(b, q, _)| (b, q) == (id, p)))
        };

        // Feed the policy fresh weights for every buffer with at least one
        // selectable partition (slots are in registration order, so ids
        // ascend and the RNG consumption stays deterministic).
        self.victim_policy.clear_weights();
        for (pos, slot) in self.slots.iter().enumerate() {
            if slot.buffer.id() != target && next_of(&self.slots, pos).is_some() {
                self.victim_policy
                    .record_weight(slot.buffer.id(), slot.buffer.benefit());
            }
        }
        let chosen = self.victim_policy.displace(&|_| false)?;
        // Keep the borrow checker happy: recompute stage 2 on the chosen id.
        // Weights were only recorded for buffers with a selectable partition,
        // so stage 2 finding none means "no victim" rather than a panic.
        let part = next_of(&self.slots, self.slot_pos(chosen))?;
        Some((chosen, part))
    }

    /// Consistency check across buffers (tests): per-buffer invariants plus
    /// budget reconciliation — after a sync, the governor's IndexSpace
    /// charge must equal the summed partition footprints exactly.
    pub fn check_invariants(&self) {
        for slot in &self.slots {
            slot.buffer.check_invariants();
            assert_eq!(
                slot.counters.check_bitset(),
                Ok(()),
                "{}: skip bitset mirrors C[p] == 0",
                slot.buffer.name()
            );
        }
        self.sync_budget();
        let fleet: usize = self
            .footprints
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .sum();
        assert_eq!(
            self.budget.used(BudgetComponent::IndexSpace),
            fleet,
            "governor charge reconciles with the fleet's resident footprint"
        );
    }
}

impl MemoryUsage for IndexBufferSpace {
    /// Bytes resident across all Index Buffers.
    fn footprint(&self) -> usize {
        self.slots.iter().map(|s| s.buffer.footprint()).sum()
    }
}

impl std::fmt::Debug for IndexBufferSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexBufferSpace")
            .field("buffers", &self.slots.len())
            .field("total_entries", &self.total_entries())
            .field("resident_bytes", &self.footprint())
            .field("budget_bytes", &self.config.budget_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aib_storage::{Rid, Value};

    /// Paper-denominated helper: `max` entries of budget, in bytes.
    fn cfg(max: Option<usize>, i_max: u32) -> SpaceConfig {
        SpaceConfig {
            max_bytes: max.map(|entries| entries * DEFAULT_ENTRY_FOOTPRINT),
            i_max,
            seed: 42,
            shards: 1,
        }
    }

    fn bcfg(p: u32) -> BufferConfig {
        BufferConfig {
            partition_pages: p,
            ..Default::default()
        }
    }

    /// Fills `n` pages of `buffer` with one entry each, as an indexing scan
    /// would (completing each page).
    fn fill_pages(space: &mut IndexBufferSpace, id: BufferId, pages: std::ops::Range<u32>) {
        for p in pages {
            space.with_buffer_mut(id, |buffer, counters| {
                buffer.index_page(p, vec![(Value::Int(p as i64), Rid::new(p, 0))]);
                counters.set_zero(p);
            });
        }
        space.sync_budget();
    }

    #[test]
    fn register_and_access() {
        let mut s = IndexBufferSpace::new(cfg(None, 10));
        let a = s.register("A", bcfg(10), vec![1; 100]);
        let b = s.register("B", bcfg(10), vec![2; 50]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.num_buffers(), 2);
        assert_eq!(s.buffer(a).name(), "A");
        assert_eq!(s.counters(b).total_unindexed(), 100);
        assert_eq!(s.total_entries(), 0);
        assert_eq!(s.free_entries(), usize::MAX);
        assert_eq!(s.free_bytes(), usize::MAX, "no cap -> unlimited headroom");
    }

    #[test]
    fn table2_on_query_semantics() {
        let mut s = IndexBufferSpace::new(cfg(None, 10));
        let a = s.register("A", bcfg(10), Vec::new());
        let b = s.register("B", bcfg(10), Vec::new());
        // Miss on A: A's history records a use, B only ticks.
        s.on_query(Some(a), false);
        assert_eq!(s.buffer(a).history().uses(), 1);
        assert_eq!(s.buffer(b).history().uses(), 0);
        // Hit on A: nobody records a use.
        s.on_query(Some(a), true);
        assert_eq!(s.buffer(a).history().uses(), 1);
        // Query on an unbuffered column.
        s.on_query(None, false);
        assert_eq!(s.buffer(a).history().uses(), 1);
        assert_eq!(s.buffer(b).history().uses(), 0);
    }

    #[test]
    fn selection_unlimited_space_takes_cheapest_up_to_imax() {
        let mut s = IndexBufferSpace::new(cfg(None, 3));
        let a = s.register("A", bcfg(10), vec![5, 1, 3, 2, 4]);
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(
            sel.pages,
            vec![1, 3, 2],
            "ascending counter order, capped at I^MAX=3"
        );
        assert_eq!(sel.expected_entries, 6);
        assert_eq!(sel.expected_bytes, 6 * DEFAULT_ENTRY_FOOTPRINT);
        assert!(sel.displaced.is_empty());
    }

    #[test]
    fn selection_empty_when_everything_indexed() {
        let mut s = IndexBufferSpace::new(cfg(None, 3));
        let a = s.register("A", bcfg(10), vec![0, 0]);
        let sel = s.select_pages_for_buffer(a);
        assert!(sel.pages.is_empty());
        assert_eq!(sel.expected_entries, 0);
    }

    #[test]
    fn bounded_space_limits_selection_without_victims() {
        let mut s = IndexBufferSpace::new(cfg(Some(5), 100));
        let a = s.register("A", bcfg(10), vec![2; 10]);
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(sel.pages.len(), 2, "5 entries of budget / 2 per page");
        assert_eq!(sel.expected_entries, 4);
        assert!(
            sel.displaced.is_empty(),
            "nothing to displace in an empty space"
        );
    }

    #[test]
    fn explicit_byte_budget_gates_selection() {
        let bytes = SpaceConfig {
            max_bytes: Some(5 * DEFAULT_ENTRY_FOOTPRINT),
            i_max: 100,
            seed: 42,
            shards: 1,
        };
        let mut s = IndexBufferSpace::new(bytes);
        let a = s.register("A", bcfg(10), vec![2; 10]);
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(sel.pages.len(), 2);
        assert_eq!(sel.expected_bytes, 4 * DEFAULT_ENTRY_FOOTPRINT);
    }

    #[test]
    fn epoch_stamps_every_counter_mutation() {
        let mut s = IndexBufferSpace::new(cfg(None, 10));
        let e0 = s.epoch();
        let a = s.register("A", bcfg(10), vec![1; 4]);
        assert!(s.epoch() > e0, "registration changes the buffer set");
        let e1 = s.epoch();
        s.with_buffer_mut(a, |_, _| {});
        assert!(s.epoch() > e1, "closure-scoped mutation is stamped");
        let e2 = s.epoch();
        // Satellite regression: bulk counter resets must invalidate
        // previously published skip bitsets.
        s.reset_counters(a, vec![0; 4]);
        assert!(s.epoch() > e2, "reset_counters bumps the epoch");
        let e3 = s.epoch();
        s.clear_buffer(a);
        assert!(s.epoch() > e3, "clear_buffer bumps the epoch");
        let e4 = s.epoch();
        // Pure history traffic is not a mutation.
        s.on_query(Some(a), false);
        assert_eq!(s.epoch(), e4, "Table II traffic leaves the epoch alone");
    }

    #[test]
    fn deferred_events_drain_in_order() {
        let mut deferred = IndexBufferSpace::new(cfg(None, 10));
        let a = deferred.register("A", bcfg(10), Vec::new());
        // tick, tick, use, tick deferred lock-free...
        deferred.pending(a).defer(2, 0, 0);
        deferred.pending(a).defer(0, 1, 0);
        deferred.pending(a).defer(1, 0, 0);
        assert!(!deferred.pending(a).is_empty());
        deferred.drain_deferred();
        assert!(deferred.pending(a).is_empty());
        // ...must equal the same sequence applied eagerly.
        let mut eager = IndexBufferSpace::new(cfg(None, 10));
        let b = eager.register("A", bcfg(10), Vec::new());
        eager.on_query(None, false);
        eager.on_query(None, false);
        eager.on_query(Some(b), false);
        eager.on_query(None, false);
        assert_eq!(deferred.buffer(a).history().uses(), 1);
        assert_eq!(
            deferred.buffer(a).history().intervals().collect::<Vec<_>>(),
            eager.buffer(b).history().intervals().collect::<Vec<_>>(),
        );
        assert_eq!(
            deferred.buffer(a).use_frequency(),
            eager.buffer(b).use_frequency()
        );
    }

    #[test]
    fn hot_buffer_displaces_cold_buffer() {
        let mut s = IndexBufferSpace::new(cfg(Some(10), 100));
        let cold = s.register("cold", bcfg(5), vec![1; 20]);
        let hot = s.register("hot", bcfg(5), vec![1; 20]);
        // Cold buffer fills the space (10 pages, 1 entry each) while used.
        s.on_query(Some(cold), false);
        fill_pages(&mut s, cold, 0..10);
        assert_eq!(s.free_entries(), 0);
        assert_eq!(s.free_bytes(), 0);
        // Cold goes quiet; hot is used every query.
        for _ in 0..50 {
            s.on_query(Some(hot), false);
        }
        let before_displacements = s.budget().displacements();
        let sel = s.select_pages_for_buffer(hot);
        assert!(
            !sel.displaced.is_empty(),
            "cold partitions must be displaced"
        );
        assert!(sel.displaced.iter().all(|d| d.buffer == cold));
        assert!(!sel.pages.is_empty());
        assert!(sel.expected_entries <= s.free_entries());
        // Every displacement reports its exact byte yield and the governor
        // counted each drop.
        for d in &sel.displaced {
            assert_eq!(d.bytes_freed, d.entries_freed * DEFAULT_ENTRY_FOOTPRINT);
        }
        assert_eq!(
            s.budget().displacements() - before_displacements,
            sel.displaced.len() as u64
        );
        // The incoming benefit must exceed what was discarded.
        let discarded: f64 = sel.displaced.iter().map(|d| d.benefit).sum();
        assert!(sel.benefit > discarded, "{} !> {discarded}", sel.benefit);
        // Displaced pages of the cold buffer are unindexed again.
        let restored: usize = sel.displaced.iter().map(|d| d.pages_uncovered).sum();
        assert_eq!(s.counters(cold).total_unindexed() as usize, 10 + restored);
        s.check_invariants();
    }

    #[test]
    fn beneficial_buffer_resists_displacement() {
        let mut s = IndexBufferSpace::new(cfg(Some(10), 100));
        let hot = s.register("hot", bcfg(5), vec![1; 20]);
        let newcomer = s.register("new", bcfg(5), vec![1; 20]);
        // Hot fills the space and keeps being used.
        s.on_query(Some(hot), false);
        fill_pages(&mut s, hot, 0..10);
        for _ in 0..20 {
            s.on_query(Some(hot), false);
        }
        // Newcomer is used once; its benefit-per-page equals hot's, so
        // displacing hot's 5-page partitions for equal gain is not "more
        // beneficial" and must be rejected.
        s.on_query(Some(newcomer), false);
        let sel = s.select_pages_for_buffer(newcomer);
        assert!(sel.displaced.is_empty(), "equal benefit must not displace");
        assert!(sel.pages.is_empty());
        s.check_invariants();
    }

    #[test]
    fn never_used_buffers_are_preferred_victims() {
        let mut s = IndexBufferSpace::new(cfg(Some(6), 100));
        let dead = s.register("dead", bcfg(3), vec![1; 10]);
        let cold = s.register("cold", bcfg(3), vec![1; 10]);
        let hot = s.register("hot", bcfg(3), vec![1; 10]);
        // Both fill space; cold was genuinely used once, dead never.
        s.on_query(Some(cold), false);
        fill_pages(&mut s, cold, 0..3);
        fill_pages(&mut s, dead, 0..3); // indexed without a recorded use
        for _ in 0..10 {
            s.on_query(Some(hot), false);
        }
        let sel = s.select_pages_for_buffer(hot);
        assert!(!sel.displaced.is_empty());
        assert_eq!(
            sel.displaced[0].buffer, dead,
            "zero-benefit (never used) buffer is the first victim"
        );
    }

    #[test]
    fn selection_is_deterministic_under_seed() {
        let run = || {
            let mut s = IndexBufferSpace::new(cfg(Some(8), 100));
            let a = s.register("a", bcfg(2), vec![1; 12]);
            let b = s.register("b", bcfg(2), vec![1; 12]);
            let c = s.register("c", bcfg(2), vec![1; 12]);
            s.on_query(Some(a), false);
            fill_pages(&mut s, a, 0..4);
            s.on_query(Some(b), false);
            fill_pages(&mut s, b, 0..4);
            for _ in 0..30 {
                s.on_query(Some(c), false);
            }
            let sel = s.select_pages_for_buffer(c);
            (sel.pages.clone(), sel.displaced.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn selection_respects_imax_exactly() {
        let mut s = IndexBufferSpace::new(cfg(None, 5));
        let a = s.register("a", bcfg(10), vec![1; 50]);
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(
            sel.pages.len(),
            5,
            "at most I^MAX pages per scan (paper §IV)"
        );
    }

    #[test]
    fn shared_budget_lets_pool_residency_shrink_the_space() {
        // One governor, both components: bytes parked in buffer-pool
        // frames reduce what the Index Buffer Space may select.
        let budget = Arc::new(MemoryBudget::with_total(6 * DEFAULT_ENTRY_FOOTPRINT));
        let mut s = IndexBufferSpace::with_budget(cfg(None, 100), Arc::clone(&budget));
        let a = s.register("a", bcfg(10), vec![1; 10]);
        s.on_query(Some(a), false);
        // The "pool" claims 4 entries' worth of the shared total.
        budget.charge(BudgetComponent::BufferPool, 4 * DEFAULT_ENTRY_FOOTPRINT);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(
            sel.pages.len(),
            2,
            "only the unclaimed remainder is selectable"
        );
        assert!(sel.displaced.is_empty(), "nothing of ours to displace");
        budget.release(BudgetComponent::BufferPool, 4 * DEFAULT_ENTRY_FOOTPRINT);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(sel.pages.len(), 6, "released frames restore headroom");
    }

    #[test]
    fn benefit_policy_prefers_zero_weight_and_forgets_victims() {
        let mut p = BenefitPolicy::new(7);
        p.record_weight(0, 2.0);
        p.record_weight(1, 0.0);
        p.record_weight(2, 5.0);
        assert_eq!(p.displace(&|_| false), Some(1), "zero-benefit goes first");
        let next = p.displace(&|id| id == 2).expect("0 is unblocked");
        assert_eq!(next, 0, "blocked ids are skipped");
        assert_eq!(p.displace(&|id| id == 2), None, "only blocked ids remain");
        p.remove(2);
        assert_eq!(p.displace(&|_| false), None, "removed ids are forgotten");
        assert_eq!(p.name(), "benefit");
    }
}
