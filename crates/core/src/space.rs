//! The Index Buffer Space: all Index Buffers of the system, a shared entry
//! budget, and the displacement machinery of paper §IV.
//!
//! Responsibilities:
//!
//! * **Registry** — one [`IndexBuffer`] (plus its `C[p]` counters) per
//!   partial index, keyed by [`BufferId`].
//! * **Table II** — applying the LRU-K history operations on every query.
//! * **Algorithm 2** — [`IndexBufferSpace::select_pages_for_buffer`]:
//!   choosing the pages an indexing scan should buffer, displacing old
//!   partitions only while the new index information is more beneficial
//!   than what is discarded, and never exceeding the space bound `L`.
//!
//! ### Deviation from the paper's pseudocode
//!
//! Algorithm 2 as printed exits its outer loop *before* re-growing the page
//! set with the newly victimised partition's space (the until-condition
//! tests `b_I'` computed against the previous victim set). Read literally,
//! a full Index Buffer Space would never displace anything (with `n_F = 0`
//! the first candidate set is empty, so the loop exits immediately) —
//! contradicting the paper's own experiment 3, where buffers displace each
//! other freely. We therefore implement the *stated intent* (§IV: "indexes
//! precisely so many pages that the resulting new index information is more
//! beneficial than the old index information that the system must discard"):
//! grow the victim set one partition at a time, recompute the achievable
//! page set, and commit while `b_I > Σ b_p` over the victims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{BufferConfig, SpaceConfig};
use crate::counters::PageCounters;
use crate::index_buffer::{BufferId, IndexBuffer};
use crate::partition::PartitionId;

/// A displacement performed during page selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Displacement {
    /// Buffer that lost a partition.
    pub buffer: BufferId,
    /// The dropped partition.
    pub partition: PartitionId,
    /// Entries freed by the drop.
    pub entries_freed: usize,
    /// Pages that ceased to be skippable.
    pub pages_uncovered: usize,
}

/// Result of [`IndexBufferSpace::select_pages_for_buffer`].
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Pages to index during the upcoming table scan (the paper's `I`),
    /// in ascending-counter order.
    pub pages: Vec<u32>,
    /// Entries the new index information will occupy (`n_I = Σ C[s]`).
    pub expected_entries: usize,
    /// Partitions dropped to make room.
    pub displaced: Vec<Displacement>,
}

struct Slot {
    buffer: IndexBuffer,
    counters: PageCounters,
}

/// The Index Buffer Space manager.
pub struct IndexBufferSpace {
    slots: Vec<Slot>,
    config: SpaceConfig,
    rng: StdRng,
}

impl IndexBufferSpace {
    /// Creates an empty space.
    pub fn new(config: SpaceConfig) -> Self {
        config.validate();
        IndexBufferSpace {
            slots: Vec::new(),
            config,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// The space configuration.
    pub fn config(&self) -> &SpaceConfig {
        &self.config
    }

    /// Registers a new Index Buffer with its initial page counters
    /// ("the array of all counters is initialized during the creation of
    /// the partial index", §III).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        config: BufferConfig,
        counters: PageCounters,
    ) -> BufferId {
        let id = self.slots.len();
        self.slots.push(Slot {
            buffer: IndexBuffer::new(id, name, config),
            counters,
        });
        id
    }

    /// Number of registered buffers.
    pub fn num_buffers(&self) -> usize {
        self.slots.len()
    }

    /// Borrows a buffer.
    pub fn buffer(&self, id: BufferId) -> &IndexBuffer {
        &self.slots[id].buffer
    }

    /// Mutably borrows a buffer.
    pub fn buffer_mut(&mut self, id: BufferId) -> &mut IndexBuffer {
        &mut self.slots[id].buffer
    }

    /// Borrows a buffer's counters.
    pub fn counters(&self, id: BufferId) -> &PageCounters {
        &self.slots[id].counters
    }

    /// Mutably borrows a buffer's counters.
    pub fn counters_mut(&mut self, id: BufferId) -> &mut PageCounters {
        &mut self.slots[id].counters
    }

    /// Mutably borrows a buffer together with its counters (the indexing
    /// scan needs both at once).
    pub fn buffer_and_counters_mut(
        &mut self,
        id: BufferId,
    ) -> (&mut IndexBuffer, &mut PageCounters) {
        let slot = &mut self.slots[id];
        (&mut slot.buffer, &mut slot.counters)
    }

    /// Total entries across all buffers.
    pub fn total_entries(&self) -> usize {
        self.slots.iter().map(|s| s.buffer.num_entries()).sum()
    }

    /// Free entries under the bound `L` (`usize::MAX` when unlimited).
    pub fn free_entries(&self) -> usize {
        match self.config.max_entries {
            None => usize::MAX,
            Some(max) => max.saturating_sub(self.total_entries()),
        }
    }

    /// Applies Table II to every buffer's history.
    ///
    /// `queried` is the buffer of the queried column; `partial_hit` says
    /// whether the partial index answered the query. A `None` queried buffer
    /// models queries on columns without an Index Buffer (all histories just
    /// tick).
    pub fn on_query(&mut self, queried: Option<BufferId>, partial_hit: bool) {
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if Some(id) == queried && !partial_hit {
                slot.buffer.history_mut().record_use();
            } else {
                slot.buffer.history_mut().tick();
            }
        }
    }

    /// Algorithm 2: selects the pages to index for `target` during the
    /// upcoming table scan, displacing partitions as justified by the
    /// benefit model. On return, enough space is free for the selection and
    /// all counter restores for displaced pages have been applied.
    pub fn select_pages_for_buffer(&mut self, target: BufferId) -> Selection {
        let i_max = self.config.i_max as usize;
        // Candidate pages in ascending counter order (cheapest completions
        // first, §IV).
        let candidates = self.slots[target].counters.pages_by_ascending_counter();
        if candidates.is_empty() {
            return Selection::default();
        }
        let target_freq = self.slots[target].buffer.use_frequency();

        // Grow the page set within `available` entries, up to I^MAX pages.
        let grow = |available: usize| -> (usize, usize) {
            let mut pages = 0;
            let mut entries = 0usize;
            for &(_, c) in &candidates {
                if pages >= i_max || entries + c as usize > available {
                    break;
                }
                pages += 1;
                entries += c as usize;
            }
            (pages, entries)
        };

        let free = self.free_entries();
        let (mut best_pages, mut best_entries) = grow(free);
        let mut committed_victims: Vec<(BufferId, PartitionId)> = Vec::new();

        if self.config.max_entries.is_some() {
            let mut victims: Vec<(BufferId, PartitionId)> = Vec::new();
            let mut victim_entries = 0usize;
            let mut victim_benefit = 0.0f64;
            while best_pages < i_max && best_pages < candidates.len() {
                let Some((buf, part)) = self.pick_victim(target, &victims) else {
                    break;
                };
                victim_benefit += self.slots[buf].buffer.partition_benefit(part);
                victim_entries += self.slots[buf]
                    .buffer
                    .partition(part)
                    .expect("picked partition exists")
                    .num_entries();
                victims.push((buf, part));
                let (pages, entries) = grow(free.saturating_add(victim_entries));
                let b_new = pages as f64 * target_freq;
                if b_new > victim_benefit && pages > best_pages {
                    best_pages = pages;
                    best_entries = entries;
                    committed_victims = victims.clone();
                } else {
                    break;
                }
            }
        }

        // Perform the committed displacements, restoring counters.
        let mut displaced = Vec::with_capacity(committed_victims.len());
        for (buf, part) in committed_victims {
            let dropped = self.slots[buf]
                .buffer
                .drop_partition(part)
                .expect("committed victim still present");
            for &(page, restore) in &dropped.pages {
                self.slots[buf].counters.restore(page, restore);
            }
            displaced.push(Displacement {
                buffer: buf,
                partition: part,
                entries_freed: dropped.entries_freed,
                pages_uncovered: dropped.pages.len(),
            });
        }

        debug_assert!(
            best_entries <= self.free_entries(),
            "selection must fit the freed space"
        );
        Selection {
            pages: candidates
                .iter()
                .take(best_pages)
                .map(|&(p, _)| p)
                .collect(),
            expected_entries: best_entries,
            displaced,
        }
    }

    /// The two-stage victim selection of §IV.
    ///
    /// Stage 1 picks an Index Buffer other than the target, with probability
    /// proportional to `1 / b_B` (never-used buffers have zero benefit and
    /// are picked first, uniformly among themselves). Stage 2 picks that
    /// buffer's incomplete partition if any, then complete partitions in
    /// descending entry count. Partitions already in `excluded` are skipped.
    fn pick_victim(
        &mut self,
        target: BufferId,
        excluded: &[(BufferId, PartitionId)],
    ) -> Option<(BufferId, PartitionId)> {
        // Stage 2 helper: first non-excluded partition in victim order.
        let next_of = |slots: &Vec<Slot>, id: BufferId| -> Option<PartitionId> {
            slots[id]
                .buffer
                .partitions_in_victim_order()
                .into_iter()
                .find(|&p| !excluded.contains(&(id, p)))
        };

        // Buffers with at least one selectable partition.
        let eligible: Vec<(BufferId, f64)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|&(id, _)| id != target)
            .filter(|&(id, _)| next_of(&self.slots, id).is_some())
            .map(|(id, slot)| (id, slot.buffer.benefit()))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Zero-benefit buffers are infinitely likely under 1/b weighting.
        let zeros: Vec<BufferId> = eligible
            .iter()
            .filter(|&&(_, b)| b <= f64::EPSILON)
            .map(|&(id, _)| id)
            .collect();
        let chosen = if !zeros.is_empty() {
            zeros[self.rng.gen_range(0..zeros.len())]
        } else {
            let total: f64 = eligible.iter().map(|&(_, b)| 1.0 / b).sum();
            let mut roll = self.rng.gen_range(0.0..total);
            let mut chosen = eligible.last().expect("non-empty").0;
            for &(id, b) in &eligible {
                roll -= 1.0 / b;
                if roll <= 0.0 {
                    chosen = id;
                    break;
                }
            }
            chosen
        };
        // Keep the borrow checker happy: recompute stage 2 on the chosen id.
        let part = next_of(&self.slots, chosen).expect("eligible buffer has a partition");
        Some((chosen, part))
    }

    /// Consistency check across buffers (tests).
    pub fn check_invariants(&self) {
        for slot in &self.slots {
            slot.buffer.check_invariants();
        }
        if let Some(max) = self.config.max_entries {
            // Maintenance inserts may transiently exceed the bound; scans
            // re-establish it. Still, the accounting itself must agree.
            let _ = max;
        }
    }
}

impl std::fmt::Debug for IndexBufferSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexBufferSpace")
            .field("buffers", &self.slots.len())
            .field("total_entries", &self.total_entries())
            .field("max_entries", &self.config.max_entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aib_storage::{Rid, Value};

    fn cfg(max: Option<usize>, i_max: u32) -> SpaceConfig {
        SpaceConfig {
            max_entries: max,
            i_max,
            seed: 42,
        }
    }

    fn bcfg(p: u32) -> BufferConfig {
        BufferConfig {
            partition_pages: p,
            ..Default::default()
        }
    }

    /// Fills `n` pages of `buffer` with one entry each, as an indexing scan
    /// would (completing each page).
    fn fill_pages(space: &mut IndexBufferSpace, id: BufferId, pages: std::ops::Range<u32>) {
        for p in pages {
            let (buffer, counters) = space.buffer_and_counters_mut(id);
            buffer.index_page(p, vec![(Value::Int(p as i64), Rid::new(p, 0))]);
            counters.set_zero(p);
        }
    }

    #[test]
    fn register_and_access() {
        let mut s = IndexBufferSpace::new(cfg(None, 10));
        let a = s.register("A", bcfg(10), PageCounters::from_counts(vec![1; 100]));
        let b = s.register("B", bcfg(10), PageCounters::from_counts(vec![2; 50]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.num_buffers(), 2);
        assert_eq!(s.buffer(a).name(), "A");
        assert_eq!(s.counters(b).total_unindexed(), 100);
        assert_eq!(s.total_entries(), 0);
        assert_eq!(s.free_entries(), usize::MAX);
    }

    #[test]
    fn table2_on_query_semantics() {
        let mut s = IndexBufferSpace::new(cfg(None, 10));
        let a = s.register("A", bcfg(10), PageCounters::new());
        let b = s.register("B", bcfg(10), PageCounters::new());
        // Miss on A: A's history records a use, B only ticks.
        s.on_query(Some(a), false);
        assert_eq!(s.buffer(a).history().uses(), 1);
        assert_eq!(s.buffer(b).history().uses(), 0);
        // Hit on A: nobody records a use.
        s.on_query(Some(a), true);
        assert_eq!(s.buffer(a).history().uses(), 1);
        // Query on an unbuffered column.
        s.on_query(None, false);
        assert_eq!(s.buffer(a).history().uses(), 1);
        assert_eq!(s.buffer(b).history().uses(), 0);
    }

    #[test]
    fn selection_unlimited_space_takes_cheapest_up_to_imax() {
        let mut s = IndexBufferSpace::new(cfg(None, 3));
        let a = s.register(
            "A",
            bcfg(10),
            PageCounters::from_counts(vec![5, 1, 3, 2, 4]),
        );
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(
            sel.pages,
            vec![1, 3, 2],
            "ascending counter order, capped at I^MAX=3"
        );
        assert_eq!(sel.expected_entries, 6);
        assert!(sel.displaced.is_empty());
    }

    #[test]
    fn selection_empty_when_everything_indexed() {
        let mut s = IndexBufferSpace::new(cfg(None, 3));
        let a = s.register("A", bcfg(10), PageCounters::from_counts(vec![0, 0]));
        let sel = s.select_pages_for_buffer(a);
        assert!(sel.pages.is_empty());
        assert_eq!(sel.expected_entries, 0);
    }

    #[test]
    fn bounded_space_limits_selection_without_victims() {
        let mut s = IndexBufferSpace::new(cfg(Some(5), 100));
        let a = s.register("A", bcfg(10), PageCounters::from_counts(vec![2; 10]));
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(sel.pages.len(), 2, "5 entries of budget / 2 per page");
        assert_eq!(sel.expected_entries, 4);
        assert!(
            sel.displaced.is_empty(),
            "nothing to displace in an empty space"
        );
    }

    #[test]
    fn hot_buffer_displaces_cold_buffer() {
        let mut s = IndexBufferSpace::new(cfg(Some(10), 100));
        let cold = s.register("cold", bcfg(5), PageCounters::from_counts(vec![1; 20]));
        let hot = s.register("hot", bcfg(5), PageCounters::from_counts(vec![1; 20]));
        // Cold buffer fills the space (10 pages, 1 entry each) while used.
        s.on_query(Some(cold), false);
        fill_pages(&mut s, cold, 0..10);
        assert_eq!(s.free_entries(), 0);
        // Cold goes quiet; hot is used every query.
        for _ in 0..50 {
            s.on_query(Some(hot), false);
        }
        let sel = s.select_pages_for_buffer(hot);
        assert!(
            !sel.displaced.is_empty(),
            "cold partitions must be displaced"
        );
        assert!(sel.displaced.iter().all(|d| d.buffer == cold));
        assert!(!sel.pages.is_empty());
        assert!(sel.expected_entries <= s.free_entries());
        // Displaced pages of the cold buffer are unindexed again.
        let restored: usize = sel.displaced.iter().map(|d| d.pages_uncovered).sum();
        assert_eq!(s.counters(cold).total_unindexed() as usize, 10 + restored);
        s.check_invariants();
    }

    #[test]
    fn beneficial_buffer_resists_displacement() {
        let mut s = IndexBufferSpace::new(cfg(Some(10), 100));
        let hot = s.register("hot", bcfg(5), PageCounters::from_counts(vec![1; 20]));
        let newcomer = s.register("new", bcfg(5), PageCounters::from_counts(vec![1; 20]));
        // Hot fills the space and keeps being used.
        s.on_query(Some(hot), false);
        fill_pages(&mut s, hot, 0..10);
        for _ in 0..20 {
            s.on_query(Some(hot), false);
        }
        // Newcomer is used once; its benefit-per-page equals hot's, so
        // displacing hot's 5-page partitions for equal gain is not "more
        // beneficial" and must be rejected.
        s.on_query(Some(newcomer), false);
        let sel = s.select_pages_for_buffer(newcomer);
        assert!(sel.displaced.is_empty(), "equal benefit must not displace");
        assert!(sel.pages.is_empty());
        s.check_invariants();
    }

    #[test]
    fn never_used_buffers_are_preferred_victims() {
        let mut s = IndexBufferSpace::new(cfg(Some(6), 100));
        let dead = s.register("dead", bcfg(3), PageCounters::from_counts(vec![1; 10]));
        let cold = s.register("cold", bcfg(3), PageCounters::from_counts(vec![1; 10]));
        let hot = s.register("hot", bcfg(3), PageCounters::from_counts(vec![1; 10]));
        // Both fill space; cold was genuinely used once, dead never.
        s.on_query(Some(cold), false);
        fill_pages(&mut s, cold, 0..3);
        fill_pages(&mut s, dead, 0..3); // indexed without a recorded use
        for _ in 0..10 {
            s.on_query(Some(hot), false);
        }
        let sel = s.select_pages_for_buffer(hot);
        assert!(!sel.displaced.is_empty());
        assert_eq!(
            sel.displaced[0].buffer, dead,
            "zero-benefit (never used) buffer is the first victim"
        );
    }

    #[test]
    fn selection_is_deterministic_under_seed() {
        let run = || {
            let mut s = IndexBufferSpace::new(cfg(Some(8), 100));
            let a = s.register("a", bcfg(2), PageCounters::from_counts(vec![1; 12]));
            let b = s.register("b", bcfg(2), PageCounters::from_counts(vec![1; 12]));
            let c = s.register("c", bcfg(2), PageCounters::from_counts(vec![1; 12]));
            s.on_query(Some(a), false);
            fill_pages(&mut s, a, 0..4);
            s.on_query(Some(b), false);
            fill_pages(&mut s, b, 0..4);
            for _ in 0..30 {
                s.on_query(Some(c), false);
            }
            let sel = s.select_pages_for_buffer(c);
            (sel.pages.clone(), sel.displaced.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn selection_respects_imax_exactly() {
        let mut s = IndexBufferSpace::new(cfg(None, 5));
        let a = s.register("a", bcfg(10), PageCounters::from_counts(vec![1; 50]));
        s.on_query(Some(a), false);
        let sel = s.select_pages_for_buffer(a);
        assert_eq!(
            sel.pages.len(),
            5,
            "at most I^MAX pages per scan (paper §IV)"
        );
    }
}
