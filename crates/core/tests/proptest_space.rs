//! Property tests of Algorithm 2 (`SelectPagesForBuffer`) and the
//! displacement machinery: whatever the buffer population and counter
//! state, a selection must respect the byte budget, `I^MAX`, the
//! ascending-counter order, exact counter restoration for displaced pages,
//! and exact byte restoration to the memory governor.

use aib_core::{BufferConfig, IndexBufferSpace, SpaceConfig};
use aib_index::IndexBackend;
use aib_storage::{BudgetComponent, MemoryUsage, Rid, Value, DEFAULT_ENTRY_FOOTPRINT};
use proptest::prelude::*;

/// A randomly pre-populated space: `n_buffers` buffers, each with its own
/// counters and some pages already indexed; distinct query histories.
#[derive(Debug, Clone)]
struct SpaceSetup {
    max_entries: usize,
    i_max: u32,
    partition_pages: u32,
    /// Per buffer: (initial per-page counters, pages to pre-index, uses).
    buffers: Vec<(Vec<u32>, Vec<u8>, u8)>,
    target: usize,
}

fn setup_strategy() -> impl Strategy<Value = SpaceSetup> {
    let buffer = (
        prop::collection::vec(1u32..6, 10..30),
        prop::collection::vec(any::<u8>(), 0..15),
        0u8..30,
    );
    (
        20usize..200,
        1u32..20,
        1u32..8,
        prop::collection::vec(buffer, 2..4),
    )
        .prop_flat_map(|(max_entries, i_max, partition_pages, buffers)| {
            let n = buffers.len();
            (
                Just(max_entries),
                Just(i_max),
                Just(partition_pages),
                Just(buffers),
                0..n,
            )
        })
        .prop_map(
            |(max_entries, i_max, partition_pages, buffers, target)| SpaceSetup {
                max_entries,
                i_max,
                partition_pages,
                buffers,
                target,
            },
        )
}

fn build(setup: &SpaceSetup) -> IndexBufferSpace {
    let mut space = IndexBufferSpace::new(SpaceConfig {
        max_bytes: Some(setup.max_entries * DEFAULT_ENTRY_FOOTPRINT),
        i_max: setup.i_max,
        seed: 7,
        shards: 1,
    });
    for (i, (counts, pre_index, uses)) in setup.buffers.iter().enumerate() {
        let cfg = BufferConfig {
            partition_pages: setup.partition_pages,
            history_k: 4,
            backend: IndexBackend::BTree,
        };
        let id = space.register(format!("b{i}"), cfg, counts.clone());
        // Pre-index some pages (as earlier scans would have), while budget
        // remains.
        for &raw in pre_index {
            let page = u32::from(raw) % counts.len() as u32;
            let headroom = setup.max_entries.saturating_sub(space.total_entries());
            space.with_buffer_mut(id, |buffer, counters| {
                let n = counters.get(page);
                if buffer.is_buffered(page) || n == 0 || n as usize > headroom {
                    return;
                }
                counters.set_zero(page);
                buffer.index_page(
                    page,
                    (0..n).map(|s| {
                        (
                            Value::Int(i64::from(page) * 100 + i64::from(s)),
                            Rid::new(page, s as u16),
                        )
                    }),
                );
            });
        }
        for _ in 0..*uses {
            space.on_query(Some(id), false);
        }
    }
    space
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn selection_invariants(setup in setup_strategy()) {
        let mut space = build(&setup);
        let target = setup.target;
        // The target is "used" right before selecting, as in Algorithm 1.
        space.on_query(Some(target), false);

        let unindexed_before: Vec<u64> = (0..space.num_buffers())
            .map(|b| space.counters(b).total_unindexed())
            .collect();
        let skippable_before = space.counters(target).fully_indexed_pages();
        let footprint_before = space.footprint();

        let selection = space.select_pages_for_buffer(target);

        // (1) Page budget: at most I^MAX pages.
        prop_assert!(selection.pages.len() <= setup.i_max as usize);
        // (2) Only pages needing work are selected, each at most once.
        let mut seen = std::collections::HashSet::new();
        for &p in &selection.pages {
            prop_assert!(space.counters(target).get(p) > 0, "page {p} needs indexing");
            prop_assert!(seen.insert(p), "page {p} selected twice");
        }
        // (3) Entry accounting: expected entries equals the counter sum.
        let sum: usize =
            selection.pages.iter().map(|&p| space.counters(target).get(p) as usize).sum();
        prop_assert_eq!(selection.expected_entries, sum);
        // (4) Space bound: the new entries fit the freed budget.
        prop_assert!(selection.expected_entries <= space.free_entries(),
            "selection must fit: {} > {}", selection.expected_entries, space.free_entries());
        // (5) Ascending-counter order.
        let counters: Vec<u32> =
            selection.pages.iter().map(|&p| space.counters(target).get(p)).collect();
        prop_assert!(counters.windows(2).all(|w| w[0] <= w[1]), "ascending C order: {counters:?}");
        // (6) Displacement restores counters exactly: each displaced
        // buffer's unindexed total grows by what its dropped pages held;
        // the target's own total is untouched by displacement.
        let mut freed_by_buffer = vec![0u64; space.num_buffers()];
        for d in &selection.displaced {
            prop_assert_ne!(d.buffer, target, "own partitions are never victims");
            freed_by_buffer[d.buffer] += d.entries_freed as u64;
        }
        for b in 0..space.num_buffers() {
            prop_assert_eq!(
                space.counters(b).total_unindexed(),
                unindexed_before[b] + freed_by_buffer[b],
                "buffer {} counter restoration", b
            );
        }
        // (7) The target never loses skippable pages by selecting.
        prop_assert!(space.counters(target).fully_indexed_pages() >= skippable_before.min(
            space.counters(target).fully_indexed_pages()));
        // (8) Byte accounting: the selection's byte estimate matches its
        // entry estimate, and fits the governor's headroom.
        prop_assert_eq!(selection.expected_bytes,
            selection.expected_entries * DEFAULT_ENTRY_FOOTPRINT);
        prop_assert!(selection.expected_bytes <= space.free_bytes());
        // (9) Displacement only fires when the incoming benefit strictly
        // exceeds the benefit of everything discarded.
        if !selection.displaced.is_empty() {
            let discarded: f64 = selection.displaced.iter().map(|d| d.benefit).sum();
            prop_assert!(selection.benefit > discarded,
                "benefit {} must exceed discarded {}", selection.benefit, discarded);
        }
        // (10) Dropping a partition returns exactly the bytes its footprint
        // reported: the resident footprint shrank by the sum of bytes_freed.
        let bytes_freed: usize = selection.displaced.iter().map(|d| d.bytes_freed).sum();
        prop_assert_eq!(space.footprint(), footprint_before - bytes_freed);
        for d in &selection.displaced {
            prop_assert_eq!(d.bytes_freed, d.entries_freed * DEFAULT_ENTRY_FOOTPRINT,
                "INTEGER entries cost exactly DEFAULT_ENTRY_FOOTPRINT each");
        }
        space.check_invariants();

        // Simulate the scan actually indexing the selection; the bound must
        // then hold exactly.
        let pages = selection.pages.clone();
        space.with_buffer_mut(target, |buffer, counters| {
            for &p in &pages {
                let n = counters.set_zero(p);
                buffer.index_page(
                    p,
                    (0..n).map(|s| (Value::Int(i64::from(p) * 1000 + i64::from(s)), Rid::new(p, s as u16))),
                );
            }
        });
        prop_assert!(space.total_entries() <= setup.max_entries,
            "bound holds after indexing: {} > {}", space.total_entries(), setup.max_entries);
        // (11) The governor never exceeds its byte budget: after indexing
        // the selection, resident bytes stay under the configured cap.
        space.sync_budget();
        let budget = space.budget();
        let cap = budget.component_limit(BudgetComponent::IndexSpace)
            .expect("bounded setup carries a byte cap");
        prop_assert!(budget.used(BudgetComponent::IndexSpace) <= cap,
            "governor bound: {} > {}", budget.used(BudgetComponent::IndexSpace), cap);
        prop_assert_eq!(cap, setup.max_entries * DEFAULT_ENTRY_FOOTPRINT,
            "max_entries shim maps to bytes exactly");
        space.check_invariants();
    }
}
