//! The control-loop-delay simulation behind paper Fig. 1.
//!
//! "Queried is a single column of integer values. The simulated tuning
//! mechanism indexes a queried value if it has shown enough potential query
//! cost reduction during the last twenty queries. For simplicity ..., a
//! value is assumed to reach the threshold if it was queried at least six
//! times in the monitoring window. Entries are removed from the index based
//! on a least recently used strategy. The simulation runs for 500 queries.
//! Between query 200 and 300 the focus of the queries shifts from values
//! less 15 to values greater 15."
//!
//! The paper does not state the within-range query distribution. A uniform
//! draw over a 15-value range has an expected 20/15 ≈ 1.3 occurrences per
//! value in a 20-query window and can practically never reach 6, so the
//! stated parameters cannot reproduce the figure verbatim. We keep the
//! 6-occurrence threshold and LRU eviction but default to a 60-query
//! monitoring window (expected 4 occurrences per value; the Poisson tail
//! crosses 6 regularly), which yields exactly the published dynamics: the
//! indexed band builds up, lags the queried band through the shift, and the
//! hit rate collapses meanwhile. The deviation is recorded in
//! EXPERIMENTS.md; [`ControlLoopConfig::theta`] additionally allows a
//! Zipf-skewed draw for sensitivity checks.

use aib_engine::{OnlineTuner, TunerConfig};
use aib_storage::Value;
use aib_workload::KeyDist;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the Fig. 1 simulation.
#[derive(Debug, Clone)]
pub struct ControlLoopConfig {
    /// Total queries (paper: 500).
    pub queries: usize,
    /// Queried range before the shift (paper: values less than 15).
    pub low_range: (i64, i64),
    /// Queried range after the shift (paper: values greater than 15).
    pub high_range: (i64, i64),
    /// Shift window in query numbers (paper: 200..300).
    pub shift: (usize, usize),
    /// Zipf skew of the within-range draw (see module docs).
    pub theta: f64,
    /// The tuning mechanism (paper: window 20, threshold 6, LRU).
    pub tuner: TunerConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ControlLoopConfig {
    fn default() -> Self {
        ControlLoopConfig {
            queries: 500,
            low_range: (1, 15),
            high_range: (16, 30),
            shift: (200, 300),
            theta: 0.0,
            tuner: TunerConfig {
                window: 60,
                threshold: 6,
                capacity: 15,
            },
            seed: 0xF161,
        }
    }
}

/// One query's outcome in the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlLoopRecord {
    /// Query number (0-based).
    pub seq: usize,
    /// Queried value.
    pub value: i64,
    /// Queried value range at this point of the schedule.
    pub queried_range: (i64, i64),
    /// Whether the partial index covered the value (a hit).
    pub hit: bool,
    /// Indexed value range after the query (`None` while empty).
    pub indexed_range: Option<(i64, i64)>,
    /// Number of indexed values after the query.
    pub indexed_count: usize,
}

/// The full simulation result.
#[derive(Debug, Clone)]
pub struct ControlLoopResult {
    /// Per-query records.
    pub records: Vec<ControlLoopRecord>,
}

impl ControlLoopResult {
    /// Hit rate over queries `[from, to)`.
    pub fn hit_rate(&self, from: usize, to: usize) -> f64 {
        let slice = self
            .records
            .get(from.min(self.records.len())..to.min(self.records.len()))
            .unwrap_or_default();
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().filter(|r| r.hit).count() as f64 / slice.len() as f64
    }

    /// First query from which the hit rate over the next `window` queries
    /// stays at or above `level` and the upper end of the indexed range has
    /// reached the post-shift range — a measure of when the tuner has
    /// re-adapted. (A few stale pre-shift values may linger under LRU, just
    /// as in the paper's figure, so full containment is not required.)
    pub fn adapted_after(
        &self,
        high_range: (i64, i64),
        level: f64,
        window: usize,
    ) -> Option<usize> {
        (0..self.records.len().saturating_sub(window)).find(|&q| {
            self.records
                .get(q)
                .is_some_and(|r| r.indexed_range.is_some_and(|(_, hi)| hi >= high_range.0))
                && self.hit_rate(q, q + window) >= level
        })
    }
}

/// The queried range at query `seq`: the bounds interpolate linearly across
/// the shift window.
pub fn queried_range(config: &ControlLoopConfig, seq: usize) -> (i64, i64) {
    let (s0, s1) = config.shift;
    let f = if seq < s0 {
        0.0
    } else if seq >= s1 {
        1.0
    } else {
        (seq - s0) as f64 / (s1 - s0) as f64
    };
    let lerp = |a: i64, b: i64| a + ((b - a) as f64 * f).round() as i64;
    (
        lerp(config.low_range.0, config.high_range.0),
        lerp(config.low_range.1, config.high_range.1),
    )
}

/// Runs the Fig. 1 simulation.
///
/// Each schedule phase — pre-shift, shift window, post-shift — draws from
/// its own RNG stream, seeded deterministically from `(seed, phase)`. An
/// extra or removed draw in one phase therefore cannot perturb the values a
/// later phase sees, so assertions anchored to a phase (tail tolerances,
/// adaptation points) are insensitive to upstream changes in draw count.
pub fn run(config: &ControlLoopConfig) -> ControlLoopResult {
    let phase_rng =
        |phase: u64| StdRng::seed_from_u64(config.seed ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut phase = 0u64;
    let mut rng = phase_rng(phase);
    let mut tuner = OnlineTuner::new(config.tuner);
    let mut records = Vec::with_capacity(config.queries);
    for seq in 0..config.queries {
        let seq_phase = if seq < config.shift.0 {
            0
        } else if seq < config.shift.1 {
            1
        } else {
            2
        };
        if seq_phase != phase {
            phase = seq_phase;
            rng = phase_rng(phase);
        }
        let range = queried_range(config, seq);
        let width = (range.1 - range.0 + 1).max(1) as u64;
        let offset = KeyDist::Zipf {
            n: width,
            theta: config.theta,
        }
        .sample(&mut rng)
            - 1;
        let value = range.0 + offset;
        let v = Value::Int(value);
        let hit = tuner.is_covered(&v);
        tuner.observe(&v);
        let indexed: Vec<i64> = tuner.covered_values().filter_map(Value::as_int).collect();
        let indexed_range = match (indexed.iter().min(), indexed.iter().max()) {
            (Some(&lo), Some(&hi)) => Some((lo, hi)),
            _ => None,
        };
        records.push(ControlLoopRecord {
            seq,
            value,
            queried_range: range,
            hit,
            indexed_range,
            indexed_count: indexed.len(),
        });
    }
    ControlLoopResult { records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_interpolates_across_shift() {
        let c = ControlLoopConfig::default();
        assert_eq!(queried_range(&c, 0), (1, 15));
        assert_eq!(queried_range(&c, 199), (1, 15));
        assert_eq!(queried_range(&c, 300), (16, 30));
        assert_eq!(queried_range(&c, 499), (16, 30));
        let mid = queried_range(&c, 250);
        assert!(mid.0 > 1 && mid.0 < 16);
        assert!(mid.1 > 15 && mid.1 < 31);
    }

    #[test]
    fn tuner_adapts_before_shift_and_readapts_after() {
        let result = run(&ControlLoopConfig::default());
        assert_eq!(result.records.len(), 500);
        // Warm phase: by query 150 the hot values are indexed and the hit
        // rate is substantial.
        let warm = result.hit_rate(100, 200);
        assert!(warm > 0.4, "pre-shift hit rate {warm}");
        // The shift collapses the hit rate (Fig. 1's double burden).
        let during = result.hit_rate(250, 320);
        assert!(
            during < warm - 0.15,
            "hit rate must drop during adaptation: warm {warm}, during {during}"
        );
        // Recovery by the end.
        let late = result.hit_rate(430, 500);
        assert!(late > 0.4, "post-adaptation hit rate {late}");
    }

    #[test]
    fn indexed_range_lags_queried_range() {
        let c = ControlLoopConfig::default();
        let result = run(&c);
        // At the end of the shift (query 300) the queried range is fully
        // high, but the index still contains low values: the control loop
        // delay.
        let r = &result.records[305];
        let (lo, _) = r.indexed_range.expect("index is populated");
        assert!(
            lo < c.high_range.0,
            "stale low values remain indexed right after the shift (lo={lo})"
        );
        // Eventually the index catches up: a re-adaptation point after the
        // shift began, i.e. a positive control-loop delay.
        let adapted = result
            .adapted_after(c.high_range, 0.7, 50)
            .expect("tuner must eventually adapt");
        assert!(
            adapted > c.shift.0,
            "adaptation completes only after the shift began: {adapted}"
        );
        // By the end, the indexed band has moved into the high range (a few
        // stale transition values may remain under LRU).
        let last = result.records.last().unwrap();
        let (_, hi) = last.indexed_range.unwrap();
        assert!(hi >= c.high_range.0);
        let inside = result.records[480..].iter().all(|r| {
            r.indexed_range
                .is_some_and(|(lo, _)| lo > c.low_range.1 - 5)
        });
        assert!(inside, "most stale low values evicted by the end");
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(&ControlLoopConfig::default());
        let b = run(&ControlLoopConfig::default());
        assert_eq!(a.records, b.records);
    }
}
