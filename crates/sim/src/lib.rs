//! Stand-alone simulations for the paper's motivating figures.
//!
//! * [`control_loop`] — Fig. 1: the control-loop delay of adaptive partial
//!   indexing (an online tuner takes ~hundreds of queries to follow a
//!   workload shift, collapsing the hit rate meanwhile).
//! * [`clustering`] — Fig. 3: the share of fully indexed pages as the
//!   correlation between physical and logical order decays — the reason
//!   partial indexes alone almost never allow page skipping.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod clustering;
pub mod control_loop;

pub use clustering::{
    paper_scenarios, share_near_correlation, sweep, ClusteringPoint, ClusteringScenario,
};
pub use control_loop::{
    queried_range, run as run_control_loop, ControlLoopConfig, ControlLoopRecord, ControlLoopResult,
};
