//! The fully-indexed-pages simulation behind paper Fig. 3.
//!
//! "We have simulated different correlations between logical order and
//! physical order. The simulation started with a logically ordered set of
//! tuples (correlation equals 1) and gradually swapped randomly picked
//! tuples to decrease the correlation. In each step, we counted the number
//! of fully indexed pages. ... All scenarios are based on 100,000 tuples."
//!
//! A page is *fully indexed* iff every tuple on it is covered by the
//! partial index; only such pages can be skipped during a table scan
//! (paper §II). The paper's headline: with ≥10 tuples per page and
//! correlation ≤0.8, fewer than 5 % of pages remain fully indexed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Fig. 3 scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringScenario {
    /// Number of tuples (paper: 100,000).
    pub tuples: usize,
    /// Tuples per page.
    pub per_page: usize,
    /// Fraction of tuples covered by the partial index.
    pub coverage: f64,
}

impl ClusteringScenario {
    /// Human-readable label for harness output.
    pub fn label(&self) -> String {
        format!(
            "{} tuples/page, {:.0}% covered",
            self.per_page,
            self.coverage * 100.0
        )
    }
}

/// The six scenarios we plot (the paper does not list its exact six; these
/// bracket its described regime — see DESIGN.md §5).
pub fn paper_scenarios() -> Vec<ClusteringScenario> {
    let mut v = Vec::new();
    for &coverage in &[0.1, 0.3] {
        for &per_page in &[5, 10, 20] {
            v.push(ClusteringScenario {
                tuples: 100_000,
                per_page,
                coverage,
            });
        }
    }
    v
}

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringPoint {
    /// Spearman correlation between physical position and logical order.
    pub correlation: f64,
    /// Fraction of pages whose tuples are all covered.
    pub fully_indexed_share: f64,
    /// Cumulative swaps performed.
    pub swaps: u64,
}

/// The simulation state: tuple `t` has logical key `t`; `values[pos]` is the
/// key stored at physical position `pos`. Coverage is by smallest keys
/// (which keys are covered is irrelevant to the statistics; only the count
/// matters under random swapping).
struct Sim {
    values: Vec<u32>,
    covered_below: u32,
    per_page: usize,
}

impl Sim {
    fn new(s: &ClusteringScenario) -> Self {
        Sim {
            values: (0..s.tuples as u32).collect(),
            covered_below: (s.tuples as f64 * s.coverage).round() as u32,
            per_page: s.per_page,
        }
    }

    fn swap_random(&mut self, rng: &mut impl Rng) {
        let n = self.values.len();
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        self.values.swap(a, b);
    }

    /// Share of pages where every tuple is covered by the partial index.
    fn fully_indexed_share(&self) -> f64 {
        let pages = self.values.chunks(self.per_page);
        let total = pages.len();
        let full = self
            .values
            .chunks(self.per_page)
            .filter(|page| page.iter().all(|&v| v < self.covered_below))
            .count();
        full as f64 / total as f64
    }

    /// Spearman rank correlation between physical position and key. Keys are
    /// a permutation of `0..n`, so ranks equal keys and Spearman reduces to
    /// Pearson over `(position, key)`.
    fn correlation(&self) -> f64 {
        let n = self.values.len() as f64;
        let mean = (n - 1.0) / 2.0;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (pos, &v) in self.values.iter().enumerate() {
            let dp = pos as f64 - mean;
            let dv = v as f64 - mean;
            cov += dp * dv;
            var += dp * dp;
        }
        // Both marginals are uniform over 0..n, so var_p == var_v.
        cov / var
    }
}

/// Sweeps one scenario from correlation 1 towards 0, recording `points`
/// measurements. Swaps accumulate geometrically so the correlation axis is
/// well covered at both ends.
pub fn sweep(scenario: &ClusteringScenario, points: usize, seed: u64) -> Vec<ClusteringPoint> {
    assert!(points >= 2, "a sweep needs at least the two endpoints");
    let mut sim = Sim::new(scenario);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(points);
    out.push(ClusteringPoint {
        correlation: sim.correlation(),
        fully_indexed_share: sim.fully_indexed_share(),
        swaps: 0,
    });
    // Total swaps ≈ 2n drives correlation to ~0. Geometric schedule.
    let total: u64 = 2 * scenario.tuples as u64;
    let mut done: u64 = 0;
    for i in 1..points {
        let target = ((total as f64) * ((i as f64 / (points - 1) as f64).powi(3))).round() as u64;
        while done < target.max(i as u64) {
            sim.swap_random(&mut rng);
            done += 1;
        }
        out.push(ClusteringPoint {
            correlation: sim.correlation(),
            fully_indexed_share: sim.fully_indexed_share(),
            swaps: done,
        });
    }
    out
}

/// Convenience: the share at (approximately) a target correlation, by linear
/// scan for the nearest measured point.
pub fn share_near_correlation(points: &[ClusteringPoint], target: f64) -> Option<ClusteringPoint> {
    points
        .iter()
        .min_by(|a, b| {
            (a.correlation - target)
                .abs()
                .total_cmp(&(b.correlation - target).abs())
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(per_page: usize, coverage: f64) -> ClusteringScenario {
        ClusteringScenario {
            tuples: 10_000,
            per_page,
            coverage,
        }
    }

    #[test]
    fn perfect_clustering_share_equals_coverage() {
        // Paper: "For perfectly clustered data, the fraction of fully
        // indexed pages corresponds to the number of tuples covered."
        let s = small(10, 0.1);
        let points = sweep(&s, 2, 1);
        let first = points[0];
        assert!((first.correlation - 1.0).abs() < 1e-9);
        assert!(
            (first.fully_indexed_share - 0.1).abs() < 0.01,
            "share at corr=1 is ~coverage: {}",
            first.fully_indexed_share
        );
    }

    #[test]
    fn share_drops_quickly_with_decorrelation() {
        // Paper: "for typical page sizes of 10 or more tuples and a
        // correlation of 0.8 or less, less than 5% of the pages remain
        // fully indexed."
        let s = small(10, 0.1);
        let points = sweep(&s, 40, 2);
        let p = share_near_correlation(&points, 0.8).unwrap();
        assert!(
            (p.correlation - 0.8).abs() < 0.1,
            "measured near 0.8: {}",
            p.correlation
        );
        assert!(
            p.fully_indexed_share < 0.05,
            "paper's <5% claim at corr 0.8: {}",
            p.fully_indexed_share
        );
    }

    #[test]
    fn larger_pages_mean_fewer_fully_indexed_pages() {
        let seed = 3;
        let share_at_half = |per_page| {
            let points = sweep(&small(per_page, 0.3), 40, seed);
            share_near_correlation(&points, 0.5)
                .unwrap()
                .fully_indexed_share
        };
        let s2 = share_at_half(2);
        let s20 = share_at_half(20);
        assert!(
            s2 > s20,
            "more tuples per page -> lower full-coverage probability ({s2} vs {s20})"
        );
    }

    #[test]
    fn correlation_decays_towards_zero() {
        let points = sweep(&small(10, 0.1), 30, 4);
        let last = points.last().unwrap();
        assert!(
            last.correlation < 0.1,
            "end of sweep near zero: {}",
            last.correlation
        );
        // Correlation is monotonically non-increasing in expectation; allow
        // small noise but require overall decay.
        assert!(points[0].correlation > points[points.len() / 2].correlation);
    }

    #[test]
    fn six_paper_scenarios() {
        let scenarios = paper_scenarios();
        assert_eq!(scenarios.len(), 6);
        assert!(scenarios.iter().all(|s| s.tuples == 100_000));
        assert_eq!(scenarios[0].label(), "5 tuples/page, 10% covered");
    }

    #[test]
    fn sweep_is_deterministic() {
        let s = small(10, 0.1);
        assert_eq!(sweep(&s, 10, 7), sweep(&s, 10, 7));
    }
}
