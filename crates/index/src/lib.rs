//! Index substrate for the Adaptive Index Buffer reproduction.
//!
//! Provides the structures the paper assumes as given:
//!
//! * [`btree::BPlusTree`] — a from-scratch B+-tree (the "B\*-Tree" the
//!   paper builds on), with range scans and structural invariant checking.
//! * [`secondary`] — the [`secondary::SecondaryIndex`] multi-map abstraction
//!   with B+-tree and hash backends (paper §III offers both).
//! * [`coverage`] / [`partial`] — partial secondary indexes over value
//!   coverage predicates (paper §II), including adaptation operations with
//!   simulated I/O cost (paper §I's "index adaptation is not for free").

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod cost;
pub mod coverage;
pub mod key;
pub mod paged;
pub mod partial;
pub mod secondary;

pub use btree::BPlusTree;
pub use cost::AdaptationCost;
pub use coverage::Coverage;
pub use key::EntryKey;
pub use paged::{PagedBTree, PagedIndex, PagedKey};
pub use partial::PartialIndex;
pub use secondary::{BTreeIndex, HashIndex, IndexBackend, SecondaryIndex};
