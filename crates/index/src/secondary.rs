//! The secondary-index abstraction shared by partial indexes and Index
//! Buffer partitions.
//!
//! Paper §III: "The Index Buffer builds on a normal B\*-Tree. Main
//! memory-optimized index structures such as the CSB+-Tree or a hash table
//! can be used too. Which particular index structure is used is not
//! essential for the general idea." This trait is that seam: the B+-tree
//! backend supports range scans; the hash backend trades them for O(1)
//! point lookups.

use aib_storage::{entry_footprint, MemoryUsage, Rid, Value};

use crate::btree::BPlusTree;
use crate::key::EntryKey;
use std::collections::HashMap;

/// A multi-map from column values to record ids.
///
/// Every backend reports a byte-accurate [`MemoryUsage::footprint`] so the
/// memory governor can charge resident entries against the shared budget:
/// memory-resident backends account [`entry_footprint`] bytes per entry;
/// disk-resident backends (the paged B+-tree) report zero here because
/// their pages are already charged to the buffer-pool component while
/// cached.
/// Backends must be `Send + Sync`: the engine shares tables (and therefore
/// their partial indexes) across client threads behind a catalog `RwLock`,
/// and concurrent read queries probe indexes through `&self`.
pub trait SecondaryIndex: MemoryUsage + Send + Sync {
    /// Adds an entry. Returns `false` if it was already present.
    fn add(&mut self, value: Value, rid: Rid) -> bool;
    /// Removes an entry. Returns `false` if it was not present.
    fn remove(&mut self, value: &Value, rid: Rid) -> bool;
    /// True if the exact entry exists.
    fn contains(&self, value: &Value, rid: Rid) -> bool;
    /// All rids recorded for `value`, in rid order.
    fn lookup(&self, value: &Value) -> Vec<Rid>;
    /// Rids for all values in `[lo, hi]`, in (value, rid) order.
    /// Returns `None` if the backend cannot scan ranges.
    fn lookup_range(&self, lo: &Value, hi: &Value) -> Option<Vec<Rid>>;
    /// Number of entries.
    fn len(&self) -> usize;
    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Removes all entries.
    fn clear(&mut self);
    /// Visits every entry in backend order.
    fn for_each(&self, f: &mut dyn FnMut(&Value, Rid));
    /// Backend name for diagnostics.
    fn backend_name(&self) -> &'static str;
}

/// B+-tree-backed secondary index (the paper's default).
#[derive(Debug, Default)]
pub struct BTreeIndex {
    tree: BPlusTree<EntryKey, ()>,
    bytes: usize,
}

impl BTreeIndex {
    /// An empty B+-tree index with the default order.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty B+-tree index with the given node order (fanout knob for the
    /// CSB-style cache ablation).
    pub fn with_order(order: usize) -> Self {
        BTreeIndex {
            tree: BPlusTree::with_order(order),
            bytes: 0,
        }
    }
}

impl MemoryUsage for BTreeIndex {
    fn footprint(&self) -> usize {
        self.bytes
    }
}

impl SecondaryIndex for BTreeIndex {
    fn add(&mut self, value: Value, rid: Rid) -> bool {
        let bytes = entry_footprint(&value);
        let inserted = self.tree.insert(EntryKey::new(value, rid), ()).is_none();
        if inserted {
            self.bytes += bytes;
        }
        inserted
    }

    fn remove(&mut self, value: &Value, rid: Rid) -> bool {
        let removed = self
            .tree
            .remove(&EntryKey::new(value.clone(), rid))
            .is_some();
        if removed {
            self.bytes -= entry_footprint(value);
        }
        removed
    }

    fn contains(&self, value: &Value, rid: Rid) -> bool {
        self.tree.contains_key(&EntryKey::new(value.clone(), rid))
    }

    fn lookup(&self, value: &Value) -> Vec<Rid> {
        let lo = EntryKey::min_for(value.clone());
        let hi = EntryKey::max_for(value.clone());
        self.tree.range(&lo, &hi).map(|(k, _)| k.rid).collect()
    }

    fn lookup_range(&self, lo: &Value, hi: &Value) -> Option<Vec<Rid>> {
        let lo = EntryKey::min_for(lo.clone());
        let hi = EntryKey::max_for(hi.clone());
        Some(self.tree.range(&lo, &hi).map(|(k, _)| k.rid).collect())
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn clear(&mut self) {
        self.tree.clear();
        self.bytes = 0;
    }

    fn for_each(&self, f: &mut dyn FnMut(&Value, Rid)) {
        for (k, ()) in self.tree.iter() {
            f(&k.value, k.rid);
        }
    }

    fn backend_name(&self) -> &'static str {
        "btree"
    }
}

/// Hash-backed secondary index: O(1) point lookups, no range scans.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<Rid>>,
    len: usize,
    bytes: usize,
}

impl HashIndex {
    /// An empty hash index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoryUsage for HashIndex {
    fn footprint(&self) -> usize {
        self.bytes
    }
}

impl SecondaryIndex for HashIndex {
    fn add(&mut self, value: Value, rid: Rid) -> bool {
        let bytes = entry_footprint(&value);
        let rids = self.map.entry(value).or_default();
        match rids.binary_search(&rid) {
            Ok(_) => false,
            Err(i) => {
                rids.insert(i, rid);
                self.len += 1;
                self.bytes += bytes;
                true
            }
        }
    }

    fn remove(&mut self, value: &Value, rid: Rid) -> bool {
        let Some(rids) = self.map.get_mut(value) else {
            return false;
        };
        match rids.binary_search(&rid) {
            Ok(i) => {
                rids.remove(i);
                if rids.is_empty() {
                    self.map.remove(value);
                }
                self.len -= 1;
                self.bytes -= entry_footprint(value);
                true
            }
            Err(_) => false,
        }
    }

    fn contains(&self, value: &Value, rid: Rid) -> bool {
        self.map
            .get(value)
            .is_some_and(|rids| rids.binary_search(&rid).is_ok())
    }

    fn lookup(&self, value: &Value) -> Vec<Rid> {
        self.map.get(value).cloned().unwrap_or_default()
    }

    fn lookup_range(&self, _lo: &Value, _hi: &Value) -> Option<Vec<Rid>> {
        None
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
        self.bytes = 0;
    }

    fn for_each(&self, f: &mut dyn FnMut(&Value, Rid)) {
        for (v, rids) in &self.map {
            for &rid in rids {
                f(v, rid);
            }
        }
    }

    fn backend_name(&self) -> &'static str {
        "hash"
    }
}

/// Which backend to construct, where a choice is exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexBackend {
    /// B+-tree (paper default; supports range scans).
    #[default]
    BTree,
    /// Hash table (paper §III alternative; point lookups only).
    Hash,
}

impl IndexBackend {
    /// Instantiates an empty index of this backend.
    pub fn build(self) -> Box<dyn SecondaryIndex> {
        match self {
            IndexBackend::BTree => Box::new(BTreeIndex::new()),
            IndexBackend::Hash => Box::new(HashIndex::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<Box<dyn SecondaryIndex>> {
        vec![Box::new(BTreeIndex::new()), Box::new(HashIndex::new())]
    }

    #[test]
    fn add_lookup_remove_all_backends() {
        for mut ix in backends() {
            let v = Value::Int(5);
            assert!(ix.add(v.clone(), Rid::new(1, 1)));
            assert!(ix.add(v.clone(), Rid::new(1, 2)));
            assert!(ix.add(v.clone(), Rid::new(0, 9)));
            assert!(!ix.add(v.clone(), Rid::new(1, 1)), "duplicate rejected");
            assert_eq!(ix.len(), 3, "{}", ix.backend_name());
            assert_eq!(
                ix.lookup(&v),
                vec![Rid::new(0, 9), Rid::new(1, 1), Rid::new(1, 2)],
                "rid order ({})",
                ix.backend_name()
            );
            assert!(ix.contains(&v, Rid::new(1, 2)));
            assert!(!ix.contains(&v, Rid::new(9, 9)));
            assert!(ix.remove(&v, Rid::new(1, 1)));
            assert!(!ix.remove(&v, Rid::new(1, 1)));
            assert_eq!(ix.len(), 2);
            assert_eq!(ix.lookup(&Value::Int(6)), vec![]);
        }
    }

    #[test]
    fn duplicate_values_isolated_per_value() {
        for mut ix in backends() {
            ix.add(Value::Int(1), Rid::new(0, 0));
            ix.add(Value::Int(2), Rid::new(0, 1));
            assert_eq!(ix.lookup(&Value::Int(1)).len(), 1);
            assert_eq!(ix.lookup(&Value::Int(2)).len(), 1);
        }
    }

    #[test]
    fn range_lookup_btree_only() {
        let mut bt = BTreeIndex::new();
        for i in 0..10 {
            bt.add(Value::Int(i), Rid::new(i as u32, 0));
        }
        let rids = bt.lookup_range(&Value::Int(3), &Value::Int(6)).unwrap();
        assert_eq!(rids, (3..=6).map(|i| Rid::new(i, 0)).collect::<Vec<_>>());

        let hash = HashIndex::new();
        assert!(hash.lookup_range(&Value::Int(0), &Value::Int(9)).is_none());
    }

    #[test]
    fn clear_and_for_each() {
        for mut ix in backends() {
            for i in 0..20 {
                ix.add(Value::Int(i % 5), Rid::new(i as u32, 0));
            }
            let mut n = 0;
            ix.for_each(&mut |_, _| n += 1);
            assert_eq!(n, 20);
            ix.clear();
            assert!(ix.is_empty());
            let mut n = 0;
            ix.for_each(&mut |_, _| n += 1);
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn footprint_tracks_entry_bytes_exactly() {
        for mut ix in backends() {
            assert_eq!(ix.footprint(), 0);
            ix.add(Value::Int(7), Rid::new(0, 0));
            ix.add(Value::Int(7), Rid::new(0, 1));
            ix.add(Value::from("ORD"), Rid::new(1, 0));
            assert!(!ix.add(Value::Int(7), Rid::new(0, 0)), "duplicate free");
            let int_bytes = entry_footprint(&Value::Int(7));
            let str_bytes = entry_footprint(&Value::from("ORD"));
            assert_eq!(
                ix.footprint(),
                2 * int_bytes + str_bytes,
                "{}",
                ix.backend_name()
            );
            ix.remove(&Value::Int(7), Rid::new(0, 1));
            assert_eq!(ix.footprint(), int_bytes + str_bytes);
            ix.clear();
            assert_eq!(ix.footprint(), 0);
        }
    }

    #[test]
    fn backend_enum_builds() {
        assert_eq!(IndexBackend::BTree.build().backend_name(), "btree");
        assert_eq!(IndexBackend::Hash.build().backend_name(), "hash");
        assert_eq!(IndexBackend::default(), IndexBackend::BTree);
    }
}
