//! Coverage predicates: which column *values* a partial index covers.
//!
//! Paper §II: "Partial indexes cover only a subset of the values of a
//! column." Two shapes matter for the reproduction:
//!
//! * [`Coverage::IntRange`] — the evaluation setup ("the top 10 % of the
//!   value range are indexed, i.e., values from 1 to 5,000").
//! * [`Coverage::Set`] — the Fig. 1 online tuner, which indexes individual
//!   values once they cross the monitoring threshold and evicts them LRU.

use std::collections::BTreeSet;

use aib_storage::Value;

/// A predicate over column values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coverage {
    /// Covers nothing (an empty partial index definition).
    None,
    /// Covers everything (a conventional full index).
    All,
    /// Covers integers in `lo..=hi`.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Covers an explicit set of values (the adaptive tuner's shape).
    Set(BTreeSet<Value>),
}

impl Coverage {
    /// An empty mutable set coverage.
    pub fn empty_set() -> Self {
        Coverage::Set(BTreeSet::new())
    }

    /// Whether `value` is covered.
    pub fn covers(&self, value: &Value) -> bool {
        match self {
            Coverage::None => false,
            Coverage::All => true,
            Coverage::IntRange { lo, hi } => value.as_int().is_some_and(|v| *lo <= v && v <= *hi),
            Coverage::Set(set) => set.contains(value),
        }
    }

    /// Adds `value` to a [`Coverage::Set`]. Returns `true` if coverage grew.
    ///
    /// # Panics
    /// On non-`Set` coverage — range coverage is redefined wholesale via
    /// [`Coverage::IntRange`], not value by value.
    pub fn add_value(&mut self, value: Value) -> bool {
        match self {
            Coverage::Set(set) => set.insert(value),
            // aib-lint: allow(no-panic) — documented API contract (# Panics):
            other => panic!("add_value on non-set coverage {other:?}"),
        }
    }

    /// Removes `value` from a [`Coverage::Set`]. Returns `true` if coverage
    /// shrank.
    ///
    /// # Panics
    /// On non-`Set` coverage.
    pub fn remove_value(&mut self, value: &Value) -> bool {
        match self {
            Coverage::Set(set) => set.remove(value),
            // aib-lint: allow(no-panic) — documented API contract (# Panics):
            other => panic!("remove_value on non-set coverage {other:?}"),
        }
    }

    /// Number of covered values, when enumerable.
    pub fn covered_count(&self) -> Option<usize> {
        match self {
            Coverage::None => Some(0),
            Coverage::All => None,
            Coverage::IntRange { lo, hi } => {
                Some(usize::try_from((hi - lo + 1).max(0)).unwrap_or(usize::MAX))
            }
            Coverage::Set(set) => Some(set.len()),
        }
    }

    /// Fraction of `domain` values covered, for integer domains `1..=domain`.
    /// Used by workload setup sanity checks and Fig. 3 scenarios.
    pub fn selectivity(&self, domain: i64) -> f64 {
        match self {
            Coverage::None => 0.0,
            Coverage::All => 1.0,
            Coverage::IntRange { lo, hi } => {
                let lo = (*lo).max(1);
                let hi = (*hi).min(domain);
                if hi < lo {
                    0.0
                } else {
                    (hi - lo + 1) as f64 / domain as f64
                }
            }
            Coverage::Set(set) => {
                let n = set
                    .iter()
                    .filter(|v| v.as_int().is_some_and(|i| 1 <= i && i <= domain))
                    .count();
                n as f64 / domain as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_all() {
        assert!(!Coverage::None.covers(&Value::Int(1)));
        assert!(Coverage::All.covers(&Value::Int(1)));
        assert!(Coverage::All.covers(&Value::from("x")));
        assert_eq!(Coverage::None.covered_count(), Some(0));
        assert_eq!(Coverage::All.covered_count(), None);
    }

    #[test]
    fn int_range_bounds_inclusive() {
        let c = Coverage::IntRange { lo: 1, hi: 5000 };
        assert!(c.covers(&Value::Int(1)));
        assert!(c.covers(&Value::Int(5000)));
        assert!(!c.covers(&Value::Int(0)));
        assert!(!c.covers(&Value::Int(5001)));
        assert!(
            !c.covers(&Value::from("5")),
            "non-int never covered by range"
        );
        assert_eq!(c.covered_count(), Some(5000));
    }

    #[test]
    fn paper_selectivity_is_ten_percent() {
        let c = Coverage::IntRange { lo: 1, hi: 5000 };
        let s = c.selectivity(50_000);
        assert!(
            (s - 0.1).abs() < 1e-12,
            "paper: top 10% of the value range, got {s}"
        );
    }

    #[test]
    fn set_mutation() {
        let mut c = Coverage::empty_set();
        assert!(!c.covers(&Value::Int(7)));
        assert!(c.add_value(Value::Int(7)));
        assert!(!c.add_value(Value::Int(7)));
        assert!(c.covers(&Value::Int(7)));
        assert!(c.remove_value(&Value::Int(7)));
        assert!(!c.remove_value(&Value::Int(7)));
        assert!(!c.covers(&Value::Int(7)));
    }

    #[test]
    #[should_panic(expected = "non-set coverage")]
    fn add_value_on_range_panics() {
        Coverage::IntRange { lo: 0, hi: 1 }.add_value(Value::Int(5));
    }

    #[test]
    fn selectivity_clamps_to_domain() {
        let c = Coverage::IntRange { lo: -100, hi: 200 };
        assert!((c.selectivity(100) - 1.0).abs() < 1e-12);
        let c = Coverage::IntRange { lo: 90, hi: 200 };
        assert!((c.selectivity(100) - 0.11).abs() < 1e-12);
        let c = Coverage::IntRange { lo: 300, hi: 400 };
        assert_eq!(c.selectivity(100), 0.0);
    }

    #[test]
    fn set_selectivity_counts_in_domain_ints() {
        let mut c = Coverage::empty_set();
        c.add_value(Value::Int(5));
        c.add_value(Value::Int(500));
        c.add_value(Value::from("x"));
        assert!((c.selectivity(100) - 0.01).abs() < 1e-12);
    }
}
