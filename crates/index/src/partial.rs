//! Partial secondary indexes (paper §II).
//!
//! A partial index holds `(value, rid)` entries for tuples whose value its
//! [`Coverage`] admits. The paper's flight example: the airport column is
//! indexed only for U.S. airports, so `ORD` hits the index while `FRA`
//! forces a table scan.
//!
//! Besides the usual `Add` / `Remove` / `Update` used in Table I
//! maintenance, the index supports *adaptation*: redefining its coverage
//! (the job of the online tuner) with every touched entry charged to an
//! [`AdaptationCost`] sink — this is the expensive control loop the Index
//! Buffer is built to bridge.

use aib_storage::{Rid, Value};

use crate::cost::AdaptationCost;
use crate::coverage::Coverage;
use crate::secondary::{IndexBackend, SecondaryIndex};

/// A partial secondary index over one column.
///
/// ```
/// use aib_index::{Coverage, IndexBackend, PartialIndex};
/// use aib_storage::{Rid, Value};
///
/// // Fig. 2: only U.S. airports are covered.
/// let mut coverage = Coverage::empty_set();
/// coverage.add_value(Value::from("ORD"));
/// let mut ix = PartialIndex::new("flights.airport", coverage, IndexBackend::BTree);
///
/// assert!(ix.covers(&Value::from("ORD")));
/// assert!(!ix.covers(&Value::from("FRA")), "FRA forces a table scan");
/// ix.add(Value::from("ORD"), Rid::new(1, 0));
/// assert_eq!(ix.lookup(&Value::from("ORD")), vec![Rid::new(1, 0)]);
/// ```
pub struct PartialIndex {
    name: String,
    coverage: Coverage,
    index: Box<dyn SecondaryIndex>,
    cost: AdaptationCost,
}

impl PartialIndex {
    /// Creates an empty partial index.
    pub fn new(name: impl Into<String>, coverage: Coverage, backend: IndexBackend) -> Self {
        Self::with_index(name, coverage, backend.build())
    }

    /// Creates an empty partial index over a caller-supplied backing index —
    /// e.g. a disk-resident [`crate::paged::PagedIndex`].
    pub fn with_index(
        name: impl Into<String>,
        coverage: Coverage,
        index: Box<dyn SecondaryIndex>,
    ) -> Self {
        PartialIndex {
            name: name.into(),
            coverage,
            index,
            cost: AdaptationCost::free(),
        }
    }

    /// Replaces the cost sink (engine wiring).
    pub fn with_cost(mut self, cost: AdaptationCost) -> Self {
        self.cost = cost;
        self
    }

    /// Index name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coverage predicate.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Whether `value` is covered — the paper's `t ∈ IX` test.
    #[inline]
    pub fn covers(&self, value: &Value) -> bool {
        self.coverage.covers(value)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cumulative entries mutated by maintenance and adaptation.
    pub fn maintenance_entries(&self) -> u64 {
        self.cost.total_entries()
    }

    /// `IX.Add(t)` — inserts an entry for a covered tuple.
    ///
    /// # Panics
    /// In debug builds, if `value` is not covered: Table I only ever adds
    /// covered tuples, so an uncovered add is an engine bug.
    pub fn add(&mut self, value: Value, rid: Rid) -> bool {
        debug_assert!(self.covers(&value), "IX.Add of uncovered value {value}");
        let added = self.index.add(value, rid);
        if added {
            self.cost.charge_entries(1);
        }
        added
    }

    /// `IX.Remove(t)` — deletes an entry.
    pub fn remove(&mut self, value: &Value, rid: Rid) -> bool {
        let removed = self.index.remove(value, rid);
        if removed {
            self.cost.charge_entries(1);
        }
        removed
    }

    /// `IX.Update(t_old, t_new)` — both tuples covered; moves the entry.
    pub fn update(&mut self, old_value: &Value, old_rid: Rid, new_value: Value, new_rid: Rid) {
        self.remove(old_value, old_rid);
        self.add(new_value, new_rid);
    }

    /// True if the exact entry exists.
    pub fn contains(&self, value: &Value, rid: Rid) -> bool {
        self.index.contains(value, rid)
    }

    /// Point lookup: all rids for `value`. The caller must have checked
    /// coverage; looking up an uncovered value returns an empty (and
    /// meaningless) result.
    pub fn lookup(&self, value: &Value) -> Vec<Rid> {
        self.index.lookup(value)
    }

    /// Range lookup, if the backend supports it **and** the coverage
    /// guarantees completeness for the whole range.
    pub fn lookup_range(&self, lo: &Value, hi: &Value) -> Option<Vec<Rid>> {
        if !self.covers_range(lo, hi) {
            return None;
        }
        self.index.lookup_range(lo, hi)
    }

    /// All entries with `lo <= value <= hi`, regardless of whether the
    /// coverage is complete over the range. Used by range scans that miss
    /// the partial index: pages fully covered by the index are skipped, so
    /// the covered fraction of the range must be answered from the index
    /// itself. Falls back to a full index sweep for backends without range
    /// support.
    pub fn entries_in(&self, lo: &Value, hi: &Value) -> Vec<Rid> {
        if let Some(rids) = self.index.lookup_range(lo, hi) {
            return rids;
        }
        let mut rids = Vec::new();
        self.index.for_each(&mut |v, rid| {
            if lo <= v && v <= hi {
                rids.push(rid);
            }
        });
        rids.sort_unstable();
        rids
    }

    /// Whether every value in `[lo, hi]` is covered (conservative for sets).
    pub fn covers_range(&self, lo: &Value, hi: &Value) -> bool {
        match &self.coverage {
            Coverage::None => false,
            Coverage::All => true,
            Coverage::IntRange { lo: clo, hi: chi } => match (lo.as_int(), hi.as_int()) {
                (Some(l), Some(h)) => *clo <= l && h <= *chi,
                _ => false,
            },
            Coverage::Set(set) => match (lo.as_int(), hi.as_int()) {
                (Some(l), Some(h)) => (l..=h).all(|v| set.contains(&Value::Int(v))),
                _ => false,
            },
        }
    }

    /// Visits every entry.
    pub fn for_each(&self, mut f: impl FnMut(&Value, Rid)) {
        self.index.for_each(&mut f);
    }

    /// **Adaptation:** extends a [`Coverage::Set`] index by `value`, bulk
    /// loading the given entries (found by the adapting scan). Charges every
    /// inserted entry. Returns the number of entries added.
    pub fn adapt_add_value(&mut self, value: Value, rids: &[Rid]) -> usize {
        if !self.coverage.add_value(value.clone()) {
            return 0;
        }
        let mut added = 0;
        for &rid in rids {
            if self.index.add(value.clone(), rid) {
                added += 1;
            }
        }
        self.cost.charge_entries(added as u64);
        added
    }

    /// **Adaptation:** shrinks a [`Coverage::Set`] index by `value`,
    /// dropping its entries. Charges every removed entry. Returns the number
    /// of entries dropped.
    pub fn adapt_remove_value(&mut self, value: &Value) -> usize {
        if !self.coverage.remove_value(value) {
            return 0;
        }
        let rids = self.index.lookup(value);
        for &rid in &rids {
            self.index.remove(value, rid);
        }
        self.cost.charge_entries(rids.len() as u64);
        rids.len()
    }

    /// **Adaptation:** wholesale redefinition of the coverage (e.g. the
    /// experiment-4 flip of the covered range). Entries outside the new
    /// coverage are dropped; entries for newly covered values must be
    /// supplied by a rebuilding scan via [`PartialIndex::add`]. Every dropped
    /// entry is charged. Returns the number of entries dropped.
    pub fn redefine_coverage(&mut self, coverage: Coverage) -> usize {
        let mut stale = Vec::new();
        self.index.for_each(&mut |v, rid| {
            if !coverage.covers(v) {
                stale.push((v.clone(), rid));
            }
        });
        for (v, rid) in &stale {
            self.index.remove(v, *rid);
        }
        self.cost.charge_entries(stale.len() as u64);
        self.coverage = coverage;
        stale.len()
    }
}

impl std::fmt::Debug for PartialIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartialIndex")
            .field("name", &self.name)
            .field("len", &self.len())
            .field("coverage", &self.coverage)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us_airports() -> PartialIndex {
        // The paper's Fig. 2 example: only U.S. airports are indexed.
        let mut set = std::collections::BTreeSet::new();
        for code in ["ORD", "JFK", "LAX"] {
            set.insert(Value::from(code));
        }
        PartialIndex::new("flights_airport", Coverage::Set(set), IndexBackend::BTree)
    }

    #[test]
    fn covered_values_hit_uncovered_miss() {
        let mut ix = us_airports();
        ix.add(Value::from("ORD"), Rid::new(1, 0));
        ix.add(Value::from("ORD"), Rid::new(4, 2));
        assert!(ix.covers(&Value::from("ORD")));
        assert!(!ix.covers(&Value::from("FRA")), "FRA forces a table scan");
        assert_eq!(
            ix.lookup(&Value::from("ORD")),
            vec![Rid::new(1, 0), Rid::new(4, 2)]
        );
    }

    #[test]
    fn add_remove_update_roundtrip() {
        let mut ix = PartialIndex::new(
            "a",
            Coverage::IntRange { lo: 1, hi: 100 },
            IndexBackend::BTree,
        );
        assert!(ix.add(Value::Int(5), Rid::new(0, 0)));
        assert!(!ix.add(Value::Int(5), Rid::new(0, 0)));
        assert!(ix.contains(&Value::Int(5), Rid::new(0, 0)));
        ix.update(
            &Value::Int(5),
            Rid::new(0, 0),
            Value::Int(6),
            Rid::new(0, 1),
        );
        assert!(!ix.contains(&Value::Int(5), Rid::new(0, 0)));
        assert!(ix.contains(&Value::Int(6), Rid::new(0, 1)));
        assert!(ix.remove(&Value::Int(6), Rid::new(0, 1)));
        assert!(ix.is_empty());
        assert_eq!(ix.maintenance_entries(), 4, "add + update(2) + remove");
    }

    #[test]
    fn adapt_add_and_remove_value() {
        let mut ix = PartialIndex::new("a", Coverage::empty_set(), IndexBackend::BTree);
        let rids = [Rid::new(0, 0), Rid::new(3, 1)];
        assert_eq!(ix.adapt_add_value(Value::Int(9), &rids), 2);
        assert!(ix.covers(&Value::Int(9)));
        assert_eq!(ix.len(), 2);
        assert_eq!(
            ix.adapt_add_value(Value::Int(9), &rids),
            0,
            "already covered"
        );
        assert_eq!(ix.adapt_remove_value(&Value::Int(9)), 2);
        assert!(!ix.covers(&Value::Int(9)));
        assert!(ix.is_empty());
        assert_eq!(ix.adapt_remove_value(&Value::Int(9)), 0);
    }

    #[test]
    fn redefine_coverage_drops_stale_entries() {
        let mut ix = PartialIndex::new(
            "a",
            Coverage::IntRange { lo: 1, hi: 10 },
            IndexBackend::BTree,
        );
        for i in 1..=10 {
            ix.add(Value::Int(i), Rid::new(i as u32, 0));
        }
        let dropped = ix.redefine_coverage(Coverage::IntRange { lo: 6, hi: 15 });
        assert_eq!(dropped, 5);
        assert_eq!(ix.len(), 5);
        assert!(ix.covers(&Value::Int(12)));
        assert!(!ix.covers(&Value::Int(3)));
        assert!(ix.lookup(&Value::Int(3)).is_empty());
        assert_eq!(ix.lookup(&Value::Int(7)), vec![Rid::new(7, 0)]);
    }

    #[test]
    fn covers_range_logic() {
        let ix = PartialIndex::new(
            "a",
            Coverage::IntRange { lo: 10, hi: 20 },
            IndexBackend::BTree,
        );
        assert!(ix.covers_range(&Value::Int(10), &Value::Int(20)));
        assert!(ix.covers_range(&Value::Int(12), &Value::Int(15)));
        assert!(!ix.covers_range(&Value::Int(9), &Value::Int(15)));
        assert!(!ix.covers_range(&Value::Int(15), &Value::Int(21)));
        assert!(!ix.covers_range(&Value::from("a"), &Value::from("b")));
    }

    #[test]
    fn lookup_range_respects_coverage_and_backend() {
        let mut ix = PartialIndex::new(
            "a",
            Coverage::IntRange { lo: 1, hi: 100 },
            IndexBackend::BTree,
        );
        for i in 1..=20 {
            ix.add(Value::Int(i), Rid::new(i as u32, 0));
        }
        let rids = ix.lookup_range(&Value::Int(5), &Value::Int(8)).unwrap();
        assert_eq!(rids.len(), 4);
        assert!(ix.lookup_range(&Value::Int(50), &Value::Int(200)).is_none());

        let hash_ix = PartialIndex::new(
            "h",
            Coverage::IntRange { lo: 1, hi: 100 },
            IndexBackend::Hash,
        );
        assert!(hash_ix
            .lookup_range(&Value::Int(5), &Value::Int(8))
            .is_none());
    }

    #[test]
    fn adaptation_cost_is_charged() {
        use aib_storage::{CostModel, IoStats};
        use std::sync::Arc;
        let io = Arc::new(IoStats::new());
        let mut ix = PartialIndex::new("a", Coverage::empty_set(), IndexBackend::BTree).with_cost(
            AdaptationCost::charged(
                Arc::clone(&io),
                CostModel {
                    read_us: 0,
                    write_us: 50,
                },
                10,
            ),
        );
        let rids: Vec<Rid> = (0..25).map(|i| Rid::new(i, 0)).collect();
        ix.adapt_add_value(Value::Int(1), &rids);
        assert_eq!(
            io.snapshot().page_writes,
            2,
            "25 entries / 10 per page = 2 full pages"
        );
        ix.adapt_remove_value(&Value::Int(1));
        assert_eq!(
            io.snapshot().page_writes,
            5,
            "50 entries total = 5 full pages"
        );
    }
}
