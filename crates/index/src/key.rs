//! Composite index keys: `(value, rid)`.
//!
//! Secondary indexes are not unique — many tuples can share a column value —
//! so entries are keyed by the pair of value and record id. All rids for a
//! value then form the contiguous key range
//! `[EntryKey::min_for(v), EntryKey::max_for(v)]`.

use aib_storage::{Rid, Value};

/// A secondary-index entry key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryKey {
    /// The indexed column value.
    pub value: Value,
    /// The tuple's record id.
    pub rid: Rid,
}

impl EntryKey {
    /// Key for a concrete entry.
    pub fn new(value: Value, rid: Rid) -> Self {
        EntryKey { value, rid }
    }

    /// Smallest possible key for `value` (range scan lower bound).
    pub fn min_for(value: Value) -> Self {
        EntryKey {
            value,
            rid: Rid::new(0, 0),
        }
    }

    /// Largest possible key for `value` (range scan upper bound).
    pub fn max_for(value: Value) -> Self {
        EntryKey {
            value,
            rid: Rid::new(u32::MAX, u16::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_value_major() {
        let a = EntryKey::new(Value::Int(1), Rid::new(9, 9));
        let b = EntryKey::new(Value::Int(2), Rid::new(0, 0));
        assert!(a < b);
        let c = EntryKey::new(Value::Int(1), Rid::new(9, 10));
        assert!(a < c);
    }

    #[test]
    fn min_max_bracket_all_rids() {
        let v = Value::Int(7);
        let lo = EntryKey::min_for(v.clone());
        let hi = EntryKey::max_for(v.clone());
        let k = EntryKey::new(v, Rid::new(123, 45));
        assert!(lo <= k && k <= hi);
        // Bounds do not leak into neighbouring values.
        assert!(hi < EntryKey::min_for(Value::Int(8)));
        assert!(EntryKey::max_for(Value::Int(6)) < lo);
    }
}
