//! A disk-resident B+-tree, paged through the buffer pool.
//!
//! The paper's partial indexes are ordinary disk-based indexes — that is
//! why adapting them is expensive and why the memory-resident Index Buffer
//! wins during workload shifts. [`crate::partial::PartialIndex`] models
//! that cost with an [`crate::cost::AdaptationCost`] sink; this module goes
//! further and provides a *real* paged index for integer columns: every
//! node is an 8 KiB page fetched through the shared buffer pool, so probe
//! and maintenance I/O emerge naturally from page accesses instead of
//! being charged synthetically.
//!
//! Layout (little-endian):
//!
//! ```text
//! header   (8 B):  tag u8 | pad u8 | count u16 | next_leaf u32
//! leaf     : header, then count × 16 B entries  (value i64, page u32, slot u16, pad u16)
//! internal : header, then count × 16 B keys, then (count+1) × 4 B child page ids
//! ```
//!
//! Leaves are chained via `next_leaf` for range scans. Deletion is lazy
//! (no rebalancing): removed entries shrink their leaf in place, and empty
//! leaves stay linked — standard practice for secondary indexes whose
//! entry population only shrinks during coverage adaptation.

// aib-lint: allow-file(no-index) — node images are fixed 8 KiB pages and
// every offset is derived from the little-endian layout constants below;
// the fanout bound keeps all slot arithmetic inside the page.
// aib-lint: allow-file(no-panic) — the `expect` sites decode fields from
// pages this module itself wrote (layout round-trip), guarded by the node
// magic check on fetch; a failure is a corrupt page image, which the
// storage layer already surfaces as StorageError on the I/O path.

use std::sync::Arc;

use aib_storage::{BufferPool, MemoryUsage, PageId, Rid, StorageError, PAGE_SIZE};

const HEADER: usize = 8;
const ENTRY: usize = 16;
const CHILD: usize = 4;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
/// Maximum entries per leaf page.
pub const LEAF_CAP: usize = (PAGE_SIZE - HEADER) / ENTRY; // 511
/// Maximum separator keys per internal page.
pub const INTERNAL_CAP: usize = (PAGE_SIZE - HEADER - CHILD) / (ENTRY + CHILD); // 408
const NO_PAGE: u32 = u32::MAX;

/// An index entry key: `(column value, rid)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PagedKey {
    /// The indexed integer value.
    pub value: i64,
    /// The tuple's page.
    pub page: u32,
    /// The tuple's slot.
    pub slot: u16,
}

impl PagedKey {
    /// Key for a concrete entry.
    pub fn new(value: i64, rid: Rid) -> Self {
        PagedKey {
            value,
            page: rid.page.0,
            slot: rid.slot.0,
        }
    }

    /// Smallest key for `value`.
    pub fn min_for(value: i64) -> Self {
        PagedKey {
            value,
            page: 0,
            slot: 0,
        }
    }

    /// Largest key for `value`.
    pub fn max_for(value: i64) -> Self {
        PagedKey {
            value,
            page: u32::MAX,
            slot: u16::MAX,
        }
    }

    /// The record id this key references.
    pub fn rid(&self) -> Rid {
        Rid::new(self.page, self.slot)
    }

    fn write(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.value.to_le_bytes());
        buf[8..12].copy_from_slice(&self.page.to_le_bytes());
        buf[12..14].copy_from_slice(&self.slot.to_le_bytes());
        buf[14..16].fill(0);
    }

    fn read(buf: &[u8]) -> Self {
        PagedKey {
            value: i64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            page: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
            slot: u16::from_le_bytes(buf[12..14].try_into().expect("2 bytes")),
        }
    }
}

// --- raw node accessors over a page image ---------------------------------

fn tag(buf: &[u8]) -> u8 {
    buf[0]
}

fn count(buf: &[u8]) -> usize {
    u16::from_le_bytes([buf[2], buf[3]]) as usize
}

fn set_count(buf: &mut [u8], n: usize) {
    buf[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

fn next_leaf(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"))
}

fn set_next_leaf(buf: &mut [u8], next: u32) {
    buf[4..8].copy_from_slice(&next.to_le_bytes());
}

fn init_node(buf: &mut [u8], node_tag: u8) {
    buf[0] = node_tag;
    buf[1] = 0;
    set_count(buf, 0);
    set_next_leaf(buf, NO_PAGE);
}

fn entry_at(buf: &[u8], i: usize) -> PagedKey {
    PagedKey::read(&buf[HEADER + i * ENTRY..])
}

fn set_entry(buf: &mut [u8], i: usize, key: PagedKey) {
    key.write(&mut buf[HEADER + i * ENTRY..HEADER + (i + 1) * ENTRY]);
}

fn child_at(buf: &[u8], n_keys: usize, i: usize) -> u32 {
    let base = HEADER + n_keys * ENTRY;
    u32::from_le_bytes(
        buf[base + i * CHILD..base + (i + 1) * CHILD]
            .try_into()
            .expect("4 bytes"),
    )
}

/// Binary search among a node's keys; `Ok(i)` exact, `Err(i)` insertion
/// point.
fn search(buf: &[u8], key: &PagedKey) -> Result<usize, usize> {
    let n = count(buf);
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match entry_at(buf, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Shifts entries `[i..n)` one slot right (leaf) to open slot `i`.
fn shift_entries_right(buf: &mut [u8], i: usize, n: usize) {
    let src = HEADER + i * ENTRY;
    let end = HEADER + n * ENTRY;
    buf.copy_within(src..end, src + ENTRY);
}

/// Shifts entries `[i+1..n)` one slot left (leaf), erasing slot `i`.
fn shift_entries_left(buf: &mut [u8], i: usize, n: usize) {
    let src = HEADER + (i + 1) * ENTRY;
    let end = HEADER + n * ENTRY;
    buf.copy_within(src..end, src - ENTRY);
}

/// A disk-resident B+-tree over `(i64, rid)` keys.
pub struct PagedBTree {
    pool: Arc<BufferPool>,
    root: PageId,
    len: usize,
    nodes: usize,
}

enum InsertResult {
    Done(bool),
    Split {
        sep: PagedKey,
        right: PageId,
        inserted: bool,
    },
}

impl PagedBTree {
    /// Creates an empty tree, allocating its root leaf on the pool's disk.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self, StorageError> {
        let (root, mut guard) = pool.new_page()?;
        init_node(&mut guard[..], TAG_LEAF);
        drop(guard);
        Ok(PagedBTree {
            pool,
            root,
            len: 0,
            nodes: 1,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of node pages this tree has allocated.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Bytes the tree occupies on the (simulated) disk: node pages times
    /// [`PAGE_SIZE`]. This is *not* a memory footprint — nodes reach memory
    /// only through the buffer pool, which charges them to the governor's
    /// buffer-pool component while cached.
    pub fn disk_footprint(&self) -> usize {
        self.nodes * PAGE_SIZE
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: PagedKey) -> Result<bool, StorageError> {
        match self.insert_rec(self.root, key)? {
            InsertResult::Done(inserted) => {
                if inserted {
                    self.len += 1;
                }
                Ok(inserted)
            }
            InsertResult::Split {
                sep,
                right,
                inserted,
            } => {
                // Grow a new root above the old one.
                let (new_root, mut guard) = self.pool.new_page()?;
                self.nodes += 1;
                init_node(&mut guard[..], TAG_INTERNAL);
                set_count(&mut guard[..], 1);
                set_entry(&mut guard[..], 0, sep);
                let base = HEADER + ENTRY;
                guard[base..base + 4].copy_from_slice(&self.root.0.to_le_bytes());
                guard[base + 4..base + 8].copy_from_slice(&right.0.to_le_bytes());
                drop(guard);
                self.root = new_root;
                if inserted {
                    self.len += 1;
                }
                Ok(inserted)
            }
        }
    }

    fn insert_rec(&mut self, node: PageId, key: PagedKey) -> Result<InsertResult, StorageError> {
        // Read the routing decision with a cheap read guard first.
        let (node_tag, child) = {
            let guard = self.pool.fetch_read(node)?;
            let t = tag(&guard[..]);
            if t == TAG_INTERNAL {
                let n = count(&guard[..]);
                let idx = match search(&guard[..], &key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                (t, Some((PageId(child_at(&guard[..], n, idx)), idx)))
            } else {
                (t, None)
            }
        };
        if node_tag == TAG_LEAF {
            return self.insert_into_leaf(node, key);
        }
        let (child, idx) = child.expect("internal node routed");
        match self.insert_rec(child, key)? {
            InsertResult::Done(inserted) => Ok(InsertResult::Done(inserted)),
            InsertResult::Split {
                sep,
                right,
                inserted,
            } => self.insert_separator(node, idx, sep, right, inserted),
        }
    }

    /// Inserts `sep`/`right` into internal `node` at key position `idx`,
    /// splitting the node if full.
    fn insert_separator(
        &mut self,
        node: PageId,
        idx: usize,
        sep: PagedKey,
        right: PageId,
        inserted: bool,
    ) -> Result<InsertResult, StorageError> {
        let mut guard = self.pool.fetch_write(node)?;
        let n = count(&guard[..]);
        // Open space: children block moves right by one child slot, and the
        // keys after idx move right by one key slot. Rebuild via scratch to
        // keep the arithmetic obvious (internal nodes are small).
        let mut keys: Vec<PagedKey> = (0..n).map(|i| entry_at(&guard[..], i)).collect();
        let mut children: Vec<u32> = (0..=n).map(|i| child_at(&guard[..], n, i)).collect();
        keys.insert(idx, sep);
        children.insert(idx + 1, right.0);
        if keys.len() <= INTERNAL_CAP {
            write_internal(&mut guard[..], &keys, &children);
            return Ok(InsertResult::Done(inserted));
        }
        // Split: middle key moves up.
        let mid = keys.len() / 2;
        let up = keys[mid];
        let right_keys: Vec<PagedKey> = keys[mid + 1..].to_vec();
        let right_children: Vec<u32> = children[mid + 1..].to_vec();
        let left_keys: Vec<PagedKey> = keys[..mid].to_vec();
        let left_children: Vec<u32> = children[..=mid].to_vec();
        write_internal(&mut guard[..], &left_keys, &left_children);
        drop(guard);
        let (right_pid, mut rguard) = self.pool.new_page()?;
        self.nodes += 1;
        init_node(&mut rguard[..], TAG_INTERNAL);
        write_internal(&mut rguard[..], &right_keys, &right_children);
        drop(rguard);
        Ok(InsertResult::Split {
            sep: up,
            right: right_pid,
            inserted,
        })
    }

    fn insert_into_leaf(
        &mut self,
        leaf: PageId,
        key: PagedKey,
    ) -> Result<InsertResult, StorageError> {
        let mut guard = self.pool.fetch_write(leaf)?;
        let n = count(&guard[..]);
        let idx = match search(&guard[..], &key) {
            Ok(_) => return Ok(InsertResult::Done(false)),
            Err(i) => i,
        };
        if n < LEAF_CAP {
            shift_entries_right(&mut guard[..], idx, n);
            set_entry(&mut guard[..], idx, key);
            set_count(&mut guard[..], n + 1);
            return Ok(InsertResult::Done(true));
        }
        // Split the leaf; new right sibling takes the upper half.
        let mid = n / 2;
        let mut upper: Vec<PagedKey> = (mid..n).map(|i| entry_at(&guard[..], i)).collect();
        set_count(&mut guard[..], mid);
        if idx <= mid {
            shift_entries_right(&mut guard[..], idx, mid);
            set_entry(&mut guard[..], idx, key);
            set_count(&mut guard[..], mid + 1);
        } else {
            let pos = upper.binary_search(&key).expect_err("not a duplicate");
            upper.insert(pos, key);
        }
        let old_next = next_leaf(&guard[..]);
        let (right_pid, mut rguard) = self.pool.new_page()?;
        self.nodes += 1;
        init_node(&mut rguard[..], TAG_LEAF);
        for (i, k) in upper.iter().enumerate() {
            set_entry(&mut rguard[..], i, *k);
        }
        set_count(&mut rguard[..], upper.len());
        set_next_leaf(&mut rguard[..], old_next);
        drop(rguard);
        set_next_leaf(&mut guard[..], right_pid.0);
        let sep = upper[0];
        Ok(InsertResult::Split {
            sep,
            right: right_pid,
            inserted: true,
        })
    }

    /// Removes `key`; returns `false` if absent. Lazy: no rebalancing.
    pub fn remove(&mut self, key: PagedKey) -> Result<bool, StorageError> {
        let leaf = self.find_leaf(key)?;
        let mut guard = self.pool.fetch_write(leaf)?;
        let n = count(&guard[..]);
        match search(&guard[..], &key) {
            Ok(i) => {
                shift_entries_left(&mut guard[..], i, n);
                set_count(&mut guard[..], n - 1);
                drop(guard);
                self.len -= 1;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: PagedKey) -> Result<bool, StorageError> {
        let leaf = self.find_leaf(key)?;
        let guard = self.pool.fetch_read(leaf)?;
        Ok(search(&guard[..], &key).is_ok())
    }

    /// Descends to the leaf that would hold `key`.
    fn find_leaf(&self, key: PagedKey) -> Result<PageId, StorageError> {
        let mut node = self.root;
        loop {
            let guard = self.pool.fetch_read(node)?;
            if tag(&guard[..]) == TAG_LEAF {
                return Ok(node);
            }
            let n = count(&guard[..]);
            let idx = match search(&guard[..], &key) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            node = PageId(child_at(&guard[..], n, idx));
        }
    }

    /// All rids for `value`, in rid order.
    pub fn lookup(&self, value: i64) -> Result<Vec<Rid>, StorageError> {
        self.range(value, value)
    }

    /// Rids for all entries with `lo <= value <= hi`, in key order, via the
    /// leaf chain.
    pub fn range(&self, lo: i64, hi: i64) -> Result<Vec<Rid>, StorageError> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let start = PagedKey::min_for(lo);
        let mut leaf = self.find_leaf(start)?;
        loop {
            let guard = self.pool.fetch_read(leaf)?;
            let n = count(&guard[..]);
            let from = match search(&guard[..], &start) {
                Ok(i) | Err(i) => i,
            };
            for i in from..n {
                let k = entry_at(&guard[..], i);
                if k.value > hi {
                    return Ok(out);
                }
                out.push(k.rid());
            }
            let next = next_leaf(&guard[..]);
            if next == NO_PAGE {
                return Ok(out);
            }
            leaf = PageId(next);
        }
    }

    /// Visits every entry in key order.
    pub fn for_each(&self, f: &mut dyn FnMut(PagedKey)) -> Result<(), StorageError> {
        let mut leaf = self.find_leaf(PagedKey {
            value: i64::MIN,
            page: 0,
            slot: 0,
        })?;
        loop {
            let guard = self.pool.fetch_read(leaf)?;
            for i in 0..count(&guard[..]) {
                f(entry_at(&guard[..], i));
            }
            let next = next_leaf(&guard[..]);
            if next == NO_PAGE {
                return Ok(());
            }
            leaf = PageId(next);
        }
    }

    /// Structural invariant check (tests): sorted leaves, consistent leaf
    /// chain, separator ordering, and entry count. Returns the height.
    ///
    /// # Panics
    /// If any invariant is violated.
    pub fn check_invariants(&self) -> usize {
        fn check(
            tree: &PagedBTree,
            node: PageId,
            lo: Option<PagedKey>,
            hi: Option<PagedKey>,
        ) -> (usize, usize) {
            let guard = tree.pool.fetch_read(node).expect("node readable");
            let n = count(&guard[..]);
            match tag(&guard[..]) {
                TAG_LEAF => {
                    let keys: Vec<PagedKey> = (0..n).map(|i| entry_at(&guard[..], i)).collect();
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf sorted");
                    if let (Some(lo), Some(first)) = (lo, keys.first()) {
                        assert!(lo <= *first, "leaf lower bound");
                    }
                    if let (Some(hi), Some(last)) = (hi, keys.last()) {
                        assert!(*last < hi, "leaf upper bound");
                    }
                    (1, n)
                }
                TAG_INTERNAL => {
                    assert!(n >= 1, "internal node has a separator");
                    let keys: Vec<PagedKey> = (0..n).map(|i| entry_at(&guard[..], i)).collect();
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators sorted");
                    let children: Vec<u32> = (0..=n).map(|i| child_at(&guard[..], n, i)).collect();
                    drop(guard);
                    let mut height = None;
                    let mut total = 0;
                    for (i, &child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let chi = if i == n { hi } else { Some(keys[i]) };
                        let (h, cnt) = check(tree, PageId(child), clo, chi);
                        total += cnt;
                        match height {
                            None => height = Some(h),
                            Some(prev) => assert_eq!(prev, h, "uniform depth"),
                        }
                    }
                    (height.expect("children present") + 1, total)
                }
                other => panic!("corrupt node tag {other}"),
            }
        }
        let (height, total) = check(self, self.root, None, None);
        assert_eq!(total, self.len, "len agrees with leaf entries");
        height
    }
}

fn write_internal(buf: &mut [u8], keys: &[PagedKey], children: &[u32]) {
    debug_assert_eq!(children.len(), keys.len() + 1);
    debug_assert!(keys.len() <= INTERNAL_CAP);
    set_count(buf, keys.len());
    for (i, k) in keys.iter().enumerate() {
        set_entry(buf, i, *k);
    }
    let base = HEADER + keys.len() * ENTRY;
    for (i, c) in children.iter().enumerate() {
        buf[base + i * CHILD..base + (i + 1) * CHILD].copy_from_slice(&c.to_le_bytes());
    }
}

impl std::fmt::Debug for PagedBTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedBTree")
            .field("len", &self.len)
            .field("root", &self.root)
            .field("nodes", &self.nodes)
            .finish()
    }
}

/// [`SecondaryIndex`](crate::secondary::SecondaryIndex) adapter over
/// [`PagedBTree`], for partial indexes on **integer** columns that should
/// live on the (simulated) disk.
///
/// The storage layer cannot fail here in practice (pages exist by
/// construction and at most three frames are pinned at once), so storage
/// errors surface as panics rather than poisoning the infallible trait
/// interface.
///
/// # Panics
/// All operations panic when given non-integer values; create paged indexes
/// on INTEGER columns only (the paper's evaluation columns all are).
pub struct PagedIndex {
    tree: PagedBTree,
}

impl PagedIndex {
    /// Creates an empty paged index on `pool`'s disk.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self, StorageError> {
        Ok(PagedIndex {
            tree: PagedBTree::create(pool)?,
        })
    }

    /// The underlying tree (inspection).
    pub fn tree(&self) -> &PagedBTree {
        &self.tree
    }

    fn int_of(value: &aib_storage::Value) -> i64 {
        value
            .as_int()
            .expect("paged indexes support INTEGER columns only")
    }
}

impl MemoryUsage for PagedIndex {
    /// Zero resident bytes of its own: every node lives on the simulated
    /// disk and reaches memory only through the buffer pool, which already
    /// charges cached node pages to the governor's buffer-pool component.
    /// Charging here too would double-count; see
    /// [`PagedBTree::disk_footprint`] for the on-disk size.
    fn footprint(&self) -> usize {
        0
    }
}

impl crate::secondary::SecondaryIndex for PagedIndex {
    fn add(&mut self, value: aib_storage::Value, rid: Rid) -> bool {
        let key = PagedKey::new(Self::int_of(&value), rid);
        self.tree.insert(key).expect("paged index I/O")
    }

    fn remove(&mut self, value: &aib_storage::Value, rid: Rid) -> bool {
        let key = PagedKey::new(Self::int_of(value), rid);
        self.tree.remove(key).expect("paged index I/O")
    }

    fn contains(&self, value: &aib_storage::Value, rid: Rid) -> bool {
        let key = PagedKey::new(Self::int_of(value), rid);
        self.tree.contains(key).expect("paged index I/O")
    }

    fn lookup(&self, value: &aib_storage::Value) -> Vec<Rid> {
        self.tree
            .lookup(Self::int_of(value))
            .expect("paged index I/O")
    }

    fn lookup_range(&self, lo: &aib_storage::Value, hi: &aib_storage::Value) -> Option<Vec<Rid>> {
        Some(
            self.tree
                .range(Self::int_of(lo), Self::int_of(hi))
                .expect("paged index I/O"),
        )
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn clear(&mut self) {
        // Rebuild an empty tree on the same pool (old pages become garbage;
        // the simulated disk has no reclamation, like a dropped index
        // segment awaiting vacuum).
        let pool = Arc::clone(&self.tree.pool);
        self.tree = PagedBTree::create(pool).expect("paged index I/O");
    }

    fn for_each(&self, f: &mut dyn FnMut(&aib_storage::Value, Rid)) {
        self.tree
            .for_each(&mut |k| f(&aib_storage::Value::Int(k.value), k.rid()))
            .expect("paged index I/O");
    }

    fn backend_name(&self) -> &'static str {
        "paged-btree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aib_storage::{BufferPoolConfig, CostModel, DiskManager};

    fn tree(frames: usize) -> PagedBTree {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(frames),
        );
        PagedBTree::create(pool).unwrap()
    }

    fn key(v: i64, p: u32, s: u16) -> PagedKey {
        PagedKey {
            value: v,
            page: p,
            slot: s,
        }
    }

    #[test]
    fn empty_tree() {
        let t = tree(8);
        assert!(t.is_empty());
        assert!(!t.contains(key(1, 0, 0)).unwrap());
        assert_eq!(t.lookup(1).unwrap(), vec![]);
        assert_eq!(t.check_invariants(), 1);
    }

    #[test]
    fn insert_lookup_small() {
        let mut t = tree(8);
        assert!(t.insert(key(5, 1, 0)).unwrap());
        assert!(t.insert(key(5, 2, 0)).unwrap());
        assert!(t.insert(key(3, 9, 4)).unwrap());
        assert!(!t.insert(key(5, 1, 0)).unwrap(), "duplicate rejected");
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(5).unwrap(), vec![Rid::new(1, 0), Rid::new(2, 0)]);
        assert_eq!(t.lookup(3).unwrap(), vec![Rid::new(9, 4)]);
        assert_eq!(t.lookup(4).unwrap(), vec![]);
        t.check_invariants();
    }

    #[test]
    fn many_inserts_split_leaves_and_internals() {
        let mut t = tree(64);
        let n: i64 = 30_000; // ~59 leaves, internal splits at cap 408 need more
        for i in 0..n {
            let v = (i * 7919) % n;
            assert!(t.insert(key(v, (v % 100) as u32, (v % 7) as u16)).unwrap());
        }
        assert_eq!(t.len(), n as usize);
        let height = t.check_invariants();
        assert!(
            height >= 2,
            "tree split past a single leaf (height {height})"
        );
        // ~59 leaves plus internals; every one was counted at allocation.
        assert!(t.nodes() >= 60, "node count tracks splits: {}", t.nodes());
        assert_eq!(t.disk_footprint(), t.nodes() * PAGE_SIZE);
        // Every key findable.
        for v in [0, 1, n / 2, n - 1] {
            assert!(t
                .contains(key(v, (v % 100) as u32, (v % 7) as u16))
                .unwrap());
        }
        // Full ordered iteration.
        let mut prev: Option<PagedKey> = None;
        let mut seen = 0;
        t.for_each(&mut |k| {
            if let Some(p) = prev {
                assert!(p < k, "global order");
            }
            prev = Some(k);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, n as usize);
    }

    #[test]
    fn deep_tree_with_internal_splits() {
        // LEAF_CAP=511, INTERNAL_CAP=408: ~210k entries force height >= 3.
        let mut t = tree(256);
        let n: i64 = 230_000;
        for i in 0..n {
            let v = (i * 2654435761) % n;
            t.insert(key(v, 0, 0)).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.check_invariants() >= 3);
        assert_eq!(t.range(0, n - 1).unwrap().len(), n as usize);
    }

    #[test]
    fn range_scans_follow_leaf_chain() {
        let mut t = tree(64);
        for v in 0..5_000i64 {
            t.insert(key(v, v as u32, 0)).unwrap();
        }
        let rids = t.range(1_000, 1_099).unwrap();
        assert_eq!(rids.len(), 100);
        assert_eq!(rids[0], Rid::new(1_000, 0));
        assert_eq!(rids[99], Rid::new(1_099, 0));
        assert_eq!(t.range(4_999, 10_000).unwrap().len(), 1);
        assert_eq!(t.range(10, 5).unwrap(), vec![]);
        assert_eq!(t.range(-5, -1).unwrap(), vec![]);
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut t = tree(64);
        for v in 0..2_000i64 {
            t.insert(key(v, 0, 0)).unwrap();
        }
        for v in (0..2_000i64).step_by(2) {
            assert!(t.remove(key(v, 0, 0)).unwrap());
        }
        assert!(!t.remove(key(0, 0, 0)).unwrap(), "double remove");
        assert_eq!(t.len(), 1_000);
        t.check_invariants();
        for v in 0..2_000i64 {
            assert_eq!(t.contains(key(v, 0, 0)).unwrap(), v % 2 == 1);
        }
        let rids = t.range(0, 1_999).unwrap();
        assert_eq!(rids.len(), 1_000);
    }

    #[test]
    fn probes_cost_page_reads() {
        // The whole point of the paged index: maintenance and probes are
        // observable I/O once the tree exceeds the pool.
        let pool = BufferPool::new(
            DiskManager::new(CostModel::default()),
            BufferPoolConfig::lru(4),
        );
        let stats = pool.stats();
        let mut t = PagedBTree::create(Arc::clone(&pool)).unwrap();
        for v in 0..20_000i64 {
            t.insert(key(v, 0, 0)).unwrap();
        }
        pool.flush_all().unwrap();
        let before = stats.snapshot();
        t.lookup(10_000).unwrap();
        let delta = stats.snapshot().since(&before);
        // Root stays pool-resident; at least the leaf comes from disk.
        assert!(delta.page_reads >= 1, "tree descent reads pages: {delta:?}");
        assert!(delta.simulated_us > 0, "probe cost is charged naturally");
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // Every node access may evict another node; correctness must hold.
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(3),
        );
        let mut t = PagedBTree::create(pool).unwrap();
        for i in 0..5_000i64 {
            let v = (i * 37) % 5_000;
            t.insert(key(v, 0, 0)).unwrap();
        }
        assert_eq!(t.len(), 5_000);
        t.check_invariants();
        assert_eq!(t.range(0, 4_999).unwrap().len(), 5_000);
    }

    #[test]
    fn key_serialisation_roundtrip() {
        let k = key(-42, 7, 3);
        let mut buf = [0u8; ENTRY];
        k.write(&mut buf);
        assert_eq!(PagedKey::read(&buf), k);
        assert_eq!(k.rid(), Rid::new(7, 3));
        assert!(PagedKey::min_for(5) <= key(5, 0, 0));
        assert!(key(5, u32::MAX, u16::MAX) <= PagedKey::max_for(5));
    }
}
