//! Adaptation cost accounting for disk-resident partial indexes.
//!
//! Paper §I: "Index adaptation is not for free. Adding and removing entries
//! from an index involves I/O and memory activities." Our partial indexes
//! are materialised in memory (substitution, DESIGN.md §4), so this module
//! re-introduces the missing I/O: every batch of entry mutations is charged
//! to the shared [`IoStats`] as if the touched leaf pages were written —
//! one page write per [`AdaptationCost::entries_per_page`] mutated entries,
//! with the remainder carried between batches.
//!
//! The Index Buffer intentionally has **no such charge**: it is "in-memory
//! and without need for recovery" (paper §I), which is exactly the asymmetry
//! the paper exploits.

use std::sync::Arc;

use aib_storage::{CostModel, IoStats};

/// Charges simulated index-page I/O for partial-index maintenance.
#[derive(Debug)]
pub struct AdaptationCost {
    io: Option<Arc<IoStats>>,
    cost: CostModel,
    /// Index entries per leaf page, i.e. mutations amortised per page write.
    pub entries_per_page: u64,
    pending: u64,
    total_entries: u64,
}

impl AdaptationCost {
    /// Cost sink writing to `io`. With ~16-byte entries on 8 KiB pages,
    /// `entries_per_page` around 400 is realistic; the paper's shape results
    /// are insensitive to the exact value.
    pub fn charged(io: Arc<IoStats>, cost: CostModel, entries_per_page: u64) -> Self {
        assert!(entries_per_page > 0, "entries_per_page must be positive");
        AdaptationCost {
            io: Some(io),
            cost,
            entries_per_page,
            pending: 0,
            total_entries: 0,
        }
    }

    /// A cost sink that only counts entries, charging no I/O (used for the
    /// Index Buffer side and for tests).
    pub fn free() -> Self {
        AdaptationCost {
            io: None,
            cost: CostModel::free(),
            entries_per_page: u64::MAX,
            pending: 0,
            total_entries: 0,
        }
    }

    /// Records `n` mutated entries, charging page writes as full pages
    /// accumulate.
    pub fn charge_entries(&mut self, n: u64) {
        self.total_entries += n;
        self.pending += n;
        if let Some(io) = &self.io {
            let pages = self.pending / self.entries_per_page;
            if pages > 0 {
                self.pending %= self.entries_per_page;
                io.record_writes(pages, self.cost.write_us);
            }
        }
    }

    /// Total entries mutated over this sink's lifetime.
    pub fn total_entries(&self) -> u64 {
        self.total_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_sink_counts_without_io() {
        let mut c = AdaptationCost::free();
        c.charge_entries(1000);
        assert_eq!(c.total_entries(), 1000);
    }

    #[test]
    fn charged_sink_amortises_page_writes() {
        let io = Arc::new(IoStats::new());
        let mut c = AdaptationCost::charged(
            Arc::clone(&io),
            CostModel {
                read_us: 0,
                write_us: 10,
            },
            100,
        );
        c.charge_entries(99);
        assert_eq!(
            io.snapshot().page_writes,
            0,
            "below one page: nothing charged yet"
        );
        c.charge_entries(1);
        assert_eq!(io.snapshot().page_writes, 1);
        c.charge_entries(250);
        let s = io.snapshot();
        assert_eq!(s.page_writes, 3, "2 more full pages, 50 entries pending");
        assert_eq!(s.simulated_us, 30);
        assert_eq!(c.total_entries(), 350);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_entries_per_page_rejected() {
        AdaptationCost::charged(Arc::new(IoStats::new()), CostModel::free(), 0);
    }
}
