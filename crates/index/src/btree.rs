//! A from-scratch in-memory B+-tree.
//!
//! The paper builds its Index Buffer "on a normal B\*-Tree" (its ref. 3) and notes the
//! concrete structure is not essential. This implementation is the backing
//! store for both the partial indexes and the Index Buffer partitions:
//! sorted leaves threaded for range scans, internal nodes holding separator
//! keys only, configurable fanout.
//!
//! Keys are unique; secondary-index duplicates are modelled by composite
//! `(value, rid)` keys (see [`crate::key::EntryKey`]), the classic way to
//! make duplicate handling and precise deletion trivial.

// aib-lint: allow-file(no-index) — nodes live in an arena (`Vec<Node>`)
// and are addressed by NodeIds the tree itself allocated; ids are never
// freed, so they cannot dangle.
// aib-lint: allow-file(no-panic) — the remaining `expect`/`unreachable!`
// sites assert structural invariants of the B+-tree algorithm (separator
// counts, child arity) that are maintained locally by split/merge; a
// violation is a bug in this module, not a recoverable input condition.

use std::fmt::Debug;

/// Default maximum number of keys per node.
pub const DEFAULT_ORDER: usize = 64;

enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K, V> Node<K, V> {
    fn key_count(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } | Node::Internal { keys, .. } => keys.len(),
        }
    }
}

/// An in-memory B+-tree map with unique keys.
///
/// ```
/// use aib_index::BPlusTree;
///
/// let mut tree = BPlusTree::with_order(4);
/// for k in [5, 1, 9, 3, 7] {
///     tree.insert(k, k * 10);
/// }
/// assert_eq!(tree.get(&9), Some(&90));
/// assert_eq!(tree.remove(&1), Some(10));
/// let keys: Vec<i32> = tree.range(&3, &7).map(|(k, _)| *k).collect();
/// assert_eq!(keys, vec![3, 5, 7]);
/// tree.check_invariants();
/// ```
pub struct BPlusTree<K, V> {
    root: Box<Node<K, V>>,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Creates an empty tree with [`DEFAULT_ORDER`].
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with at most `order` keys per node.
    ///
    /// # Panics
    /// If `order < 3` (splits need a separator plus two halves).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+-tree order must be at least 3");
        BPlusTree {
            root: Box::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            }),
            order,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum keys per node.
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Minimum keys a non-root node may hold.
    #[inline]
    fn min_keys(&self) -> usize {
        self.order / 2
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        *self.root = Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        };
        self.len = 0;
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = child_index(keys, key);
                    node = &children[idx];
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let order = self.order;
        let (old, split) = insert_rec(&mut self.root, key, value, order);
        if old.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(
                &mut *self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                },
            );
            *self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
        old
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let min = self.min_keys();
        let removed = remove_rec(&mut self.root, key, min);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that lost its last separator.
            if let Node::Internal { keys, children } = &mut *self.root {
                if keys.is_empty() {
                    debug_assert_eq!(children.len(), 1);
                    *self.root = children.pop().expect("single child");
                }
            }
        }
        removed
    }

    /// Smallest key, if any.
    pub fn first_key(&self) -> Option<&K> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, .. } => return keys.first(),
                Node::Internal { children, .. } => node = children.first()?,
            }
        }
    }

    /// Largest key, if any.
    pub fn last_key(&self) -> Option<&K> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, .. } => return keys.last(),
                Node::Internal { children, .. } => node = children.last()?,
            }
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_leftmost(&self.root);
        iter
    }

    /// Iterates entries with `lo <= key <= hi` in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Range<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        if lo <= hi {
            iter.push_from(&self.root, lo);
        }
        Range {
            inner: iter,
            hi: hi.clone(),
        }
    }

    /// Iterates entries with `key >= lo` in key order.
    pub fn range_from(&self, lo: &K) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_from(&self.root, lo);
        iter
    }

    /// Checks the B+-tree structural invariants; used by tests and
    /// debug assertions. Returns the tree height.
    ///
    /// # Panics
    /// If any invariant is violated.
    pub fn check_invariants(&self) -> usize
    where
        K: Debug,
    {
        fn check<K: Ord + Clone + Debug, V>(
            node: &Node<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
            is_root: bool,
            order: usize,
            min: usize,
        ) -> (usize, usize) {
            match node {
                Node::Leaf { keys, vals } => {
                    assert_eq!(keys.len(), vals.len(), "leaf key/value arity");
                    assert!(keys.len() <= order, "leaf overflow");
                    if !is_root {
                        assert!(
                            keys.len() >= min,
                            "leaf underflow: {} < {}",
                            keys.len(),
                            min
                        );
                    }
                    assert!(
                        keys.windows(2).all(|w| w[0] < w[1]),
                        "leaf keys sorted: {keys:?}"
                    );
                    if let (Some(lo), Some(first)) = (lo, keys.first()) {
                        assert!(lo <= first, "leaf respects lower bound");
                    }
                    if let (Some(hi), Some(last)) = (hi, keys.last()) {
                        assert!(last < hi, "leaf respects upper bound");
                    }
                    (1, keys.len())
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1, "internal arity");
                    assert!(keys.len() <= order, "internal overflow");
                    if !is_root {
                        assert!(keys.len() >= min, "internal underflow");
                    } else {
                        assert!(!keys.is_empty(), "internal root has a separator");
                    }
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators sorted");
                    let mut height = None;
                    let mut count = 0;
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                        let (h, c) = check(child, clo, chi, false, order, min);
                        count += c;
                        match height {
                            None => height = Some(h),
                            Some(prev) => assert_eq!(prev, h, "uniform leaf depth"),
                        }
                    }
                    (height.expect("internal node has children") + 1, count)
                }
            }
        }
        let (height, count) = check(&self.root, None, None, true, self.order, self.min_keys());
        assert_eq!(count, self.len, "len matches entry count");
        height
    }
}

impl<K: Ord + Clone + Debug, V: Debug> Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BPlusTree")
            .field("len", &self.len)
            .field("order", &self.order)
            .finish_non_exhaustive()
    }
}

/// Index of the child subtree that may contain `key`.
///
/// Separator semantics: child `i` holds keys in `[keys[i-1], keys[i])`, so we
/// descend into the first child whose upper separator exceeds `key`.
#[inline]
fn child_index<K: Ord>(keys: &[K], key: &K) -> usize {
    match keys.binary_search(key) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Recursive insert; returns `(old_value, split)` where `split` carries the
/// separator and new right sibling if this node overflowed.
#[allow(clippy::type_complexity)]
fn insert_rec<K: Ord + Clone, V>(
    node: &mut Node<K, V>,
    key: K,
    value: V,
    order: usize,
) -> (Option<V>, Option<(K, Node<K, V>)>) {
    match node {
        Node::Leaf { keys, vals } => match keys.binary_search(&key) {
            Ok(i) => (Some(std::mem::replace(&mut vals[i], value)), None),
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, value);
                if keys.len() <= order {
                    return (None, None);
                }
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0].clone();
                (
                    None,
                    Some((
                        sep,
                        Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                        },
                    )),
                )
            }
        },
        Node::Internal { keys, children } => {
            let idx = child_index(keys, &key);
            let (old, split) = insert_rec(&mut children[idx], key, value, order);
            if let Some((sep, right)) = split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    // keys[mid] moves up as the separator.
                    let mut right_keys = keys.split_off(mid);
                    let sep = right_keys.remove(0);
                    let right_children = children.split_off(mid + 1);
                    return (
                        old,
                        Some((
                            sep,
                            Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )),
                    );
                }
            }
            (old, None)
        }
    }
}

/// Recursive remove; rebalances child underflow on the way back up so the
/// parent only ever sees children satisfying the minimum-occupancy invariant.
fn remove_rec<K: Ord + Clone, V>(node: &mut Node<K, V>, key: &K, min: usize) -> Option<V> {
    match node {
        Node::Leaf { keys, vals } => match keys.binary_search(key) {
            Ok(i) => {
                keys.remove(i);
                Some(vals.remove(i))
            }
            Err(_) => None,
        },
        Node::Internal { keys, children } => {
            let idx = child_index(keys, key);
            let removed = remove_rec(&mut children[idx], key, min)?;
            if children[idx].key_count() < min {
                rebalance_child(keys, children, idx, min);
            }
            Some(removed)
        }
    }
}

/// Restores minimum occupancy of `children[idx]` by borrowing from a sibling
/// or merging with one.
fn rebalance_child<K: Ord + Clone, V>(
    keys: &mut Vec<K>,
    children: &mut Vec<Node<K, V>>,
    idx: usize,
    min: usize,
) {
    // Try borrowing from the left sibling.
    if idx > 0 && children[idx - 1].key_count() > min {
        let (left, right) = children.split_at_mut(idx);
        let left = &mut left[idx - 1];
        let child = &mut right[0];
        match (left, child) {
            (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: ck, vals: cv }) => {
                let k = lk.pop().expect("left sibling above min");
                let v = lv.pop().expect("left sibling above min");
                ck.insert(0, k.clone());
                cv.insert(0, v);
                keys[idx - 1] = k;
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
            ) => {
                // Rotate through the parent separator.
                let sep = std::mem::replace(&mut keys[idx - 1], lk.pop().expect("above min"));
                ck.insert(0, sep);
                cc.insert(0, lc.pop().expect("internal arity"));
            }
            _ => unreachable!("siblings are at the same level"),
        }
        return;
    }
    // Try borrowing from the right sibling.
    if idx + 1 < children.len() && children[idx + 1].key_count() > min {
        let (left, right) = children.split_at_mut(idx + 1);
        let child = &mut left[idx];
        let sib = &mut right[0];
        match (child, sib) {
            (Node::Leaf { keys: ck, vals: cv }, Node::Leaf { keys: rk, vals: rv }) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                keys[idx] = rk[0].clone();
            }
            (
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                ck.push(sep);
                cc.push(rc.remove(0));
            }
            _ => unreachable!("siblings are at the same level"),
        }
        return;
    }
    // Merge with a sibling (preferring left).
    let (left_idx, sep_idx) = if idx > 0 {
        (idx - 1, idx - 1)
    } else {
        (idx, idx)
    };
    let right_node = children.remove(left_idx + 1);
    let sep = keys.remove(sep_idx);
    let left_node = &mut children[left_idx];
    match (left_node, right_node) {
        (
            Node::Leaf { keys: lk, vals: lv },
            Node::Leaf {
                keys: mut rk,
                vals: mut rv,
            },
        ) => {
            lk.append(&mut rk);
            lv.append(&mut rv);
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
            },
            Node::Internal {
                keys: mut rk,
                children: mut rc,
            },
        ) => {
            lk.push(sep);
            lk.append(&mut rk);
            lc.append(&mut rc);
        }
        _ => unreachable!("siblings are at the same level"),
    }
}

/// In-order iterator over tree entries.
pub struct Iter<'a, K, V> {
    /// Stack of (internal node, next child index) plus at most one leaf
    /// cursor at the top, encoded as (node, next entry index).
    stack: Vec<(&'a Node<K, V>, usize)>,
}

impl<'a, K: Ord, V> Iter<'a, K, V> {
    fn push_leftmost(&mut self, mut node: &'a Node<K, V>) {
        loop {
            self.stack.push((node, 0));
            match node {
                Node::Leaf { .. } => return,
                Node::Internal { children, .. } => {
                    // Revisit: child 0 is about to be entered.
                    self.stack.last_mut().expect("just pushed").1 = 1;
                    node = &children[0];
                }
            }
        }
    }

    /// Descends towards the first entry `>= lo`.
    fn push_from(&mut self, mut node: &'a Node<K, V>, lo: &K) {
        loop {
            match node {
                Node::Leaf { keys, .. } => {
                    let start = match keys.binary_search(lo) {
                        Ok(i) | Err(i) => i,
                    };
                    self.stack.push((node, start));
                    return;
                }
                Node::Internal { keys, children } => {
                    let idx = child_index(keys, lo);
                    self.stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
    }
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, cursor) = self.stack.last_mut()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if *cursor < keys.len() {
                        let i = *cursor;
                        *cursor += 1;
                        return Some((&keys[i], &vals[i]));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if *cursor < children.len() {
                        let child = &children[*cursor];
                        *cursor += 1;
                        // Manual push_leftmost on the child subtree.
                        let mut n: &Node<K, V> = child;
                        loop {
                            match n {
                                Node::Leaf { .. } => {
                                    self.stack.push((n, 0));
                                    break;
                                }
                                Node::Internal { children, .. } => {
                                    self.stack.push((n, 1));
                                    n = &children[0];
                                }
                            }
                        }
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

/// Bounded range iterator (inclusive upper bound).
pub struct Range<'a, K, V> {
    inner: Iter<'a, K, V>,
    hi: K,
}

impl<'a, K: Ord, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let (k, v) = self.inner.next()?;
        if *k > self.hi {
            // Exhaust: later keys are even larger.
            self.inner.stack.clear();
            return None;
        }
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, ()> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.first_key(), None);
        assert_eq!(t.last_key(), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::with_order(4);
        for i in [5, 1, 9, 3, 7] {
            assert_eq!(t.insert(i, i * 10), None);
        }
        assert_eq!(t.len(), 5);
        for i in [1, 3, 5, 7, 9] {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.get(&2), None);
        assert_eq!(t.first_key(), Some(&1));
        assert_eq!(t.last_key(), Some(&9));
        t.check_invariants();
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::with_order(4);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn many_inserts_keep_invariants() {
        let mut t = BPlusTree::with_order(4);
        // Shuffled-ish insertion order via a multiplicative stride.
        for i in 0..1000u64 {
            t.insert((i * 37) % 1000, i);
        }
        assert_eq!(t.len(), 1000);
        let height = t.check_invariants();
        assert!(
            height >= 4,
            "order-4 tree of 1000 keys is deep, got {height}"
        );
        let collected: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn remove_everything_in_odd_order() {
        let mut t = BPlusTree::with_order(4);
        let n = 500u64;
        for i in 0..n {
            t.insert(i, i);
        }
        // Remove odds first, then evens, checking invariants throughout.
        for i in (1..n).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
            t.check_invariants();
        }
        for i in (0..n).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.remove(&0), None);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = BPlusTree::with_order(4);
        t.insert(1, ());
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100 {
            t.insert(i * 2, ()); // evens 0..198
        }
        let got: Vec<i32> = t.range(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18, 20]);
        // Bounds not present as keys.
        let got: Vec<i32> = t.range(&9, &21).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18, 20]);
        // Empty range.
        assert_eq!(t.range(&21, &9).count(), 0);
        // Single point.
        let got: Vec<i32> = t.range(&10, &10).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10]);
        // Past the end.
        assert_eq!(t.range(&500, &600).count(), 0);
    }

    #[test]
    fn range_from_scans_tail() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..50 {
            t.insert(i, ());
        }
        let got: Vec<i32> = t.range_from(&45).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![45, 46, 47, 48, 49]);
    }

    #[test]
    fn clear_resets() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100 {
            t.insert(i, ());
        }
        t.clear();
        assert!(t.is_empty());
        t.check_invariants();
        t.insert(5, ());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interleaved_insert_remove_against_model() {
        use std::collections::BTreeMap;
        let mut t = BPlusTree::with_order(5);
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random ops.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 300) as i64;
            if x.is_multiple_of(3) {
                assert_eq!(t.remove(&key), model.remove(&key), "step {step}");
            } else {
                assert_eq!(t.insert(key, step), model.insert(key, step), "step {step}");
            }
            if step % 500 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        let tree: Vec<_> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let model: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(tree, model);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_order_rejected() {
        BPlusTree::<i32, ()>::with_order(2);
    }

    #[test]
    fn works_at_minimum_order() {
        let mut t = BPlusTree::with_order(3);
        for i in 0..200 {
            t.insert(i, i);
            t.check_invariants();
        }
        for i in 0..200 {
            assert_eq!(t.remove(&i), Some(i));
            t.check_invariants();
        }
    }
}
