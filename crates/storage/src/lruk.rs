//! The one LRU-K access history shared by every layer.
//!
//! The paper reuses O'Neil et al.'s LRU-K access-interval idea (its ref. 5)
//! twice: the buffer pool can replace pages by backward K-distance, and the
//! Index Buffer derives per-buffer use frequencies from the mean access
//! interval (§IV-B, Table II). Both views are projections of the same
//! K-bounded timestamp history, so both layers share [`AccessHistory`]:
//!
//! * `backward_k_distance(now)` — the page-replacement key: how far in the
//!   past the K-th most recent access lies (`None` while fewer than K
//!   accesses are recorded, which LRU-K treats as infinite distance).
//! * `mean_interval(now)` — the Index Buffer key: the average gap between
//!   retained accesses, floored at one tick so a freshly used buffer never
//!   reports an infinite use frequency.
//!
//! Timestamps are caller-supplied logical clocks: the buffer pool advances
//! one shared clock per access, while the Index Buffer advances one clock
//! per query (Table II semantics). The history itself is clock-agnostic.

use std::collections::VecDeque;

/// A bounded history of the K most recent access timestamps.
#[derive(Debug, Clone)]
pub struct AccessHistory {
    k: usize,
    /// Retained access timestamps, most recent first.
    stamps: VecDeque<u64>,
    uses: u64,
}

impl AccessHistory {
    /// Creates an empty history retaining the `k` most recent accesses.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "LRU-K requires k >= 1");
        AccessHistory {
            k,
            stamps: VecDeque::with_capacity(k),
            uses: 0,
        }
    }

    /// The configured history depth K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Records an access at logical time `now`, discarding the oldest
    /// retained timestamp once more than K are held.
    pub fn record(&mut self, now: u64) {
        self.uses += 1;
        self.stamps.push_front(now);
        self.stamps.truncate(self.k);
    }

    /// Records `n` accesses, all at logical time `now`, in O(min(n, K)) —
    /// equivalent to calling [`record`](Self::record) `n` times. Batch
    /// drains of deferred access events use this instead of looping.
    pub fn record_repeated(&mut self, now: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.uses += n;
        for _ in 0..n.min(self.k as u64) {
            self.stamps.push_front(now);
        }
        self.stamps.truncate(self.k);
    }

    /// Number of retained timestamps (at most K).
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when no access has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Total accesses ever recorded (not capped at K).
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Timestamp of the most recent access.
    pub fn newest(&self) -> Option<u64> {
        self.stamps.front().copied()
    }

    /// Timestamp of the oldest *retained* access (the K-th most recent once
    /// the history is full).
    pub fn oldest(&self) -> Option<u64> {
        self.stamps.back().copied()
    }

    /// Backward K-distance at time `now`: `now` minus the K-th most recent
    /// access. `None` while fewer than K accesses are recorded — LRU-K
    /// treats that as infinite distance (displace first).
    pub fn backward_k_distance(&self, now: u64) -> Option<u64> {
        if self.stamps.len() < self.k {
            return None;
        }
        self.oldest().map(|oldest| now.saturating_sub(oldest))
    }

    /// Mean interval between retained accesses at time `now`, floored at
    /// `1.0` tick (Table II floors T_B so frequencies stay finite). `None`
    /// until the first access.
    ///
    /// The interval sum telescopes, so the mean is simply
    /// `(now - oldest) / len` — no per-interval bookkeeping needed.
    pub fn mean_interval(&self, now: u64) -> Option<f64> {
        let oldest = self.oldest()?;
        let mean = now.saturating_sub(oldest) as f64 / self.stamps.len() as f64;
        Some(mean.max(1.0))
    }

    /// The retained access intervals at time `now`, most recent first:
    /// `now - t_0, t_0 - t_1, …` for timestamps `t_0 > t_1 > …`.
    pub fn intervals(&self, now: u64) -> impl Iterator<Item = u64> + '_ {
        std::iter::once(now)
            .chain(self.stamps.iter().copied())
            .zip(self.stamps.iter().copied())
            .map(|(later, earlier)| later.saturating_sub(earlier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_reports_nothing() {
        let h = AccessHistory::new(2);
        assert!(h.is_empty());
        assert_eq!(h.uses(), 0);
        assert_eq!(h.mean_interval(10), None);
        assert_eq!(h.backward_k_distance(10), None);
        assert_eq!(h.intervals(10).count(), 0);
    }

    #[test]
    fn record_bounds_retained_stamps_at_k() {
        let mut h = AccessHistory::new(2);
        for now in [1, 2, 3, 4] {
            h.record(now);
        }
        assert_eq!(h.len(), 2);
        assert_eq!(h.uses(), 4);
        assert_eq!(h.newest(), Some(4));
        assert_eq!(h.oldest(), Some(3));
    }

    #[test]
    fn backward_k_distance_is_infinite_below_k() {
        let mut h = AccessHistory::new(2);
        h.record(5);
        assert_eq!(h.backward_k_distance(9), None, "one access, K=2");
        h.record(7);
        assert_eq!(h.backward_k_distance(9), Some(4));
    }

    #[test]
    fn mean_interval_telescopes_and_floors() {
        let mut h = AccessHistory::new(3);
        h.record(0);
        h.record(2);
        // Intervals at now=2: [0, 2] -> mean 1.0.
        assert_eq!(h.mean_interval(2), Some(1.0));
        // Intervals at now=3: [1, 2] -> mean 1.5.
        assert_eq!(h.mean_interval(3), Some(1.5));
        // A burst at one instant floors at 1.0 rather than reporting 0.
        let mut b = AccessHistory::new(3);
        b.record(4);
        b.record(4);
        assert_eq!(b.mean_interval(4), Some(1.0));
    }

    #[test]
    fn intervals_enumerate_most_recent_first() {
        let mut h = AccessHistory::new(3);
        h.record(1);
        h.record(4);
        h.record(6);
        assert_eq!(h.intervals(9).collect::<Vec<_>>(), vec![3, 2, 3]);
    }

    #[test]
    fn record_repeated_matches_looped_record() {
        for n in [0u64, 1, 2, 3, 10] {
            let mut batched = AccessHistory::new(3);
            batched.record(1);
            batched.record_repeated(5, n);
            let mut looped = AccessHistory::new(3);
            looped.record(1);
            for _ in 0..n {
                looped.record(5);
            }
            assert_eq!(batched.uses(), looped.uses(), "n = {n}");
            assert_eq!(
                batched.intervals(9).collect::<Vec<_>>(),
                looped.intervals(9).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_is_rejected() {
        AccessHistory::new(0);
    }
}
