//! I/O accounting shared between the disk manager and the buffer pool.
//!
//! The paper reports query runtimes on a concrete SSD testbed. Our substrate
//! replaces the physical disk with a simulation, so experiments report
//! deterministic counters (page reads/writes, buffer hits/misses) and a
//! simulated elapsed time derived from a [`crate::disk::CostModel`], next to
//! actual wall time.

use crate::sync::{AtomicU64, Ordering};

/// Monotonic counters describing I/O activity. Thread-safe; shared via `Arc`.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the simulated disk.
    pub page_reads: AtomicU64,
    /// Pages written to the simulated disk.
    pub page_writes: AtomicU64,
    /// Buffer-pool fetches served without disk I/O.
    pub buffer_hits: AtomicU64,
    /// Buffer-pool fetches that required a disk read.
    pub buffer_misses: AtomicU64,
    /// Simulated elapsed time in microseconds, per the cost model.
    pub simulated_us: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` page reads costing `us` simulated microseconds each.
    #[inline]
    pub fn record_reads(&self, n: u64, us: u64) {
        self.page_reads.fetch_add(n, Ordering::Relaxed);
        self.simulated_us.fetch_add(n * us, Ordering::Relaxed);
    }

    /// Records `n` page writes costing `us` simulated microseconds each.
    #[inline]
    pub fn record_writes(&self, n: u64, us: u64) {
        self.page_writes.fetch_add(n, Ordering::Relaxed);
        self.simulated_us.fetch_add(n * us, Ordering::Relaxed);
    }

    /// Records a buffer-pool hit.
    #[inline]
    pub fn record_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool hits in one update — batch fetch paths use
    /// this so a hot scan touches the shared counter once per batch instead
    /// of once per page.
    #[inline]
    pub fn record_hits(&self, n: u64) {
        if n > 0 {
            self.buffer_hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records a buffer-pool miss.
    #[inline]
    pub fn record_miss(&self) {
        self.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool misses in one update; the batched counterpart
    /// of [`IoStats::record_miss`] used by sweep reads.
    #[inline]
    pub fn record_misses(&self, n: u64) {
        if n > 0 {
            self.buffer_misses.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Takes a consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            simulated_us: self.simulated_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`], supporting interval arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages read from the simulated disk.
    pub page_reads: u64,
    /// Pages written to the simulated disk.
    pub page_writes: u64,
    /// Buffer-pool hits.
    pub buffer_hits: u64,
    /// Buffer-pool misses.
    pub buffer_misses: u64,
    /// Simulated elapsed microseconds.
    pub simulated_us: u64,
}

impl IoSnapshot {
    /// Counter deltas since `earlier` (saturating, so reordered relaxed loads
    /// can never underflow).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            buffer_misses: self.buffer_misses.saturating_sub(earlier.buffer_misses),
            simulated_us: self.simulated_us.saturating_sub(earlier.simulated_us),
        }
    }

    /// Total physical page I/O (reads + writes).
    pub fn total_io(&self) -> u64 {
        self.page_reads + self.page_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas() {
        let stats = IoStats::new();
        stats.record_reads(3, 10);
        let a = stats.snapshot();
        stats.record_reads(2, 10);
        stats.record_writes(1, 20);
        stats.record_hit();
        stats.record_miss();
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(d.page_reads, 2);
        assert_eq!(d.page_writes, 1);
        assert_eq!(d.buffer_hits, 1);
        assert_eq!(d.buffer_misses, 1);
        assert_eq!(d.simulated_us, 2 * 10 + 20);
        assert_eq!(d.total_io(), 3);
    }

    #[test]
    fn since_saturates() {
        let a = IoSnapshot {
            page_reads: 5,
            ..Default::default()
        };
        let b = IoSnapshot::default();
        assert_eq!(b.since(&a).page_reads, 0);
    }
}
