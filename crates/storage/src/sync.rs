//! The sync shim: the one import path for every atomic and lock in the
//! engine's model-checked layers.
//!
//! Production builds re-export `std::sync::atomic` and `parking_lot`
//! unchanged — the shim is zero-cost and the compiled artifact is
//! bit-for-bit the code that shipped before it existed. Under
//! `cfg(aib_model)` (set via `RUSTFLAGS` by the `aib-model` test harness)
//! the same names resolve to the instrumented model runtime, whose
//! scheduler enumerates interleavings and whose memory model tracks
//! happens-before — so any protocol written against this module is
//! model-checkable by construction.
//!
//! `aib-lint`'s `sync-shim` rule enforces the "one import path" part:
//! raw `std::sync::atomic` / `parking_lot` imports outside this module
//! (and the few audited exceptions) are findings.
//!
//! `Ordering` is always `std::sync::atomic::Ordering`, so ordering
//! arguments mean the same thing in both worlds.

#[cfg(not(aib_model))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(aib_model))]
pub use std::sync::atomic::{fence, AtomicU64, AtomicUsize};

#[cfg(aib_model)]
pub use aib_model::sync::{
    fence, AtomicU64, AtomicUsize, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

pub use std::sync::atomic::Ordering;
