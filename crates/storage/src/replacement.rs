//! Pluggable displacement policies.
//!
//! One trait serves both places the system throws memory overboard: the
//! buffer pool displacing page frames, and the Index Buffer Space displacing
//! partitions (Algorithm 2's benefit-weighted victim selection lives in
//! `aib-core::space` but implements the same [`DisplacementPolicy`] trait).
//! Three classic frame policies are provided here: LRU, Clock (second
//! chance), and LRU-K — the paper cites O'Neil et al.'s LRU-K (its ref. 5)
//! and reuses its access-interval idea for Index Buffer benefit accounting,
//! so [`LruKPolicy`] shares the [`crate::lruk::AccessHistory`]
//! implementation with `aib-core::history`.

// aib-lint: allow-file(no-index) — policy state vectors are sized to the
// pool's frame count at construction and indexed only by FrameIds the pool
// handed out, which are `< frames` by construction.

use std::collections::{BTreeMap, HashMap};

use crate::lruk::AccessHistory;

/// Frame index within the buffer pool.
pub type FrameId = usize;

/// A displacement policy over abstract resource ids (buffer-pool frames or
/// index-buffer slots).
///
/// The owner calls [`record_access`](DisplacementPolicy::record_access) on
/// every use and [`displace`](DisplacementPolicy::displace) when it needs
/// room; `displace` must skip ids for which `blocked` returns true and must
/// forget the id it returns (the owner re-registers it on the next access).
/// Benefit-aware policies additionally receive
/// [`record_weight`](DisplacementPolicy::record_weight) updates; recency
/// policies ignore them.
pub trait DisplacementPolicy: Send {
    /// Notes that `id` was just accessed.
    fn record_access(&mut self, id: FrameId);
    /// Notes the current benefit weight of `id` — larger weights displace
    /// later. Pure-recency policies ignore this (default no-op).
    fn record_weight(&mut self, id: FrameId, weight: f64) {
        let _ = (id, weight);
    }
    /// Picks an unblocked victim id and removes it from the policy's
    /// bookkeeping, or returns `None` if every tracked id is blocked.
    fn displace(&mut self, blocked: &dyn Fn(FrameId) -> bool) -> Option<FrameId>;
    /// Forgets `id` entirely (resource freed outside displacement).
    fn remove(&mut self, id: FrameId);
    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Least-recently-used displacement.
#[derive(Debug, Default)]
pub struct LruPolicy {
    clock: u64,
    stamp_of: HashMap<FrameId, u64>,
    by_stamp: BTreeMap<u64, FrameId>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DisplacementPolicy for LruPolicy {
    fn record_access(&mut self, id: FrameId) {
        if let Some(old) = self.stamp_of.remove(&id) {
            self.by_stamp.remove(&old);
        }
        self.clock += 1;
        self.stamp_of.insert(id, self.clock);
        self.by_stamp.insert(self.clock, id);
    }

    fn displace(&mut self, blocked: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        let victim = self
            .by_stamp
            .iter()
            .map(|(&stamp, &id)| (stamp, id))
            .find(|&(_, id)| !blocked(id));
        let (stamp, id) = victim?;
        self.by_stamp.remove(&stamp);
        self.stamp_of.remove(&id);
        Some(id)
    }

    fn remove(&mut self, id: FrameId) {
        if let Some(stamp) = self.stamp_of.remove(&id) {
            self.by_stamp.remove(&stamp);
        }
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Clock (second chance) displacement over a fixed id count.
#[derive(Debug)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    present: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// Creates a clock over `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        ClockPolicy {
            referenced: vec![false; capacity],
            present: vec![false; capacity],
            hand: 0,
        }
    }
}

impl DisplacementPolicy for ClockPolicy {
    fn record_access(&mut self, id: FrameId) {
        self.referenced[id] = true;
        self.present[id] = true;
    }

    fn displace(&mut self, blocked: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        let n = self.referenced.len();
        if n == 0 {
            return None;
        }
        // Two sweeps suffice: the first clears reference bits, the second
        // must find an unreferenced, unblocked, present id if one exists.
        for _ in 0..2 * n {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if !self.present[f] || blocked(f) {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                self.present[f] = false;
                return Some(f);
            }
        }
        None
    }

    fn remove(&mut self, id: FrameId) {
        self.present[id] = false;
        self.referenced[id] = false;
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

/// LRU-K displacement (O'Neil, O'Neil, Weikum; SIGMOD'93): displaces the id
/// whose K-th most recent access lies furthest in the past. Ids with fewer
/// than K recorded accesses have infinite backward K-distance and are
/// displaced first, oldest first.
#[derive(Debug)]
pub struct LruKPolicy {
    k: usize,
    clock: u64,
    history: HashMap<FrameId, AccessHistory>,
}

impl LruKPolicy {
    /// Creates an LRU-K policy.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "LRU-K requires k >= 1");
        LruKPolicy {
            k,
            clock: 0,
            history: HashMap::new(),
        }
    }
}

impl DisplacementPolicy for LruKPolicy {
    fn record_access(&mut self, id: FrameId) {
        self.clock += 1;
        let k = self.k;
        self.history
            .entry(id)
            .or_insert_with(|| AccessHistory::new(k))
            .record(self.clock);
    }

    fn displace(&mut self, blocked: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        // Candidate key: (has fewer than K accesses, backward K-distance) —
        // max wins. Access stamps are unique, so distances break every tie
        // among full histories; among short histories the distance to the
        // oldest retained stamp prefers the longest-idle id, matching LRU-K's
        // "infinite distance, oldest first" rule.
        let mut best: Option<(bool, u64, FrameId)> = None;
        for (&id, h) in &self.history {
            if blocked(id) {
                continue;
            }
            let (infinite, dist) = match h.backward_k_distance(self.clock) {
                Some(d) => (false, d),
                // Tracked ids record an access on admission; an empty history
                // (unreachable) reads as maximally evictable rather than
                // pinning the frame forever.
                None => (true, h.oldest().map_or(u64::MAX, |o| self.clock - o)),
            };
            if best.is_none_or(|b| (infinite, dist) > (b.0, b.1)) {
                best = Some((infinite, dist, id));
            }
        }
        let (_, _, id) = best?;
        self.history.remove(&id);
        Some(id)
    }

    fn remove(&mut self, id: FrameId) {
        self.history.remove(&id);
    }

    fn name(&self) -> &'static str {
        "lru-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn none_blocked(_: FrameId) -> bool {
        false
    }

    #[test]
    fn lru_displaces_least_recent() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        p.record_access(2);
        p.record_access(0); // refresh 0
        assert_eq!(p.displace(&none_blocked), Some(1));
        assert_eq!(p.displace(&none_blocked), Some(2));
        assert_eq!(p.displace(&none_blocked), Some(0));
        assert_eq!(p.displace(&none_blocked), None);
    }

    #[test]
    fn lru_skips_blocked() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        assert_eq!(p.displace(&|f| f == 0), Some(1));
        assert_eq!(p.displace(&|f| f == 0), None);
    }

    #[test]
    fn lru_remove_forgets() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        p.remove(0);
        assert_eq!(p.displace(&none_blocked), Some(1));
        assert_eq!(p.displace(&none_blocked), None);
    }

    #[test]
    fn weights_are_ignored_by_recency_policies() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        p.record_weight(0, 1e9); // LRU doesn't care how beneficial 0 is
        assert_eq!(p.displace(&none_blocked), Some(0));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new(3);
        p.record_access(0);
        p.record_access(1);
        p.record_access(2);
        // All referenced; first sweep clears bits, second displaces frame 0.
        assert_eq!(p.displace(&none_blocked), Some(0));
        // Re-referencing 1 saves it over 2.
        p.record_access(1);
        assert_eq!(p.displace(&none_blocked), Some(2));
    }

    #[test]
    fn clock_all_blocked_returns_none() {
        let mut p = ClockPolicy::new(2);
        p.record_access(0);
        p.record_access(1);
        assert_eq!(p.displace(&|_| true), None);
    }

    #[test]
    fn clock_empty_returns_none() {
        let mut p = ClockPolicy::new(0);
        assert_eq!(p.displace(&none_blocked), None);
    }

    #[test]
    fn lruk_prefers_ids_without_k_accesses() {
        let mut p = LruKPolicy::new(2);
        p.record_access(0);
        p.record_access(0); // 0 has K=2 accesses
        p.record_access(1); // 1 has 1 access -> infinite distance
        p.record_access(2);
        p.record_access(2);
        assert_eq!(p.displace(&none_blocked), Some(1));
    }

    #[test]
    fn lruk_displaces_largest_backward_k_distance() {
        let mut p = LruKPolicy::new(2);
        for _ in 0..2 {
            p.record_access(0);
        }
        for _ in 0..2 {
            p.record_access(1);
        }
        // 0's 2nd-last access is older than 1's.
        assert_eq!(p.displace(&none_blocked), Some(0));
        assert_eq!(p.displace(&none_blocked), Some(1));
        assert_eq!(p.displace(&none_blocked), None);
    }

    #[test]
    fn lruk_correlated_burst_does_not_save_frame() {
        // Classic LRU-K property: a burst of correlated accesses to frame 0
        // does not make it younger than steadily re-referenced frame 1 under
        // K=2, because only the K-th most recent access counts.
        let mut p = LruKPolicy::new(2);
        p.record_access(1);
        p.record_access(1);
        for _ in 0..10 {
            p.record_access(0);
        }
        p.record_access(1);
        p.record_access(1);
        // 0's K-th most recent (2nd-last) access is very recent; 1's is
        // also recent. 0 survived the burst; 1's kth = access 13. 0's kth =
        // access 11. So 0 is displaced despite being touched 10 times.
        assert_eq!(p.displace(&none_blocked), Some(0));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn lruk_rejects_zero_k() {
        LruKPolicy::new(0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(LruPolicy::new().name(), "lru");
        assert_eq!(ClockPolicy::new(1).name(), "clock");
        assert_eq!(LruKPolicy::new(2).name(), "lru-k");
    }
}
