//! Pluggable page-replacement policies for the buffer pool.
//!
//! Three classics are provided: LRU, Clock (second chance), and LRU-K —
//! the paper cites O'Neil et al.'s LRU-K (its ref. 5) and reuses its access-interval
//! idea for Index Buffer benefit accounting (see `aib-core::history`).

use std::collections::{BTreeMap, HashMap};

/// Frame index within the buffer pool.
pub type FrameId = usize;

/// A page-replacement policy.
///
/// The pool calls [`record_access`](ReplacementPolicy::record_access) on
/// every fetch and [`evict`](ReplacementPolicy::evict) when it needs a frame;
/// `evict` must skip frames for which `pinned` returns true and must forget
/// the frame it returns (the pool re-registers it on the next access).
pub trait ReplacementPolicy: Send {
    /// Notes that `frame` was just accessed.
    fn record_access(&mut self, frame: FrameId);
    /// Picks an unpinned victim frame and removes it from the policy's
    /// bookkeeping, or returns `None` if every tracked frame is pinned.
    fn evict(&mut self, pinned: &dyn Fn(FrameId) -> bool) -> Option<FrameId>;
    /// Forgets `frame` entirely (frame freed outside eviction).
    fn remove(&mut self, frame: FrameId);
    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Least-recently-used replacement.
#[derive(Debug, Default)]
pub struct LruPolicy {
    clock: u64,
    stamp_of: HashMap<FrameId, u64>,
    by_stamp: BTreeMap<u64, FrameId>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn record_access(&mut self, frame: FrameId) {
        if let Some(old) = self.stamp_of.remove(&frame) {
            self.by_stamp.remove(&old);
        }
        self.clock += 1;
        self.stamp_of.insert(frame, self.clock);
        self.by_stamp.insert(self.clock, frame);
    }

    fn evict(&mut self, pinned: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        let victim = self
            .by_stamp
            .iter()
            .map(|(&stamp, &frame)| (stamp, frame))
            .find(|&(_, frame)| !pinned(frame));
        let (stamp, frame) = victim?;
        self.by_stamp.remove(&stamp);
        self.stamp_of.remove(&frame);
        Some(frame)
    }

    fn remove(&mut self, frame: FrameId) {
        if let Some(stamp) = self.stamp_of.remove(&frame) {
            self.by_stamp.remove(&stamp);
        }
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Clock (second chance) replacement over a fixed frame count.
#[derive(Debug)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    present: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// Creates a clock over `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        ClockPolicy {
            referenced: vec![false; capacity],
            present: vec![false; capacity],
            hand: 0,
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn record_access(&mut self, frame: FrameId) {
        self.referenced[frame] = true;
        self.present[frame] = true;
    }

    fn evict(&mut self, pinned: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        let n = self.referenced.len();
        if n == 0 {
            return None;
        }
        // Two sweeps suffice: the first clears reference bits, the second
        // must find an unreferenced, unpinned, present frame if one exists.
        for _ in 0..2 * n {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if !self.present[f] || pinned(f) {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                self.present[f] = false;
                return Some(f);
            }
        }
        None
    }

    fn remove(&mut self, frame: FrameId) {
        self.present[frame] = false;
        self.referenced[frame] = false;
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

/// LRU-K replacement (O'Neil, O'Neil, Weikum; SIGMOD'93): evicts the frame
/// whose K-th most recent access lies furthest in the past. Frames with
/// fewer than K recorded accesses have infinite backward K-distance and are
/// evicted first, oldest first.
#[derive(Debug)]
pub struct LruKPolicy {
    k: usize,
    clock: u64,
    history: HashMap<FrameId, Vec<u64>>,
}

impl LruKPolicy {
    /// Creates an LRU-K policy.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "LRU-K requires k >= 1");
        LruKPolicy {
            k,
            clock: 0,
            history: HashMap::new(),
        }
    }
}

impl ReplacementPolicy for LruKPolicy {
    fn record_access(&mut self, frame: FrameId) {
        self.clock += 1;
        let h = self.history.entry(frame).or_default();
        h.push(self.clock);
        let k = self.k;
        if h.len() > k {
            h.remove(0);
        }
    }

    fn evict(&mut self, pinned: &dyn Fn(FrameId) -> bool) -> Option<FrameId> {
        // Candidate key: (has fewer than K accesses, backward distance,
        // oldest first-access) — max wins.
        let mut best: Option<(bool, u64, u64, FrameId)> = None;
        for (&frame, h) in &self.history {
            if pinned(frame) {
                continue;
            }
            let infinite = h.len() < self.k;
            let kth = *h.first().expect("history entries are never empty");
            let dist = self.clock - kth;
            let age = u64::MAX - kth; // older first access -> larger age
            let key = (infinite, dist, age, frame);
            if best.is_none_or(|b| (key.0, key.1, key.2) > (b.0, b.1, b.2)) {
                best = Some(key);
            }
        }
        let (_, _, _, frame) = best?;
        self.history.remove(&frame);
        Some(frame)
    }

    fn remove(&mut self, frame: FrameId) {
        self.history.remove(&frame);
    }

    fn name(&self) -> &'static str {
        "lru-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn none_pinned(_: FrameId) -> bool {
        false
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        p.record_access(2);
        p.record_access(0); // refresh 0
        assert_eq!(p.evict(&none_pinned), Some(1));
        assert_eq!(p.evict(&none_pinned), Some(2));
        assert_eq!(p.evict(&none_pinned), Some(0));
        assert_eq!(p.evict(&none_pinned), None);
    }

    #[test]
    fn lru_skips_pinned() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        assert_eq!(p.evict(&|f| f == 0), Some(1));
        assert_eq!(p.evict(&|f| f == 0), None);
    }

    #[test]
    fn lru_remove_forgets() {
        let mut p = LruPolicy::new();
        p.record_access(0);
        p.record_access(1);
        p.remove(0);
        assert_eq!(p.evict(&none_pinned), Some(1));
        assert_eq!(p.evict(&none_pinned), None);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new(3);
        p.record_access(0);
        p.record_access(1);
        p.record_access(2);
        // All referenced; first sweep clears bits, second evicts frame 0.
        assert_eq!(p.evict(&none_pinned), Some(0));
        // Re-referencing 1 saves it over 2.
        p.record_access(1);
        assert_eq!(p.evict(&none_pinned), Some(2));
    }

    #[test]
    fn clock_all_pinned_returns_none() {
        let mut p = ClockPolicy::new(2);
        p.record_access(0);
        p.record_access(1);
        assert_eq!(p.evict(&|_| true), None);
    }

    #[test]
    fn clock_empty_returns_none() {
        let mut p = ClockPolicy::new(0);
        assert_eq!(p.evict(&none_pinned), None);
    }

    #[test]
    fn lruk_prefers_frames_without_k_accesses() {
        let mut p = LruKPolicy::new(2);
        p.record_access(0);
        p.record_access(0); // 0 has K=2 accesses
        p.record_access(1); // 1 has 1 access -> infinite distance
        p.record_access(2);
        p.record_access(2);
        assert_eq!(p.evict(&none_pinned), Some(1));
    }

    #[test]
    fn lruk_evicts_largest_backward_k_distance() {
        let mut p = LruKPolicy::new(2);
        for _ in 0..2 {
            p.record_access(0);
        }
        for _ in 0..2 {
            p.record_access(1);
        }
        // 0's 2nd-last access is older than 1's.
        assert_eq!(p.evict(&none_pinned), Some(0));
        assert_eq!(p.evict(&none_pinned), Some(1));
        assert_eq!(p.evict(&none_pinned), None);
    }

    #[test]
    fn lruk_correlated_burst_does_not_save_frame() {
        // Classic LRU-K property: a burst of correlated accesses to frame 0
        // does not make it younger than steadily re-referenced frame 1 under
        // K=2, because only the K-th most recent access counts.
        let mut p = LruKPolicy::new(2);
        p.record_access(1);
        p.record_access(1);
        for _ in 0..10 {
            p.record_access(0);
        }
        p.record_access(1);
        p.record_access(1);
        // 0's K-th most recent (2nd-last) access is very recent; 1's is
        // also recent. 0 survived the burst; 1's kth = access 13. 0's kth =
        // access 11. So 0 is evicted despite being touched 10 times.
        assert_eq!(p.evict(&none_pinned), Some(0));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn lruk_rejects_zero_k() {
        LruKPolicy::new(0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(LruPolicy::new().name(), "lru");
        assert_eq!(ClockPolicy::new(1).name(), "clock");
        assert_eq!(LruKPolicy::new(2).name(), "lru-k");
    }
}
