//! Page, slot, and record identifiers.

use std::fmt;

/// Identifier of a disk page, allocated by the [`crate::disk::DiskManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Returns the raw index of the page.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Slot number of a tuple within a slotted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u16);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Record identifier: the physical address of a tuple.
///
/// The Index Buffer stores `(value, Rid)` entries; the `Rid`'s page component
/// is what page-skip accounting (`C[p]`, partition coverage) is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page containing the tuple.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl Rid {
    /// Creates a record id from raw parts.
    #[inline]
    pub fn new(page: u32, slot: u16) -> Self {
        Rid {
            page: PageId(page),
            slot: SlotId(slot),
        }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_ordering_is_page_major() {
        let a = Rid::new(1, 9);
        let b = Rid::new(2, 0);
        assert!(a < b);
        let c = Rid::new(1, 10);
        assert!(a < c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rid::new(3, 7).to_string(), "P3:s7");
        assert_eq!(PageId(12).to_string(), "P12");
        assert_eq!(SlotId(4).to_string(), "s4");
    }

    #[test]
    fn page_id_index_roundtrip() {
        assert_eq!(PageId(42).index(), 42);
    }
}
