//! The database buffer: a fixed set of in-memory frames caching disk pages,
//! with pinning and pluggable displacement.
//!
//! The Adaptive Index Buffer "resides within the database buffer" (paper
//! §III); heap pages flow through this pool, so table-scan I/O behaves like
//! a real system: a scan of a large table cycles pages through the pool and
//! every unskipped page costs a disk read once the table exceeds pool
//! capacity. Resident frames are charged byte-accurately to the shared
//! [`MemoryBudget`] under [`BudgetComponent::BufferPool`]: claiming a fresh
//! frame reserves [`PAGE_SIZE`] bytes, and when the governor denies the
//! reservation the pool displaces a resident page instead (byte-neutral),
//! so index-buffer growth on the other side of the budget shrinks the
//! pool's effective working set — the co-tenancy the paper assumes by
//! placing the Index Buffer *inside* the database buffer.
//!
//! # Lock order
//!
//! The pool's three lock kinds are **leaves** of the engine-wide hierarchy
//! (`catalog → space → pool`; see DESIGN.md "Concurrency model"): callers may
//! hold the engine's catalog or space locks while pinning pages here, but no
//! pool method ever calls back out into engine state, so no pool lock is ever
//! held around a catalog or space acquisition. Internally the order is
//!
//! 1. `state` (page table, free list, policy) — never held across I/O;
//! 2. per-frame `RwLock`s — acquired after `state` only for frames proven
//!    unpinned (no holders, cannot block), otherwise after releasing `state`;
//! 3. `disk` — taken last, for the duration of one read/write/batch, never
//!    while `state` is held.
//!
//! Wall-clock I/O stalls ([`BufferPoolConfig::io_wait`]) honour the same
//! rule: the thread sleeps holding only the frame lock of the page being
//! filled, exactly the frames a concurrent fetcher of that page must wait on
//! anyway.

// aib-lint: allow-file(no-index) — `frames` and `pins` are fixed-size
// arrays allocated at construction and only ever indexed by FrameIds the
// pool itself handed out (from the page table or the policy), which are
// `< frames.len()` by construction.
// aib-lint: allow-file(sync-shim) — the pool's frame latches are
// `Arc`-based `parking_lot` guards (`ArcRwLockReadGuard`/`Write`) that the
// shim cannot express, and `AtomicU32` pin counts have no shim type; the
// pool is driven by the model through the budget and heap layers instead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RawRwLock, RwLock};

use crate::budget::{BudgetComponent, MemoryBudget, MemoryUsage};
use crate::disk::{DiskBackend, DiskManager, PAGE_SIZE};
use crate::error::StorageError;
use crate::replacement::{DisplacementPolicy, FrameId, LruPolicy};
use crate::rid::PageId;
use crate::stats::IoStats;

/// Buffer pool construction parameters.
pub struct BufferPoolConfig {
    /// Number of page frames.
    pub frames: usize,
    /// Displacement policy; defaults to LRU.
    pub policy: Box<dyn DisplacementPolicy>,
    /// Shared memory governor; defaults to an unlimited budget.
    pub budget: Arc<MemoryBudget>,
    /// When `true`, a page-read miss *stalls the calling thread* for the cost
    /// model's `read_us` per missed page, in wall time, instead of only
    /// accruing simulated microseconds. The stall happens after the disk
    /// mutex is released, so concurrent clients overlap their I/O waits the
    /// way they would against a real disk with queue depth — this is what
    /// makes multi-client read throughput measurable on the simulated disk.
    /// Off by default: single-threaded experiments keep the pure
    /// virtual-time accounting.
    pub io_wait: bool,
}

impl BufferPoolConfig {
    /// A pool with `frames` frames and LRU displacement.
    pub fn lru(frames: usize) -> Self {
        BufferPoolConfig {
            frames,
            policy: Box::new(LruPolicy::new()),
            budget: Arc::new(MemoryBudget::unlimited()),
            io_wait: false,
        }
    }

    /// A pool with `frames` frames and the given policy.
    pub fn with_policy(frames: usize, policy: Box<dyn DisplacementPolicy>) -> Self {
        BufferPoolConfig {
            frames,
            policy,
            budget: Arc::new(MemoryBudget::unlimited()),
            io_wait: false,
        }
    }

    /// Attaches a shared memory governor (builder-style).
    pub fn with_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.budget = budget;
        self
    }

    /// Enables wall-clock I/O stalls on read misses (builder-style); see
    /// [`BufferPoolConfig::io_wait`].
    pub fn with_io_wait(mut self, io_wait: bool) -> Self {
        self.io_wait = io_wait;
        self
    }
}

/// Contents of one buffer frame.
#[derive(Debug)]
struct FrameCell {
    page: Option<PageId>,
    dirty: bool,
    data: Box<[u8; PAGE_SIZE]>,
}

impl MemoryUsage for FrameCell {
    /// A frame costs a full page image while it holds one, nothing while
    /// free (the backing allocation is reusable capacity, not residency).
    fn footprint(&self) -> usize {
        if self.page.is_some() {
            PAGE_SIZE
        } else {
            0
        }
    }
}

/// Pool bookkeeping guarded by a single mutex (the frame *contents* are
/// guarded per-frame, so I/O and page reads proceed without this lock).
struct PoolState {
    page_table: HashMap<PageId, FrameId>,
    free: Vec<FrameId>,
    policy: Box<dyn DisplacementPolicy>,
}

/// The buffer pool. Cheaply shareable via [`Arc`]; page guards keep their
/// frame pinned for their lifetime.
pub struct BufferPool {
    frames: Vec<Arc<RwLock<FrameCell>>>,
    /// Per-frame pin counts. Increments happen under the state lock (so
    /// eviction scans see a stable floor); decrements are lock-free, which
    /// keeps guard drops off the state mutex entirely.
    pins: Vec<AtomicU32>,
    state: Mutex<PoolState>,
    disk: Mutex<Box<dyn DiskBackend>>,
    stats: Arc<IoStats>,
    budget: Arc<MemoryBudget>,
    /// Wall-clock microseconds a read miss stalls the calling thread
    /// (0 = disabled); see [`BufferPoolConfig::io_wait`].
    io_wait_us: u64,
}

impl BufferPool {
    /// Builds a pool over the simulated `disk` — the historical constructor
    /// every bench and test uses; equivalent to
    /// [`BufferPool::with_backend`] with a boxed [`DiskManager`].
    ///
    /// # Panics
    /// If `config.frames == 0`.
    pub fn new(disk: DiskManager, config: BufferPoolConfig) -> Arc<Self> {
        Self::with_backend(Box::new(disk), config)
    }

    /// Builds a pool over any [`DiskBackend`] — the seam through which the
    /// engine picks between the in-memory simulation and the file-backed
    /// durable store.
    ///
    /// # Panics
    /// If `config.frames == 0`.
    pub fn with_backend(disk: Box<dyn DiskBackend>, config: BufferPoolConfig) -> Arc<Self> {
        assert!(config.frames > 0, "buffer pool needs at least one frame");
        let stats = disk.stats();
        let io_wait_us = if config.io_wait {
            disk.cost_model().read_us
        } else {
            0
        };
        let frames = (0..config.frames)
            .map(|_| {
                Arc::new(RwLock::new(FrameCell {
                    page: None,
                    dirty: false,
                    data: Box::new([0; PAGE_SIZE]),
                }))
            })
            .collect();
        Arc::new(BufferPool {
            frames,
            pins: (0..config.frames).map(|_| AtomicU32::new(0)).collect(),
            state: Mutex::new(PoolState {
                page_table: HashMap::new(),
                free: (0..config.frames).rev().collect(),
                policy: config.policy,
            }),
            disk: Mutex::new(disk),
            stats,
            budget: config.budget,
            io_wait_us,
        })
    }

    /// The shared I/O statistics (same sink the disk manager reports to).
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The shared memory governor this pool charges its frames to.
    pub fn budget(&self) -> Arc<MemoryBudget> {
        Arc::clone(&self.budget)
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Allocates a brand-new zeroed page and returns it pinned for writing.
    /// No disk read is charged; the page reaches disk on eviction or flush.
    pub fn new_page(self: &Arc<Self>) -> Result<(PageId, PageWriteGuard), StorageError> {
        let pid = self.disk.lock().allocate()?;
        let (frame, mut guard) = self.prepare_frame(pid)?;
        // The claimed frame may hold an evicted dirty page; persist it first.
        if let (Some(old), true) = (guard.page, guard.dirty) {
            self.disk.lock().write(old, &guard.data)?;
        }
        guard.page = Some(pid);
        guard.dirty = true;
        guard.data.fill(0);
        Ok((
            pid,
            PageWriteGuard {
                pool: Arc::clone(self),
                frame,
                guard: Some(guard),
            },
        ))
    }

    /// Fetches `pid` for reading, pinning its frame.
    pub fn fetch_read(self: &Arc<Self>, pid: PageId) -> Result<PageReadGuard, StorageError> {
        let (frame, guard) = self.fetch(pid)?;
        Ok(PageReadGuard {
            pool: Arc::clone(self),
            frame,
            guard: Some(guard),
        })
    }

    /// Fetches `pid` for writing, pinning its frame and marking it dirty.
    pub fn fetch_write(self: &Arc<Self>, pid: PageId) -> Result<PageWriteGuard, StorageError> {
        let (frame, guard) = self.fetch_mut(pid)?;
        Ok(PageWriteGuard {
            pool: Arc::clone(self),
            frame,
            guard: Some(guard),
        })
    }

    /// Shared fetch: returns the pinned frame id and a read guard on its cell.
    fn fetch(
        self: &Arc<Self>,
        pid: PageId,
    ) -> Result<(FrameId, ArcRwLockReadGuard<RawRwLock, FrameCell>), StorageError> {
        if let Some(frame) = self.try_pin_resident(pid) {
            let guard = RwLock::read_arc(&self.frames[frame]);
            debug_assert_eq!(guard.page, Some(pid));
            return Ok((frame, guard));
        }
        let (frame, write_guard) = self.load_into_frame(pid)?;
        Ok((frame, ArcRwLockWriteGuard::downgrade(write_guard)))
    }

    /// Exclusive fetch: like [`fetch`](Self::fetch) but returns a write guard
    /// and marks the frame dirty.
    fn fetch_mut(
        self: &Arc<Self>,
        pid: PageId,
    ) -> Result<(FrameId, ArcRwLockWriteGuard<RawRwLock, FrameCell>), StorageError> {
        if let Some(frame) = self.try_pin_resident(pid) {
            let mut guard = RwLock::write_arc(&self.frames[frame]);
            debug_assert_eq!(guard.page, Some(pid));
            guard.dirty = true;
            return Ok((frame, guard));
        }
        let (frame, mut guard) = self.load_into_frame(pid)?;
        guard.dirty = true;
        Ok((frame, guard))
    }

    /// If `pid` is resident, pins it and records the access. The caller then
    /// locks the frame; pinning guarantees the mapping cannot change
    /// underneath it.
    fn try_pin_resident(&self, pid: PageId) -> Option<FrameId> {
        let mut state = self.state.lock();
        let frame = *state.page_table.get(&pid)?;
        self.pins[frame].fetch_add(1, Ordering::Relaxed);
        state.policy.record_access(frame);
        self.stats.record_hit();
        Some(frame)
    }

    /// Pins every already-resident page of `pids` in one pass under the
    /// state lock, returning one entry per input page (`None` = not
    /// resident, fetch it through the ordinary miss path). Scans use this to
    /// amortise pool bookkeeping over a whole page batch: pinning is one
    /// lock acquisition per batch instead of two per page, which is what
    /// lets parallel scan workers share the pool without serialising on it.
    ///
    /// A pinned frame cannot be evicted or remapped, so callers may hold
    /// the returned pins across the batch and lock each frame only while
    /// actually reading it — the same page-level isolation as repeated
    /// [`BufferPool::fetch_read`] calls.
    pub fn pin_resident(self: &Arc<Self>, pids: &[PageId]) -> Vec<Option<PinnedPage>> {
        let mut pinned = Vec::with_capacity(pids.len());
        let mut hits = 0u64;
        {
            let mut state = self.state.lock();
            for &pid in pids {
                match state.page_table.get(&pid) {
                    Some(&frame) => {
                        self.pins[frame].fetch_add(1, Ordering::Relaxed);
                        state.policy.record_access(frame);
                        hits += 1;
                        pinned.push(Some(PinnedPage {
                            pool: Arc::clone(self),
                            frame,
                            pid,
                        }));
                    }
                    None => pinned.push(None),
                }
            }
        }
        self.stats.record_hits(hits);
        pinned
    }

    /// Miss path: claims a frame for `pid` (possibly evicting), performs the
    /// write-back and the disk read, and returns the frame write-locked and
    /// pinned.
    fn load_into_frame(
        self: &Arc<Self>,
        pid: PageId,
    ) -> Result<(FrameId, ArcRwLockWriteGuard<RawRwLock, FrameCell>), StorageError> {
        let (frame, mut guard) = self.prepare_frame(pid)?;
        // Another thread may have raced us and mapped pid first; in that
        // case prepare_frame pinned the resident frame instead.
        if guard.page == Some(pid) {
            return Ok((frame, guard));
        }
        // Write back the evicted page, then read ours — both without the
        // state lock, so other frames stay usable during I/O. Concurrent
        // fetchers of `pid` block on this frame's lock until we are done.
        let fill = (|| {
            if let (Some(old), true) = (guard.page, guard.dirty) {
                self.disk.lock().write(old, &guard.data)?;
            }
            self.disk.lock().read(pid, &mut guard.data)
        })();
        match fill {
            Ok(()) => {
                // Stall outside the disk mutex: concurrent misses on *other*
                // pages overlap their waits; fetchers of this same page block
                // on the frame lock, exactly as they would wait for the same
                // physical read.
                self.io_stall(1);
                guard.page = Some(pid);
                guard.dirty = false;
                Ok((frame, guard))
            }
            Err(e) => {
                // Undo the mapping: the frame now holds garbage. Returning
                // it to the free list ends its residency, so its page image
                // comes off the governor's books.
                let mut state = self.state.lock();
                state.page_table.remove(&pid);
                self.pins[frame].fetch_sub(1, Ordering::Release);
                state.policy.remove(frame);
                state.free.push(frame);
                guard.page = None;
                guard.dirty = false;
                self.budget.release(BudgetComponent::BufferPool, PAGE_SIZE);
                Err(e)
            }
        }
    }

    /// Claims a frame for `pid` and returns it pinned and write-locked.
    ///
    /// On a miss, the frame's write lock is acquired *before* the mapping is
    /// published (safe because an unpinned frame has no lock holders), so no
    /// other thread can observe the frame before the caller fills it. If
    /// `pid` is already resident, the resident frame is pinned and returned —
    /// callers detect this via `guard.page == Some(pid)`.
    fn prepare_frame(
        &self,
        pid: PageId,
    ) -> Result<(FrameId, ArcRwLockWriteGuard<RawRwLock, FrameCell>), StorageError> {
        let mut state = self.state.lock();
        if let Some(&frame) = state.page_table.get(&pid) {
            self.pins[frame].fetch_add(1, Ordering::Relaxed);
            state.policy.record_access(frame);
            self.stats.record_hit();
            drop(state);
            let guard = RwLock::write_arc(&self.frames[frame]);
            return Ok((frame, guard));
        }
        self.stats.record_miss();
        let frame = self.claim_frame(&mut state)?;
        // Unpinned frames have no guard holders, so this cannot block while
        // we hold the state lock.
        let guard = RwLock::write_arc(&self.frames[frame]);
        if let Some(old_pid) = guard.page {
            state.page_table.remove(&old_pid);
        }
        state.page_table.insert(pid, frame);
        self.pins[frame].fetch_add(1, Ordering::Relaxed);
        state.policy.record_access(frame);
        Ok((frame, guard))
    }

    /// Claims one frame for a not-yet-resident page, under the state lock.
    ///
    /// Occupying a fresh frame grows resident bytes by one page image and
    /// must clear the governor; displacing swaps one resident page for
    /// another (byte-neutral), so it needs no reservation. A denied
    /// reservation therefore degrades into displacement: the pool keeps
    /// working, just with a smaller working set. Shared by
    /// [`BufferPool::prepare_frame`] and [`BufferPool::pin_batch`].
    fn claim_frame(&self, state: &mut PoolState) -> Result<FrameId, StorageError> {
        match state.free.pop() {
            Some(f)
                if self
                    .budget
                    .try_reserve(BudgetComponent::BufferPool, PAGE_SIZE) =>
            {
                Ok(f)
            }
            Some(f) => match self.displace_from(state) {
                Ok(victim) => {
                    state.free.push(f);
                    Ok(victim)
                }
                // Every resident page is pinned (e.g. a scan batch holds
                // them) but physical capacity exists: overshoot the governor
                // rather than fail a fetch real frames could serve. The
                // charge keeps accounting exact; later claims are denied
                // into displacement until the overshoot is worked off.
                Err(StorageError::PoolExhausted) => {
                    self.budget.charge(BudgetComponent::BufferPool, PAGE_SIZE);
                    Ok(f)
                }
                Err(e) => {
                    state.free.push(f);
                    Err(e)
                }
            },
            None => self.displace_from(state),
        }
    }

    /// Pins *every* page of `pids` — residents and misses alike — doing all
    /// pool bookkeeping in one state-lock acquisition and all miss I/O in one
    /// disk request ([`DiskManager::read_batch`]). This is the sweep read the
    /// scan fast path feeds whole runs of unskipped pages into: per page it
    /// costs two atomic pin updates and a hash probe, not a lock round-trip
    /// and an individual disk call.
    ///
    /// Like [`BufferPool::pin_resident`], the returned pins (input order)
    /// block eviction without holding frame locks, so callers lock one frame
    /// at a time while visiting — the pool's locking discipline is unchanged.
    /// `pids` must not contain duplicates (heap sweeps never do). On error
    /// the pool is left consistent and nothing stays pinned.
    pub fn pin_batch(self: &Arc<Self>, pids: &[PageId]) -> Result<Vec<PinnedPage>, StorageError> {
        struct Miss {
            /// Index into `pids` of the page this frame will hold.
            at: usize,
            frame: FrameId,
            guard: ArcRwLockWriteGuard<RawRwLock, FrameCell>,
        }
        let mut misses: Vec<Miss> = Vec::new();
        let mut frames: Vec<FrameId> = Vec::with_capacity(pids.len());
        {
            let mut state = self.state.lock();
            for (i, &pid) in pids.iter().enumerate() {
                debug_assert!(!pids[..i].contains(&pid), "pin_batch pids must be distinct");
                if let Some(&frame) = state.page_table.get(&pid) {
                    self.pins[frame].fetch_add(1, Ordering::Relaxed);
                    state.policy.record_access(frame);
                    frames.push(frame);
                    continue;
                }
                match self.claim_frame(&mut state) {
                    Ok(frame) => {
                        // Unpinned frames have no guard holders: non-blocking.
                        let guard = RwLock::write_arc(&self.frames[frame]);
                        if let Some(old_pid) = guard.page {
                            state.page_table.remove(&old_pid);
                        }
                        state.page_table.insert(pid, frame);
                        self.pins[frame].fetch_add(1, Ordering::Relaxed);
                        state.policy.record_access(frame);
                        frames.push(frame);
                        misses.push(Miss {
                            at: i,
                            frame,
                            guard,
                        });
                    }
                    Err(e) => {
                        // Unwind so the pool is as if the call never
                        // happened. No frame data was touched yet, so a
                        // claimed frame that evicted a victim simply gets
                        // its victim's mapping restored (no write-back, no
                        // data loss — this path is reachable under ordinary
                        // pin pressure); fresh frames go back to the free
                        // list and return their reservation.
                        for &frame in &frames {
                            self.pins[frame].fetch_sub(1, Ordering::Release);
                        }
                        for m in &mut misses {
                            state.page_table.remove(&pids[m.at]);
                            match m.guard.page {
                                Some(old_pid) => {
                                    state.page_table.insert(old_pid, m.frame);
                                }
                                None => {
                                    state.policy.remove(m.frame);
                                    state.free.push(m.frame);
                                    self.budget.release(BudgetComponent::BufferPool, PAGE_SIZE);
                                }
                            }
                        }
                        return Err(e);
                    }
                }
            }
        }
        let hits = (pids.len() - misses.len()) as u64;
        self.stats.record_hits(hits);
        self.stats.record_misses(misses.len() as u64);
        if !misses.is_empty() {
            // One disk-lock acquisition for the whole run: write back every
            // evicted dirty page, then fill all miss frames in one batched
            // read request.
            let fill = (|| {
                let mut disk = self.disk.lock();
                for m in &misses {
                    if let (Some(old), true) = (m.guard.page, m.guard.dirty) {
                        disk.write(old, &m.guard.data)?;
                    }
                }
                let mut reqs: Vec<(PageId, &mut [u8; PAGE_SIZE])> = misses
                    .iter_mut()
                    .map(|m| (pids[m.at], &mut *m.guard.data))
                    .collect();
                disk.read_batch(&mut reqs)
            })();
            match fill {
                Ok(()) => {
                    // One stall for the whole batched request, after the disk
                    // mutex is released (see `load_into_frame`): the batch is
                    // one disk operation, so it costs one sequential wait of
                    // `read_us` per page, overlappable across client threads.
                    self.io_stall(misses.len() as u64);
                    for m in &mut misses {
                        m.guard.page = Some(pids[m.at]);
                        m.guard.dirty = false;
                    }
                }
                Err(e) => {
                    // Same undo as `load_into_frame`'s I/O error path: the
                    // miss frames hold garbage, so end their residency; the
                    // hit pins are released too.
                    let miss_frames: std::collections::HashSet<FrameId> =
                        misses.iter().map(|m| m.frame).collect();
                    let mut state = self.state.lock();
                    for m in &mut misses {
                        state.page_table.remove(&pids[m.at]);
                        self.pins[m.frame].fetch_sub(1, Ordering::Release);
                        state.policy.remove(m.frame);
                        state.free.push(m.frame);
                        m.guard.page = None;
                        m.guard.dirty = false;
                        self.budget.release(BudgetComponent::BufferPool, PAGE_SIZE);
                    }
                    for &frame in frames.iter().filter(|f| !miss_frames.contains(f)) {
                        self.pins[frame].fetch_sub(1, Ordering::Release);
                    }
                    return Err(e);
                }
            }
        }
        drop(misses);
        Ok(frames
            .into_iter()
            .zip(pids)
            .map(|(frame, &pid)| PinnedPage {
                pool: Arc::clone(self),
                frame,
                pid,
            })
            .collect())
    }

    /// Blocks the calling thread for the simulated latency of `pages` page
    /// reads when [`BufferPoolConfig::io_wait`] is enabled; no-op otherwise.
    /// Never called with the state or disk mutex held.
    fn io_stall(&self, pages: u64) {
        if self.io_wait_us > 0 && pages > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.io_wait_us * pages));
        }
    }

    /// Picks a displacement victim, counting it against the governor.
    fn displace_from(&self, state: &mut PoolState) -> Result<FrameId, StorageError> {
        let frame = state
            .policy
            .displace(&|f| self.pins[f].load(Ordering::Acquire) > 0)
            .ok_or(StorageError::PoolExhausted)?;
        self.budget.record_displacements(1);
        Ok(frame)
    }

    /// Unpins a frame (guard drop). Lock-free: pin counts are atomics, and
    /// displacement double-checks them under the state lock.
    fn unpin(&self, frame: FrameId) {
        let prev = self.pins[frame].fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "unpin without pin");
    }

    /// Shadow-model hook (`invariant-checks` feature): the bytes the
    /// governor charges to [`BudgetComponent::BufferPool`] must equal the
    /// pool's resident footprint — every frame admission reserved, every
    /// eviction released, nothing double-counted. The index-space side of
    /// the same check lives in `aib-core::invariants::verify_space`.
    #[cfg(feature = "invariant-checks")]
    pub fn verify_budget(&self) -> Result<(), String> {
        let charged = self.budget.used(BudgetComponent::BufferPool);
        let footprint = self.footprint();
        if charged == footprint {
            Ok(())
        } else {
            Err(format!(
                "governor charges {charged} bytes to BufferPool, resident \
                 footprint is {footprint}"
            ))
        }
    }

    /// Writes every dirty resident page back to disk.
    pub fn flush_all(&self) -> Result<(), StorageError> {
        for cell in &self.frames {
            let mut guard = cell.write();
            if let (Some(pid), true) = (guard.page, guard.dirty) {
                self.disk.lock().write(pid, &guard.data)?;
                guard.dirty = false;
            }
        }
        Ok(())
    }

    /// Checkpoint hook: flushes every dirty page to the backend, then asks
    /// the backend to make them durable ([`DiskBackend::sync`] — fsync for
    /// the file backend, a no-op for the simulation).
    pub fn sync(&self) -> Result<(), StorageError> {
        self.flush_all()?;
        self.disk.lock().sync()
    }

    /// Recovery hook: allocates backend pages until `pid` exists, so WAL
    /// replay can address the exact page ids the pre-crash execution used
    /// even when intervening ids belonged to non-heap (e.g. paged-index)
    /// pages that recovery does not rebuild. Skipped ids stay zeroed — a
    /// valid empty slotted page — and simply leak; the recovery-free
    /// contract trades that slack for not logging adaptation state.
    pub fn ensure_page(&self, pid: PageId) -> Result<(), StorageError> {
        let mut disk = self.disk.lock();
        while disk.num_pages() <= pid.index() {
            disk.allocate()?;
        }
        Ok(())
    }

    /// Crash-injection passthrough to [`DiskBackend::fail_next_sync`]:
    /// the next [`BufferPool::sync`] fails after a partial flush. Test hook.
    pub fn fail_next_sync(&self) {
        self.disk.lock().fail_next_sync();
    }
}

impl MemoryUsage for BufferPool {
    /// Bytes resident across all occupied frames (free frames cost nothing;
    /// see `FrameCell`'s impl).
    fn footprint(&self) -> usize {
        let free = self.state.lock().free.len();
        (self.frames.len() - free) * PAGE_SIZE
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("frames", &self.frames.len())
            .finish_non_exhaustive()
    }
}

/// A page pinned by [`BufferPool::pin_resident`] but not yet locked. The
/// pin blocks eviction and remapping; [`PinnedPage::read`] takes the
/// frame's read lock when the caller is ready to look at the bytes.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    frame: FrameId,
    pid: PageId,
}

impl PinnedPage {
    /// The pinned page id.
    pub fn pid(&self) -> PageId {
        self.pid
    }

    /// Locks the frame for reading, converting the pin into a full guard.
    pub fn read(self) -> PageReadGuard {
        let guard = RwLock::read_arc(&self.pool.frames[self.frame]);
        debug_assert_eq!(guard.page, Some(self.pid), "pin kept the mapping");
        let pool = Arc::clone(&self.pool);
        let frame = self.frame;
        std::mem::forget(self); // the guard inherits this pin
        PageReadGuard {
            pool,
            frame,
            guard: Some(guard),
        }
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

impl std::fmt::Debug for PinnedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage")
            .field("frame", &self.frame)
            .field("pid", &self.pid)
            .finish()
    }
}

/// Read access to a pinned page. Derefs to the page image.
pub struct PageReadGuard {
    pool: Arc<BufferPool>,
    frame: FrameId,
    guard: Option<ArcRwLockReadGuard<RawRwLock, FrameCell>>,
}

impl std::ops::Deref for PageReadGuard {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        // `guard` is Some from construction until Drop, the only taker.
        // aib-lint: allow(no-panic) — Deref cannot return an error
        &self.guard.as_ref().expect("guard live until drop").data
    }
}

impl Drop for PageReadGuard {
    fn drop(&mut self) {
        // Release the frame lock before unpinning so a concurrent evictor
        // that sees pin == 0 can immediately take the write lock.
        drop(self.guard.take());
        self.pool.unpin(self.frame);
    }
}

impl std::fmt::Debug for PageReadGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageReadGuard")
            .field("frame", &self.frame)
            .finish_non_exhaustive()
    }
}

/// Write access to a pinned page. Derefs to the page image; the frame is
/// marked dirty at fetch time.
pub struct PageWriteGuard {
    pool: Arc<BufferPool>,
    frame: FrameId,
    guard: Option<ArcRwLockWriteGuard<RawRwLock, FrameCell>>,
}

impl std::ops::Deref for PageWriteGuard {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        // `guard` is Some from construction until Drop, the only taker.
        // aib-lint: allow(no-panic) — Deref cannot return an error
        &self.guard.as_ref().expect("guard live until drop").data
    }
}

impl std::ops::DerefMut for PageWriteGuard {
    fn deref_mut(&mut self) -> &mut Self::Target {
        // `guard` is Some from construction until Drop, the only taker.
        // aib-lint: allow(no-panic) — Deref cannot return an error
        &mut self.guard.as_mut().expect("guard live until drop").data
    }
}

impl Drop for PageWriteGuard {
    fn drop(&mut self) {
        drop(self.guard.take());
        self.pool.unpin(self.frame);
    }
}

impl std::fmt::Debug for PageWriteGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageWriteGuard")
            .field("frame", &self.frame)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::CostModel;
    use crate::replacement::LruKPolicy;

    fn pool(frames: usize) -> Arc<BufferPool> {
        BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(frames),
        )
    }

    #[test]
    fn new_page_then_read_back() {
        let pool = pool(4);
        let (pid, mut w) = pool.new_page().unwrap();
        w[0] = 42;
        drop(w);
        let r = pool.fetch_read(pid).unwrap();
        assert_eq!(r[0], 42);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let pool = pool(2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let (pid, mut w) = pool.new_page().unwrap();
            w[0] = i;
            pids.push(pid);
        }
        // All five pages round-trip through a two-frame pool.
        for (i, pid) in pids.iter().enumerate() {
            let r = pool.fetch_read(*pid).unwrap();
            assert_eq!(r[0], i as u8, "page {pid} survived eviction");
        }
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool(2);
        let (p0, g0) = pool.new_page().unwrap();
        let (_p1, g1) = pool.new_page().unwrap();
        // Both frames pinned: a third page cannot enter.
        assert_eq!(pool.new_page().err(), Some(StorageError::PoolExhausted));
        drop(g1);
        // Now one frame is free.
        let (_p2, g2) = pool.new_page().unwrap();
        drop(g2);
        drop(g0);
        let r = pool.fetch_read(p0).unwrap();
        assert_eq!(r.len(), PAGE_SIZE);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = pool(2);
        let (pid, w) = pool.new_page().unwrap();
        drop(w);
        let before = pool.stats().snapshot();
        drop(pool.fetch_read(pid).unwrap()); // hit
        drop(pool.fetch_read(pid).unwrap()); // hit
        let after = pool.stats().snapshot().since(&before);
        assert_eq!(after.buffer_hits, 2);
        assert_eq!(after.buffer_misses, 0);

        // Evict pid by filling the pool, then fetch -> miss.
        let (_a, ga) = pool.new_page().unwrap();
        let (_b, gb) = pool.new_page().unwrap();
        drop((ga, gb));
        let before = pool.stats().snapshot();
        drop(pool.fetch_read(pid).unwrap());
        let after = pool.stats().snapshot().since(&before);
        assert_eq!(after.buffer_misses, 1);
        assert_eq!(after.page_reads, 1);
    }

    #[test]
    fn flush_all_writes_dirty_pages() {
        let pool = pool(4);
        let (pid, mut w) = pool.new_page().unwrap();
        w[7] = 9;
        drop(w);
        let before = pool.stats().snapshot();
        pool.flush_all().unwrap();
        let after = pool.stats().snapshot().since(&before);
        assert_eq!(after.page_writes, 1);
        // Second flush: nothing dirty.
        let before = pool.stats().snapshot();
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().snapshot().since(&before).page_writes, 0);
        // Data still correct via a fresh read.
        let r = pool.fetch_read(pid).unwrap();
        assert_eq!(r[7], 9);
    }

    #[test]
    fn fetch_unknown_page_fails_cleanly() {
        let pool = pool(1);
        let err = pool.fetch_read(PageId(99)).unwrap_err();
        assert_eq!(err, StorageError::UnknownPage(PageId(99)));
        // The pool is still fully usable afterwards (frame was released).
        let (pid, w) = pool.new_page().unwrap();
        drop(w);
        assert!(pool.fetch_read(pid).is_ok());
    }

    #[test]
    fn write_guard_mutations_visible_to_later_readers() {
        let pool = pool(2);
        let (pid, w) = pool.new_page().unwrap();
        drop(w);
        {
            let mut w = pool.fetch_write(pid).unwrap();
            w[100] = 7;
        }
        let r = pool.fetch_read(pid).unwrap();
        assert_eq!(r[100], 7);
    }

    #[test]
    fn works_with_lruk_policy() {
        let disk = DiskManager::new(CostModel::free());
        let pool = BufferPool::new(
            disk,
            BufferPoolConfig::with_policy(2, Box::new(LruKPolicy::new(2))),
        );
        let mut pids = Vec::new();
        for i in 0..4u8 {
            let (pid, mut w) = pool.new_page().unwrap();
            w[0] = i;
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.fetch_read(*pid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn budget_denial_shrinks_working_set_instead_of_failing() {
        // 4 frames, but the governor only grants two page images: the pool
        // must displace within a 2-page working set and never touch the
        // other two frames.
        let budget = Arc::new(
            MemoryBudget::unlimited()
                .with_component_limit(BudgetComponent::BufferPool, 2 * PAGE_SIZE),
        );
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(4).with_budget(Arc::clone(&budget)),
        );
        let mut pids = Vec::new();
        for i in 0..6u8 {
            let (pid, mut w) = pool.new_page().unwrap();
            w[0] = i;
            pids.push(pid);
        }
        assert_eq!(budget.used(BudgetComponent::BufferPool), 2 * PAGE_SIZE);
        assert_eq!(pool.footprint(), 2 * PAGE_SIZE, "two frames stay free");
        assert!(budget.denials() >= 4, "third..sixth page denied a frame");
        assert!(
            budget.displacements() >= 4,
            "denials degrade to displacement"
        );
        // Data still correct through the shrunken pool.
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.fetch_read(*pid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn pinned_working_set_overshoots_budget_instead_of_failing() {
        // One-page budget, but the only resident page is pinned when the
        // second claim arrives: with free frames available the pool must
        // charge the overshoot and serve the fetch, not error.
        let budget = Arc::new(
            MemoryBudget::unlimited().with_component_limit(BudgetComponent::BufferPool, PAGE_SIZE),
        );
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(2).with_budget(Arc::clone(&budget)),
        );
        let (_p0, g0) = pool.new_page().unwrap();
        let (_p1, g1) = pool.new_page().unwrap();
        assert_eq!(
            budget.used(BudgetComponent::BufferPool),
            2 * PAGE_SIZE,
            "overshoot is charged exactly"
        );
        assert!(budget.denials() >= 1);
        drop((g0, g1));
        // With pins released, further growth is denied back into
        // displacement: residency does not keep climbing.
        let (_p2, g2) = pool.new_page().unwrap();
        drop(g2);
        assert_eq!(budget.used(BudgetComponent::BufferPool), 2 * PAGE_SIZE);
    }

    #[test]
    fn unlimited_budget_tracks_resident_bytes() {
        let pool = pool(4);
        let budget = pool.budget();
        let (_pid, w) = pool.new_page().unwrap();
        drop(w);
        assert_eq!(budget.used(BudgetComponent::BufferPool), PAGE_SIZE);
        assert_eq!(budget.high_water(), PAGE_SIZE);
        assert_eq!(pool.footprint(), PAGE_SIZE);
    }

    #[test]
    fn pin_batch_mixes_hits_and_misses_with_batched_io() {
        // All-resident case: every page is a hit, no I/O.
        let big = pool(4);
        let mut pids = Vec::new();
        for i in 0..3u8 {
            let (pid, mut w) = big.new_page().unwrap();
            w[0] = i;
            pids.push(pid);
        }
        let before = big.stats().snapshot();
        let pins = big.pin_batch(&pids).unwrap();
        for (i, pin) in pins.into_iter().enumerate() {
            assert_eq!(pin.pid(), pids[i]);
            assert_eq!(pin.read()[0], i as u8);
        }
        let d = big.stats().snapshot().since(&before);
        assert_eq!((d.buffer_hits, d.buffer_misses, d.page_reads), (3, 0, 0));

        // Miss case: 2-frame pool, 4 pages, batch of 2 evicted pages.
        let small = pool(2);
        let mut pids = Vec::new();
        for i in 0..4u8 {
            let (pid, mut w) = small.new_page().unwrap();
            w[0] = i;
            pids.push(pid);
        }
        let before = small.stats().snapshot();
        let pins = small.pin_batch(&pids[..2]).unwrap();
        for (i, pin) in pins.into_iter().enumerate() {
            assert_eq!(pin.read()[0], i as u8);
        }
        let d = small.stats().snapshot().since(&before);
        assert_eq!((d.buffer_hits, d.buffer_misses), (0, 2));
        assert_eq!(d.page_reads, 2, "one batched request, per-page accounting");
    }

    #[test]
    fn pin_batch_exhaustion_leaves_pool_intact() {
        let pool = pool(2);
        // p2 and p3 end up on disk only.
        let (p2, mut g2) = pool.new_page().unwrap();
        g2[0] = 2;
        drop(g2);
        let (p3, mut g3) = pool.new_page().unwrap();
        g3[0] = 3;
        drop(g3);
        // p0 resident + dirty + unpinned (never written to disk), p1 pinned.
        let (p0, mut w0) = pool.new_page().unwrap();
        w0[0] = 0xEE;
        drop(w0);
        let (_p1, g1) = pool.new_page().unwrap();
        // The batch displaces p0 for its first claim, then fails the second:
        // the unwind must restore p0's mapping without any disk I/O.
        let before = pool.stats().snapshot();
        let err = pool.pin_batch(&[p2, p3]).unwrap_err();
        assert_eq!(err, StorageError::PoolExhausted);
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(
            (d.page_reads, d.page_writes),
            (0, 0),
            "no I/O on the claim-error unwind"
        );
        drop(g1);
        // The dirty page survived with its data (disk never saw 0xEE).
        assert_eq!(pool.fetch_read(p0).unwrap()[0], 0xEE);
        // And the pool still serves the batch once pins are released.
        let pins = pool.pin_batch(&[p2, p3]).unwrap();
        let vals: Vec<u8> = pins.into_iter().map(|p| p.read()[0]).collect();
        assert_eq!(vals, vec![2, 3]);
    }

    #[test]
    fn concurrent_readers_share_a_frame() {
        let pool = pool(2);
        let (pid, w) = pool.new_page().unwrap();
        drop(w);
        let r1 = pool.fetch_read(pid).unwrap();
        let r2 = pool.fetch_read(pid).unwrap();
        assert_eq!(r1[0], r2[0]);
    }

    #[test]
    fn multithreaded_stress() {
        let pool = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let (pid, mut w) = pool.new_page().unwrap();
            w[0] = i;
            pids.push(pid);
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let pids = pids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    for (i, pid) in pids.iter().enumerate() {
                        if (i + t + round) % 7 == 0 {
                            let mut w = pool.fetch_write(*pid).unwrap();
                            w[0] = i as u8; // rewrite the invariant value
                        } else {
                            let r = pool.fetch_read(*pid).unwrap();
                            assert_eq!(r[0], i as u8);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
