//! Write-ahead log: CRC-framed physiological records for heap DML plus
//! opaque catalog records for DDL, fsynced before the data pages they
//! describe can reach the heap file.
//!
//! ### What is (and is not) logged
//!
//! The paper's economic argument for the Index Buffer is that it is cheap
//! *because it needs no recovery*: after a crash, `C[p]` and the buffer are
//! rebuilt from the heap, not from the log. The WAL therefore carries
//! exactly three kinds of state:
//!
//! * **DML** — slot-granular heap mutations ([`WalRecord::Insert`],
//!   [`WalRecord::Delete`], [`WalRecord::Update`]), identified by table
//!   ordinal and [`Rid`].
//! * **DDL** — opaque engine-encoded catalog records
//!   ([`WalRecord::Ddl`]); the storage crate cannot see schemas or index
//!   coverage, so the engine owns the payload codec.
//! * **Snapshot** — an opaque engine-encoded checkpoint image
//!   ([`WalRecord::Snapshot`]) opening every rotated log.
//!
//! Partial-index *adaptation* and Index Buffer contents are **never**
//! logged — `crates/engine/tests/crash_recovery.rs` asserts the record
//! count stays flat across adaptation.
//!
//! ### Framing and torn tails
//!
//! Every record is framed as `[len: u32 LE][crc32: u32 LE][payload]`, where
//! the CRC covers the payload. [`Wal::append`] fsyncs after each frame, so a
//! record either survives whole or is a torn tail; [`Wal::replay`] stops at
//! the first short or CRC-mismatched frame and discards it. A crash between
//! a mutation's WAL fsync and the next checkpoint loses nothing (replay
//! re-applies it); a crash *during* an append loses only the in-flight
//! operation, which never reached the heap either (WAL-before-data).
//!
//! ### Replay convergence
//!
//! Records are replayed unconditionally, last-write-wins at slot
//! granularity. Combined with the no-steal [`crate::FileBackend`] (the heap
//! file holds the previous checkpoint plus possibly a *partially flushed*
//! newer state after a crash mid-checkpoint), replaying the full log
//! regenerates the exact pre-crash logical heap: slot ids are stable across
//! page compaction, so re-applying an already-flushed mutation is
//! idempotent.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::error::StorageError;
use crate::rid::{PageId, Rid, SlotId};

/// Frame header size: length + CRC, both little-endian u32.
const FRAME_HEADER: usize = 8;
/// Hard cap on a single record payload; a frame claiming more is corrupt.
/// Generous: the largest legitimate payload is one tuple (≤ one page).
const MAX_PAYLOAD: usize = 1 << 20;

/// One write-ahead-log record. See the module docs for what is logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A tuple inserted at `rid` in table ordinal `table`.
    Insert {
        /// Catalog ordinal of the table (stable across restarts).
        table: u32,
        /// Exact heap location, so replay is physiological.
        rid: Rid,
        /// Serialized tuple bytes.
        bytes: Vec<u8>,
    },
    /// The tuple at `rid` in table `table` was deleted.
    Delete {
        /// Catalog ordinal of the table.
        table: u32,
        /// Heap location of the deleted tuple.
        rid: Rid,
    },
    /// The tuple at `old` moved to `new` (possibly the same rid) with new
    /// contents `bytes` — covers both in-place updates and relocations.
    Update {
        /// Catalog ordinal of the table.
        table: u32,
        /// Pre-update heap location.
        old: Rid,
        /// Post-update heap location.
        new: Rid,
        /// Serialized post-update tuple bytes.
        bytes: Vec<u8>,
    },
    /// Opaque engine-encoded checkpoint image; opens every rotated log.
    Snapshot(Vec<u8>),
    /// Opaque engine-encoded catalog mutation (create/drop table or index,
    /// coverage redefinition).
    Ddl(Vec<u8>),
}

/// Record tags (first payload byte).
mod tag {
    pub const INSERT: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const UPDATE: u8 = 3;
    pub const SNAPSHOT: u8 = 4;
    pub const DDL: u8 = 5;
}

impl WalRecord {
    /// Serializes the record payload (everything the CRC covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { table, rid, bytes } => {
                out.push(tag::INSERT);
                out.extend_from_slice(&table.to_le_bytes());
                encode_rid(*rid, &mut out);
                out.extend_from_slice(bytes);
            }
            WalRecord::Delete { table, rid } => {
                out.push(tag::DELETE);
                out.extend_from_slice(&table.to_le_bytes());
                encode_rid(*rid, &mut out);
            }
            WalRecord::Update {
                table,
                old,
                new,
                bytes,
            } => {
                out.push(tag::UPDATE);
                out.extend_from_slice(&table.to_le_bytes());
                encode_rid(*old, &mut out);
                encode_rid(*new, &mut out);
                out.extend_from_slice(bytes);
            }
            WalRecord::Snapshot(bytes) => {
                out.push(tag::SNAPSHOT);
                out.extend_from_slice(bytes);
            }
            WalRecord::Ddl(bytes) => {
                out.push(tag::DDL);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Deserializes a payload produced by [`WalRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<WalRecord, StorageError> {
        let (&t, rest) = payload
            .split_first()
            .ok_or_else(|| StorageError::Corrupt("empty wal record".into()))?;
        match t {
            tag::INSERT => {
                let (table, rest) = take_u32(rest)?;
                let (rid, rest) = decode_rid(rest)?;
                Ok(WalRecord::Insert {
                    table,
                    rid,
                    bytes: rest.to_vec(),
                })
            }
            tag::DELETE => {
                let (table, rest) = take_u32(rest)?;
                let (rid, rest) = decode_rid(rest)?;
                if !rest.is_empty() {
                    return Err(StorageError::Corrupt("trailing bytes in delete".into()));
                }
                Ok(WalRecord::Delete { table, rid })
            }
            tag::UPDATE => {
                let (table, rest) = take_u32(rest)?;
                let (old, rest) = decode_rid(rest)?;
                let (new, rest) = decode_rid(rest)?;
                Ok(WalRecord::Update {
                    table,
                    old,
                    new,
                    bytes: rest.to_vec(),
                })
            }
            tag::SNAPSHOT => Ok(WalRecord::Snapshot(rest.to_vec())),
            tag::DDL => Ok(WalRecord::Ddl(rest.to_vec())),
            other => Err(StorageError::Corrupt(format!("unknown wal tag {other}"))),
        }
    }
}

fn encode_rid(rid: Rid, out: &mut Vec<u8>) {
    out.extend_from_slice(&rid.page.0.to_le_bytes());
    out.extend_from_slice(&rid.slot.0.to_le_bytes());
}

fn decode_rid(buf: &[u8]) -> Result<(Rid, &[u8]), StorageError> {
    let (page, rest) = take_u32(buf)?;
    let slot_bytes: [u8; 2] = rest
        .get(..2)
        .ok_or_else(|| StorageError::Corrupt("truncated rid slot".into()))?
        .try_into()
        .map_err(|_| StorageError::Corrupt("rid slot width".into()))?;
    let rid = Rid {
        page: PageId(page),
        slot: SlotId(u16::from_le_bytes(slot_bytes)),
    };
    Ok((rid, rest.get(2..).unwrap_or(&[])))
}

fn take_u32(buf: &[u8]) -> Result<(u32, &[u8]), StorageError> {
    let bytes: [u8; 4] = buf
        .get(..4)
        .ok_or_else(|| StorageError::Corrupt("truncated wal u32".into()))?
        .try_into()
        .map_err(|_| StorageError::Corrupt("wal u32 width".into()))?;
    Ok((u32::from_le_bytes(bytes), buf.get(4..).unwrap_or(&[])))
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, hand-rolled
/// because the build is offline and std has no checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = table.get(idx).copied().unwrap_or_default() ^ (crc >> 8);
    }
    !crc
}

/// An open, append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records_written: u64,
    /// Crash-injection hook: fail the append once `records_written` reaches
    /// this count, leaving a torn frame prefix in the file.
    fail_at: Option<u64>,
}

impl Wal {
    /// Opens the log at `path` for appending, creating it if absent.
    /// Existing contents are preserved (append continues after them); run
    /// [`Wal::replay`] first if you need them.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StorageError::io("open wal", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            records_written: 0,
            fail_at: None,
        })
    }

    /// Number of records appended through this handle (not counting
    /// pre-existing records in the file).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Crash-injection hook: the append that would become record number
    /// `n` (0-based among this handle's appends) writes a torn frame prefix
    /// and fails with [`StorageError::Io`].
    pub fn set_fail_at(&mut self, n: u64) {
        self.fail_at = Some(n);
    }

    /// Appends one record: frame, write, fsync. On success the record is
    /// durable before the caller may touch the heap (WAL-before-data).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if self.fail_at == Some(self.records_written) {
            self.fail_at = None;
            // Emulated crash mid-append: half the frame reaches the medium.
            let torn = frame.get(..frame.len() / 2).unwrap_or(&frame);
            self.file
                .write_all(torn)
                .map_err(|e| StorageError::io("wal torn write", e))?;
            // aib-lint: allow(durable-io) — crash emulation: the torn half's fsync is best-effort by design.
            let _ = self.file.sync_data();
            return Err(StorageError::Io(
                "injected wal append failure (crash mid-DML)".into(),
            ));
        }
        self.file
            .write_all(&frame)
            .map_err(|e| StorageError::io("wal append", e))?;
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("wal fsync", e))?;
        self.records_written += 1;
        Ok(())
    }

    /// Atomically replaces the log with a fresh one whose first record is
    /// `snapshot` — the checkpoint rotation. Writes `<path>.new`, fsyncs it,
    /// then renames over the live log; a crash at any point leaves either
    /// the complete old log or the complete new one.
    pub fn rotate(&mut self, snapshot: &WalRecord) -> Result<(), StorageError> {
        let tmp = self.path.with_extension("log.new");
        {
            let mut fresh = Wal::open(&tmp)?;
            // `open` appends; a leftover .new from a crashed rotation must
            // not leak stale records into the fresh log.
            fresh
                .file
                .set_len(0)
                .map_err(|e| StorageError::io("truncate wal.new", e))?;
            fresh.append(snapshot)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| StorageError::io("rename wal.new", e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StorageError::io("reopen rotated wal", e))?;
        self.file = file;
        self.records_written = 1; // the snapshot
        Ok(())
    }

    /// Reads every intact record from the log at `path`, stopping (without
    /// error) at a torn or corrupt tail frame. A missing file is an empty
    /// log.
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>, StorageError> {
        let raw = match std::fs::read(path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StorageError::io("read wal", e)),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= raw.len() {
            let len_bytes: [u8; 4] = match raw.get(pos..pos + 4).and_then(|s| s.try_into().ok()) {
                Some(b) => b,
                None => break,
            };
            let crc_bytes: [u8; 4] = match raw.get(pos + 4..pos + 8).and_then(|s| s.try_into().ok())
            {
                Some(b) => b,
                None => break,
            };
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len > MAX_PAYLOAD {
                break; // garbage length: torn tail
            }
            let Some(payload) = raw.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else {
                break; // short frame: torn tail
            };
            if crc32(payload) != u32::from_le_bytes(crc_bytes) {
                break; // corrupt tail
            }
            records.push(WalRecord::decode(payload)?);
            pos += FRAME_HEADER + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aib-wal-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: 0,
                rid: Rid {
                    page: PageId(3),
                    slot: SlotId(7),
                },
                bytes: vec![1, 2, 3],
            },
            WalRecord::Delete {
                table: 1,
                rid: Rid {
                    page: PageId(0),
                    slot: SlotId(0),
                },
            },
            WalRecord::Update {
                table: 0,
                old: Rid {
                    page: PageId(3),
                    slot: SlotId(7),
                },
                new: Rid {
                    page: PageId(4),
                    slot: SlotId(0),
                },
                bytes: vec![9; 100],
            },
            WalRecord::Snapshot(vec![0xAA; 17]),
            WalRecord::Ddl(vec![]),
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_codec_roundtrip() {
        for r in sample_records() {
            assert_eq!(WalRecord::decode(&r.encode()).unwrap(), r);
        }
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        assert!(WalRecord::decode(&[tag::DELETE, 0, 0]).is_err());
    }

    #[test]
    fn append_then_replay() {
        let path = temp_path("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.records_written(), 5);
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_log_is_empty() {
        let path = temp_path("missing");
        assert_eq!(Wal::replay(&path).unwrap(), Vec::new());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = temp_path("torn");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Chop bytes off the end: every prefix must replay to some prefix of
        // the records, never error, never resurrect the torn record.
        let full = std::fs::read(&path).unwrap();
        for cut in 1..full.len() {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let replayed = Wal::replay(&path).unwrap();
            assert!(replayed.len() < 5 || cut == 0);
            assert_eq!(replayed, sample_records()[..replayed.len()].to_vec());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let path = temp_path("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a byte in the second record's payload (first frame is
        // 8 + 1 + 4 + 6 + 3 = 22 bytes).
        raw[22 + 8 + 2] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1].to_vec());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_append_failure_leaves_torn_frame() {
        let path = temp_path("failinject");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.set_fail_at(1);
        assert!(matches!(
            wal.append(&sample_records()[1]),
            Err(StorageError::Io(_))
        ));
        drop(wal);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1].to_vec());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_replaces_log_atomically() {
        let path = temp_path("rotate");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let snap = WalRecord::Snapshot(vec![7; 9]);
        wal.rotate(&snap).unwrap();
        assert_eq!(wal.records_written(), 1);
        // Appends continue into the rotated log.
        wal.append(&sample_records()[1]).unwrap();
        drop(wal);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, vec![snap, sample_records()[1].clone()]);
        let _ = std::fs::remove_file(&path);
    }
}
