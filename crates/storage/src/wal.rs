//! Write-ahead log: CRC-framed physiological records for heap DML plus
//! opaque catalog records for DDL, fsynced before the data pages they
//! describe can reach the heap file.
//!
//! ### What is (and is not) logged
//!
//! The paper's economic argument for the Index Buffer is that it is cheap
//! *because it needs no recovery*: after a crash, `C[p]` and the buffer are
//! rebuilt from the heap, not from the log. The WAL therefore carries
//! exactly three kinds of state:
//!
//! * **DML** — slot-granular heap mutations ([`WalRecord::Insert`],
//!   [`WalRecord::Delete`], [`WalRecord::Update`]), identified by table
//!   ordinal and [`Rid`].
//! * **DDL** — opaque engine-encoded catalog records
//!   ([`WalRecord::Ddl`]); the storage crate cannot see schemas or index
//!   coverage, so the engine owns the payload codec.
//! * **Snapshot** — an opaque engine-encoded checkpoint image
//!   ([`WalRecord::Snapshot`]) opening every rotated log.
//!
//! Partial-index *adaptation* and Index Buffer contents are **never**
//! logged — `crates/engine/tests/crash_recovery.rs` asserts the record
//! count stays flat across adaptation.
//!
//! ### Framing and torn tails
//!
//! Every record is framed as `[len: u32 LE][crc32: u32 LE][payload]`, where
//! the CRC covers the payload. [`Wal::append`] writes one frame and fsyncs;
//! [`Wal::append_payload_batch`] writes a whole group-commit batch of frames
//! with a single `write_all` followed by a single `sync_data`, so the fsync
//! is amortized across every commit in the batch while the on-disk framing
//! stays byte-for-byte identical to a per-record log. Either way a record
//! either survives whole or is a torn tail; [`Wal::replay`] stops at the
//! first short or CRC-mismatched frame and discards it. A crash between a
//! mutation's WAL fsync and the next checkpoint loses nothing (replay
//! re-applies it); a crash *during* an append loses only the in-flight
//! operations, which never reached the heap either (WAL-before-data).
//!
//! ### Replay convergence
//!
//! Records are replayed unconditionally, last-write-wins at slot
//! granularity. Combined with the no-steal [`crate::FileBackend`] (the heap
//! file holds the previous checkpoint plus possibly a *partially flushed*
//! newer state after a crash mid-checkpoint), replaying the full log
//! regenerates the exact pre-crash logical heap: slot ids are stable across
//! page compaction, so re-applying an already-flushed mutation is
//! idempotent.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::error::StorageError;
use crate::rid::{PageId, Rid, SlotId};

/// Frame header size: length + CRC, both little-endian u32.
const FRAME_HEADER: usize = 8;
/// Hard cap on a single record payload; a frame claiming more is corrupt.
/// Generous: the largest legitimate payload is one tuple (≤ one page).
const MAX_PAYLOAD: usize = 1 << 20;

/// One write-ahead-log record. See the module docs for what is logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A tuple inserted at `rid` in table ordinal `table`.
    Insert {
        /// Catalog ordinal of the table (stable across restarts).
        table: u32,
        /// Exact heap location, so replay is physiological.
        rid: Rid,
        /// Serialized tuple bytes.
        bytes: Vec<u8>,
    },
    /// The tuple at `rid` in table `table` was deleted.
    Delete {
        /// Catalog ordinal of the table.
        table: u32,
        /// Heap location of the deleted tuple.
        rid: Rid,
    },
    /// The tuple at `old` moved to `new` (possibly the same rid) with new
    /// contents `bytes` — covers both in-place updates and relocations.
    Update {
        /// Catalog ordinal of the table.
        table: u32,
        /// Pre-update heap location.
        old: Rid,
        /// Post-update heap location.
        new: Rid,
        /// Serialized post-update tuple bytes.
        bytes: Vec<u8>,
    },
    /// Opaque engine-encoded checkpoint image; opens every rotated log.
    Snapshot(Vec<u8>),
    /// Opaque engine-encoded catalog mutation (create/drop table or index,
    /// coverage redefinition).
    Ddl(Vec<u8>),
}

/// Record tags (first payload byte).
mod tag {
    pub const INSERT: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const UPDATE: u8 = 3;
    pub const SNAPSHOT: u8 = 4;
    pub const DDL: u8 = 5;
}

impl WalRecord {
    /// Serializes the record payload (everything the CRC covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { table, rid, bytes } => {
                out.push(tag::INSERT);
                out.extend_from_slice(&table.to_le_bytes());
                encode_rid(*rid, &mut out);
                out.extend_from_slice(bytes);
            }
            WalRecord::Delete { table, rid } => {
                out.push(tag::DELETE);
                out.extend_from_slice(&table.to_le_bytes());
                encode_rid(*rid, &mut out);
            }
            WalRecord::Update {
                table,
                old,
                new,
                bytes,
            } => {
                out.push(tag::UPDATE);
                out.extend_from_slice(&table.to_le_bytes());
                encode_rid(*old, &mut out);
                encode_rid(*new, &mut out);
                out.extend_from_slice(bytes);
            }
            WalRecord::Snapshot(bytes) => {
                out.push(tag::SNAPSHOT);
                out.extend_from_slice(bytes);
            }
            WalRecord::Ddl(bytes) => {
                out.push(tag::DDL);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Deserializes a payload produced by [`WalRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<WalRecord, StorageError> {
        let (&t, rest) = payload
            .split_first()
            .ok_or_else(|| StorageError::Corrupt("empty wal record".into()))?;
        match t {
            tag::INSERT => {
                let (table, rest) = take_u32(rest)?;
                let (rid, rest) = decode_rid(rest)?;
                Ok(WalRecord::Insert {
                    table,
                    rid,
                    bytes: rest.to_vec(),
                })
            }
            tag::DELETE => {
                let (table, rest) = take_u32(rest)?;
                let (rid, rest) = decode_rid(rest)?;
                if !rest.is_empty() {
                    return Err(StorageError::Corrupt("trailing bytes in delete".into()));
                }
                Ok(WalRecord::Delete { table, rid })
            }
            tag::UPDATE => {
                let (table, rest) = take_u32(rest)?;
                let (old, rest) = decode_rid(rest)?;
                let (new, rest) = decode_rid(rest)?;
                Ok(WalRecord::Update {
                    table,
                    old,
                    new,
                    bytes: rest.to_vec(),
                })
            }
            tag::SNAPSHOT => Ok(WalRecord::Snapshot(rest.to_vec())),
            tag::DDL => Ok(WalRecord::Ddl(rest.to_vec())),
            other => Err(StorageError::Corrupt(format!("unknown wal tag {other}"))),
        }
    }
}

fn encode_rid(rid: Rid, out: &mut Vec<u8>) {
    out.extend_from_slice(&rid.page.0.to_le_bytes());
    out.extend_from_slice(&rid.slot.0.to_le_bytes());
}

fn decode_rid(buf: &[u8]) -> Result<(Rid, &[u8]), StorageError> {
    let (page, rest) = take_u32(buf)?;
    let slot_bytes: [u8; 2] = rest
        .get(..2)
        .ok_or_else(|| StorageError::Corrupt("truncated rid slot".into()))?
        .try_into()
        .map_err(|_| StorageError::Corrupt("rid slot width".into()))?;
    let rid = Rid {
        page: PageId(page),
        slot: SlotId(u16::from_le_bytes(slot_bytes)),
    };
    Ok((rid, rest.get(2..).unwrap_or(&[])))
}

fn take_u32(buf: &[u8]) -> Result<(u32, &[u8]), StorageError> {
    let bytes: [u8; 4] = buf
        .get(..4)
        .ok_or_else(|| StorageError::Corrupt("truncated wal u32".into()))?
        .try_into()
        .map_err(|_| StorageError::Corrupt("wal u32 width".into()))?;
    Ok((u32::from_le_bytes(bytes), buf.get(4..).unwrap_or(&[])))
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, hand-rolled
/// because the build is offline and std has no checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = table.get(idx).copied().unwrap_or_default() ^ (crc >> 8);
    }
    !crc
}

/// An open, append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records_written: u64,
    /// Successful covering `sync_data` calls issued by this handle — the
    /// group-commit bench divides records by this to report amortization.
    syncs: u64,
    /// Set once an append left a torn or half-written frame in the file:
    /// anything written after that point is unreachable by [`Wal::replay`]
    /// (which stops at the first bad frame), so further appends must fail
    /// rather than produce acked-but-unrecoverable records. Cleared by
    /// [`Wal::rotate`], which replaces the file wholesale.
    poisoned: bool,
    /// Crash-injection hook: fail the append once `records_written` reaches
    /// this count, leaving a torn frame prefix in the file.
    fail_at: Option<u64>,
}

impl Wal {
    /// Opens the log at `path` for appending, creating it if absent.
    /// Existing contents are preserved (append continues after them); run
    /// [`Wal::replay`] first if you need them.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let created = !path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StorageError::io("open wal", e))?;
        if created {
            // Rename-durability rule (POSIX): creating a file makes its
            // *data* durable via fsync on the file, but the directory entry
            // pointing at it is only durable once the parent directory is
            // fsynced too. Without this, a crash after creation can leave a
            // database directory with no WAL entry at all.
            sync_parent_dir(path)?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            records_written: 0,
            syncs: 0,
            poisoned: false,
            fail_at: None,
        })
    }

    /// Number of records appended through this handle (not counting
    /// pre-existing records in the file).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Number of successful covering fsyncs issued by this handle. With
    /// group commit, `records_written / syncs` is the batch amortization
    /// factor.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Crash-injection hook: the append that would become record number
    /// `n` (0-based among this handle's appends) writes a torn frame prefix
    /// and fails with [`StorageError::Io`].
    pub fn set_fail_at(&mut self, n: u64) {
        self.fail_at = Some(n);
    }

    /// Appends one record: frame, write, fsync. On success the record is
    /// durable before the caller may touch the heap (WAL-before-data).
    /// Equivalent to a one-element [`Wal::append_payload_batch`].
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        let payload = record.encode();
        self.append_payload_batch(&[&payload])
    }

    /// Appends a group-commit batch of pre-encoded record payloads: every
    /// frame goes down in **one** `write_all` and is made durable by
    /// **one** `sync_data`, amortizing the fsync across the whole batch. A
    /// one-element batch is bit-for-bit the classic fsync-per-record
    /// append, and the on-disk bytes are identical to appending the same
    /// records one by one.
    ///
    /// On failure the durable prefix is reflected in
    /// [`Wal::records_written`]: frames before an injected torn write count
    /// if (and only if) the covering fsync still landed; after a real write
    /// or fsync error nothing in the batch may be acked. Either way the
    /// file may now end in a garbage frame that [`Wal::replay`] stops at,
    /// so the log is poisoned: subsequent appends fail until
    /// [`Wal::rotate`] replaces the file.
    pub fn append_payload_batch(&mut self, payloads: &[&[u8]]) -> Result<(), StorageError> {
        if payloads.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(StorageError::Io(
                "wal poisoned by an earlier torn append; checkpoint to rotate the log".into(),
            ));
        }
        let mut buf = Vec::new();
        let mut intact = 0u64;
        let mut torn = false;
        for payload in payloads {
            let frame_start = buf.len();
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
            if self.fail_at == Some(self.records_written + intact) {
                // Emulated crash mid-batch: half of this frame reaches the
                // medium, everything after it nothing at all.
                self.fail_at = None;
                let frame_len = FRAME_HEADER + payload.len();
                buf.truncate(frame_start + frame_len / 2);
                torn = true;
                break;
            }
            intact += 1;
        }
        if torn {
            self.poisoned = true;
            self.file
                .write_all(&buf)
                .map_err(|e| StorageError::io("wal torn write", e))?;
            // aib-lint: allow(durable-io) — crash emulation: the intact prefix only counts as durable if its covering fsync still landed.
            if self.file.sync_data().is_ok() {
                self.syncs += 1;
                self.records_written += intact;
            }
            return Err(StorageError::Io(
                "injected wal append failure (crash mid-DML)".into(),
            ));
        }
        self.file.write_all(&buf).map_err(|e| {
            self.poisoned = true;
            StorageError::io("wal append", e)
        })?;
        self.file.sync_data().map_err(|e| {
            self.poisoned = true;
            StorageError::io("wal fsync", e)
        })?;
        self.syncs += 1;
        self.records_written += intact;
        Ok(())
    }

    /// Atomically replaces the log with a fresh one whose first record is
    /// `snapshot` — the checkpoint rotation. Writes `<path>.new`, fsyncs it,
    /// then renames over the live log; a crash at any point leaves either
    /// the complete old log or the complete new one.
    pub fn rotate(&mut self, snapshot: &WalRecord) -> Result<(), StorageError> {
        let tmp = self.path.with_extension("log.new");
        {
            let mut fresh = Wal::open(&tmp)?;
            // `open` appends; a leftover .new from a crashed rotation must
            // not leak stale records into the fresh log.
            fresh
                .file
                .set_len(0)
                .map_err(|e| StorageError::io("truncate wal.new", e))?;
            fresh.append(snapshot)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| StorageError::io("rename wal.new", e))?;
        // Rename-durability rule (POSIX): a rename is only durable once the
        // parent directory's entry update is fsynced. Without this, a crash
        // right after rotation can resurrect the old (pre-checkpoint) log —
        // whose replay would then be applied over a heap file that already
        // contains the *post*-checkpoint flush.
        sync_parent_dir(&self.path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StorageError::io("reopen rotated wal", e))?;
        self.file = file;
        self.records_written = 1; // the snapshot
        self.poisoned = false; // the torn file (if any) is gone
        Ok(())
    }

    /// Reads every intact record from the log at `path`, stopping (without
    /// error) at a torn or corrupt tail frame. A missing file is an empty
    /// log.
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>, StorageError> {
        let raw = match std::fs::read(path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StorageError::io("read wal", e)),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= raw.len() {
            let len_bytes: [u8; 4] = match raw.get(pos..pos + 4).and_then(|s| s.try_into().ok()) {
                Some(b) => b,
                None => break,
            };
            let crc_bytes: [u8; 4] = match raw.get(pos + 4..pos + 8).and_then(|s| s.try_into().ok())
            {
                Some(b) => b,
                None => break,
            };
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len > MAX_PAYLOAD {
                break; // garbage length: torn tail
            }
            let Some(payload) = raw.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else {
                break; // short frame: torn tail
            };
            if crc32(payload) != u32::from_le_bytes(crc_bytes) {
                break; // corrupt tail
            }
            records.push(WalRecord::decode(payload)?);
            pos += FRAME_HEADER + len;
        }
        Ok(records)
    }
}

/// Fsyncs the parent directory of `path`, making a just-created or
/// just-renamed directory entry durable (the rename-durability rule: file
/// fsyncs cover file *contents*; only a directory fsync covers the entry).
/// A path with no parent (or an empty one) has nothing to sync.
fn sync_parent_dir(path: &Path) -> Result<(), StorageError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => return Ok(()),
    };
    let dir = File::open(parent).map_err(|e| StorageError::io("open wal directory", e))?;
    dir.sync_data()
        .map_err(|e| StorageError::io("fsync wal directory", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aib-wal-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: 0,
                rid: Rid {
                    page: PageId(3),
                    slot: SlotId(7),
                },
                bytes: vec![1, 2, 3],
            },
            WalRecord::Delete {
                table: 1,
                rid: Rid {
                    page: PageId(0),
                    slot: SlotId(0),
                },
            },
            WalRecord::Update {
                table: 0,
                old: Rid {
                    page: PageId(3),
                    slot: SlotId(7),
                },
                new: Rid {
                    page: PageId(4),
                    slot: SlotId(0),
                },
                bytes: vec![9; 100],
            },
            WalRecord::Snapshot(vec![0xAA; 17]),
            WalRecord::Ddl(vec![]),
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_codec_roundtrip() {
        for r in sample_records() {
            assert_eq!(WalRecord::decode(&r.encode()).unwrap(), r);
        }
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        assert!(WalRecord::decode(&[tag::DELETE, 0, 0]).is_err());
    }

    #[test]
    fn append_then_replay() {
        let path = temp_path("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.records_written(), 5);
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_log_is_empty() {
        let path = temp_path("missing");
        assert_eq!(Wal::replay(&path).unwrap(), Vec::new());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = temp_path("torn");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Chop bytes off the end: every prefix must replay to some prefix of
        // the records, never error, never resurrect the torn record.
        let full = std::fs::read(&path).unwrap();
        for cut in 1..full.len() {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let replayed = Wal::replay(&path).unwrap();
            assert!(replayed.len() < 5 || cut == 0);
            assert_eq!(replayed, sample_records()[..replayed.len()].to_vec());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let path = temp_path("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a byte in the second record's payload (first frame is
        // 8 + 1 + 4 + 6 + 3 = 22 bytes).
        raw[22 + 8 + 2] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1].to_vec());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_append_failure_leaves_torn_frame() {
        let path = temp_path("failinject");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.set_fail_at(1);
        assert!(matches!(
            wal.append(&sample_records()[1]),
            Err(StorageError::Io(_))
        ));
        drop(wal);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1].to_vec());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_append_is_byte_identical_to_per_record_appends() {
        let per_record = temp_path("batch-a");
        let batched = temp_path("batch-b");
        let records = sample_records();
        let mut a = Wal::open(&per_record).unwrap();
        for r in &records {
            a.append(r).unwrap();
        }
        let mut b = Wal::open(&batched).unwrap();
        let payloads: Vec<Vec<u8>> = records.iter().map(WalRecord::encode).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        b.append_payload_batch(&refs).unwrap();
        // Same records, same bytes — a group-committed log replays
        // identically to a per-record log — but one fsync instead of five.
        assert_eq!((a.records_written(), a.syncs()), (5, 5));
        assert_eq!((b.records_written(), b.syncs()), (5, 1));
        drop(a);
        drop(b);
        assert_eq!(
            std::fs::read(&per_record).unwrap(),
            std::fs::read(&batched).unwrap()
        );
        assert_eq!(Wal::replay(&batched).unwrap(), records);
        let _ = std::fs::remove_file(&per_record);
        let _ = std::fs::remove_file(&batched);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let path = temp_path("batch-empty");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_payload_batch(&[]).unwrap();
        assert_eq!((wal.records_written(), wal.syncs()), (0, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_batch_keeps_durable_prefix_and_poisons_the_log() {
        let path = temp_path("batch-torn");
        let records = sample_records();
        let mut wal = Wal::open(&path).unwrap();
        wal.set_fail_at(2);
        let payloads: Vec<Vec<u8>> = records.iter().map(WalRecord::encode).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        assert!(matches!(
            wal.append_payload_batch(&refs),
            Err(StorageError::Io(_))
        ));
        // Two intact frames made it down under the covering fsync; the
        // third is torn, the rest were never written.
        assert_eq!(wal.records_written(), 2);
        assert_eq!(Wal::replay(&path).unwrap(), records[..2].to_vec());
        // The log is poisoned: another append would land after the torn
        // frame where replay can never reach it, so it must fail...
        assert!(matches!(wal.append(&records[0]), Err(StorageError::Io(_))));
        // ...until rotation replaces the file wholesale.
        let snap = WalRecord::Snapshot(vec![1, 2]);
        wal.rotate(&snap).unwrap();
        wal.append(&records[0]).unwrap();
        assert_eq!(Wal::replay(&path).unwrap(), vec![snap, records[0].clone()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_replaces_log_atomically() {
        let path = temp_path("rotate");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let snap = WalRecord::Snapshot(vec![7; 9]);
        wal.rotate(&snap).unwrap();
        assert_eq!(wal.records_written(), 1);
        // Appends continue into the rotated log.
        wal.append(&sample_records()[1]).unwrap();
        drop(wal);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, vec![snap, sample_records()[1].clone()]);
        let _ = std::fs::remove_file(&path);
    }
}
