//! Storage substrate for the Adaptive Index Buffer reproduction.
//!
//! This crate implements everything the paper's prototype got for free from
//! the H2 Database Engine: a value/tuple model, slotted pages, a simulated
//! disk manager with I/O accounting, a buffer pool with pluggable page
//! replacement (LRU, Clock, LRU-K), and heap files that support
//! page-granular scans — the substrate on which the Index Buffer's
//! page-skipping logic operates.
//!
//! The disk sits behind the [`disk::DiskBackend`] trait with two
//! implementations: the in-memory simulation ([`disk::DiskManager`], the
//! bench default — deterministic, no durability) and a file-backed store
//! ([`file_backend::FileBackend`]) paired with a write-ahead log
//! ([`wal::Wal`]) for the durability/recovery path. All page reads and
//! writes are counted in [`stats::IoStats`] and charged to a configurable
//! [`disk::CostModel`] identically on both backends, so experiments report
//! deterministic simulated I/O cost alongside wall time regardless of
//! backend.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod buffer_pool;
pub mod disk;
pub mod error;
pub mod file_backend;
pub mod freespace;
pub mod heap;
pub mod lruk;
pub mod page;
pub mod replacement;
pub mod rid;
pub mod schema;
pub mod stats;
pub mod sync;
pub mod tuple;
pub mod value;
pub mod wal;

pub use budget::{
    entry_footprint, BudgetComponent, BudgetSnapshot, MemoryBudget, MemoryUsage,
    DEFAULT_ENTRY_FOOTPRINT, ENTRY_BASE_BYTES,
};
pub use buffer_pool::{BufferPool, BufferPoolConfig, PageReadGuard, PageWriteGuard, PinnedPage};
pub use disk::{CostModel, DiskBackend, DiskManager, PAGE_SIZE};
pub use error::StorageError;
pub use file_backend::FileBackend;
pub use heap::HeapFile;
pub use lruk::AccessHistory;
pub use page::{PageView, SlottedPage};
pub use replacement::{DisplacementPolicy, FrameId};
pub use rid::{PageId, Rid, SlotId};
pub use schema::{Column, ColumnType, Schema};
pub use stats::{IoSnapshot, IoStats};
pub use tuple::Tuple;
pub use value::{ColumnRef, ColumnView, Value};
pub use wal::{Wal, WalRecord};

/// Convenient result alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
