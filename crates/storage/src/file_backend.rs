//! File-backed [`DiskBackend`]: one heap file with a versioned header page,
//! page-aligned reads/writes, and a no-steal write overlay flushed on
//! [`DiskBackend::sync`].
//!
//! ### On-disk layout
//!
//! ```text
//! offset 0                      : header page (PAGE_SIZE bytes)
//!   [0..8)   magic  b"AIBHEAP1"
//!   [8..12)  format version, u32 LE (currently 1)
//!   [12..16) durable page count, u32 LE
//! offset PAGE_SIZE * (1 + pid)  : data page `pid`
//! ```
//!
//! ### No-steal overlay
//!
//! [`FileBackend::write`] never touches the file directly: dirty pages land
//! in an in-memory overlay, and only [`FileBackend::sync`] (called by the
//! engine's checkpoint) writes them out, updates the header's durable page
//! count, and fsyncs. Between checkpoints the file therefore always holds
//! exactly the previous checkpoint's state — crash recovery replays the WAL
//! *on top of whatever prefix of the overlay reached the file*, and because
//! WAL replay is last-write-wins at slot granularity, any partially flushed
//! state converges to the same final heap (see `wal.rs`).
//!
//! ### Accounting parity
//!
//! Reads and writes charge [`IoStats`] identically to the simulated
//! [`crate::DiskManager`] (same counts, same [`CostModel`] microseconds), so
//! experiments report the same simulated-time axis regardless of backend;
//! `crates/storage/tests/backend_parity.rs` pins this down. `sync`'s flush
//! I/O is charged in neither backend.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::disk::{CostModel, DiskBackend, PAGE_SIZE};
use crate::error::StorageError;
use crate::rid::PageId;
use crate::stats::IoStats;

/// Magic bytes opening every heap file.
const MAGIC: &[u8; 8] = b"AIBHEAP1";
/// Current header format version.
const FORMAT_VERSION: u32 = 1;

/// File-backed page store. See the module docs for layout and semantics.
pub struct FileBackend {
    file: File,
    /// Total allocated pages, including not-yet-flushed ones.
    num_pages: u32,
    /// Pages the file itself holds (header's count as of the last sync).
    durable_pages: u32,
    /// No-steal write overlay: page id → latest contents.
    overlay: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
    cost: CostModel,
    stats: Arc<IoStats>,
    /// Crash-injection hook: fail the next sync after a partial flush.
    fail_next_sync: bool,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("num_pages", &self.num_pages)
            .field("durable_pages", &self.durable_pages)
            .field("overlay_pages", &self.overlay.len())
            .field("cost", &self.cost)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl FileBackend {
    /// Opens (or creates) the heap file at `path`, validating the header.
    pub fn open(path: &Path, cost: CostModel) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::io("open heap file", e))?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("stat heap file", e))?
            .len();
        let durable_pages = if len == 0 {
            // Fresh file: write an empty header so a crash before the first
            // checkpoint still leaves a well-formed (zero-page) heap.
            let header = encode_header(0);
            file.seek(SeekFrom::Start(0))
                .map_err(|e| StorageError::io("seek header", e))?;
            file.write_all(&header)
                .map_err(|e| StorageError::io("write header", e))?;
            file.sync_all()
                .map_err(|e| StorageError::io("fsync header", e))?;
            0
        } else {
            let mut header = [0u8; PAGE_SIZE];
            file.seek(SeekFrom::Start(0))
                .map_err(|e| StorageError::io("seek header", e))?;
            file.read_exact(&mut header)
                .map_err(|e| StorageError::io("read header", e))?;
            decode_header(&header)?
        };
        Ok(FileBackend {
            file,
            num_pages: durable_pages,
            durable_pages,
            overlay: HashMap::new(),
            cost,
            stats: Arc::new(IoStats::new()),
            fail_next_sync: false,
        })
    }

    /// Reads the raw bytes of page `id` without charging stats — the
    /// uncharged counterpart of [`DiskBackend::read`] used internally.
    fn fetch(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        if id.0 >= self.num_pages {
            return Err(StorageError::UnknownPage(id));
        }
        if let Some(page) = self.overlay.get(&id.0) {
            buf.copy_from_slice(&page[..]);
            return Ok(());
        }
        if id.0 >= self.durable_pages {
            // Allocated since the last sync but never written: still zeroed.
            buf.fill(0);
            return Ok(());
        }
        self.file
            .seek(SeekFrom::Start(page_offset(id.0)))
            .map_err(|e| StorageError::io("seek page", e))?;
        self.file
            .read_exact(buf)
            .map_err(|e| StorageError::io("read page", e))?;
        Ok(())
    }

    /// Flushes the overlay and header to the file and fsyncs. Factored out of
    /// the trait method so the crash-injection hook can abort halfway.
    fn flush_overlay(&mut self) -> Result<(), StorageError> {
        let mut dirty: Vec<u32> = self.overlay.keys().copied().collect();
        dirty.sort_unstable();
        let fail_halfway = self.fail_next_sync;
        self.fail_next_sync = false;
        let stop_after = if fail_halfway {
            dirty.len() / 2
        } else {
            dirty.len()
        };
        for (i, pid) in dirty.iter().enumerate() {
            if i >= stop_after {
                // Emulated crash: some pages reached the medium, the header
                // still names the old durable count, the rest of the overlay
                // is lost with the process (which a real crash would kill).
                self.overlay.clear();
                return Err(StorageError::Io(
                    "injected sync failure (crash mid-checkpoint)".into(),
                ));
            }
            let page = self
                .overlay
                .get(pid)
                .ok_or_else(|| StorageError::Corrupt("overlay page vanished".into()))?;
            self.file
                .seek(SeekFrom::Start(page_offset(*pid)))
                .map_err(|e| StorageError::io("seek page for flush", e))?;
            self.file
                .write_all(&page[..])
                .map_err(|e| StorageError::io("flush page", e))?;
        }
        // Pages between durable_pages and num_pages that were never written
        // stay implicitly zeroed: extend the file so reads succeed.
        let needed_len = page_offset(self.num_pages);
        let cur_len = self
            .file
            .metadata()
            .map_err(|e| StorageError::io("stat heap file", e))?
            .len();
        if cur_len < needed_len {
            self.file
                .set_len(needed_len)
                .map_err(|e| StorageError::io("extend heap file", e))?;
        }
        let header = encode_header(self.num_pages);
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StorageError::io("seek header", e))?;
        self.file
            .write_all(&header)
            .map_err(|e| StorageError::io("write header", e))?;
        self.file
            .sync_all()
            .map_err(|e| StorageError::io("fsync heap file", e))?;
        self.durable_pages = self.num_pages;
        self.overlay.clear();
        Ok(())
    }
}

impl DiskBackend for FileBackend {
    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let id = PageId(self.num_pages);
        self.num_pages = self
            .num_pages
            .checked_add(1)
            .ok_or_else(|| StorageError::Corrupt("page id space exhausted".into()))?;
        Ok(id)
    }

    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        self.fetch(id, buf)?;
        self.stats.record_reads(1, self.cost.read_us);
        Ok(())
    }

    fn read_batch(
        &mut self,
        reqs: &mut [(PageId, &mut [u8; PAGE_SIZE])],
    ) -> Result<(), StorageError> {
        // Same charging discipline as the simulation: pages copied before a
        // failure are still charged, the stats sink is touched once.
        let mut copied = 0u64;
        let mut failure = None;
        for (id, buf) in reqs.iter_mut() {
            match self.fetch(*id, buf) {
                Ok(()) => copied += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if copied > 0 {
            self.stats.record_reads(copied, self.cost.read_us);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), StorageError> {
        if id.0 >= self.num_pages {
            return Err(StorageError::UnknownPage(id));
        }
        self.overlay.insert(id.0, Box::new(*buf));
        self.stats.record_writes(1, self.cost.write_us);
        Ok(())
    }

    fn num_pages(&self) -> usize {
        self.num_pages as usize
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.flush_overlay()
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn fail_next_sync(&mut self) {
        self.fail_next_sync = true;
    }
}

/// Byte offset of data page `pid` (the header occupies page slot 0).
fn page_offset(pid: u32) -> u64 {
    (PAGE_SIZE as u64) * (1 + pid as u64)
}

/// Builds a header page naming `pages` durable data pages.
fn encode_header(pages: u32) -> [u8; PAGE_SIZE] {
    let mut header = [0u8; PAGE_SIZE];
    let version = FORMAT_VERSION.to_le_bytes();
    let count = pages.to_le_bytes();
    let fields = MAGIC.iter().chain(version.iter()).chain(count.iter());
    for (dst, src) in header.iter_mut().zip(fields) {
        *dst = *src;
    }
    header
}

/// Validates a header page, returning its durable page count.
fn decode_header(header: &[u8; PAGE_SIZE]) -> Result<u32, StorageError> {
    if header.get(..8) != Some(MAGIC.as_slice()) {
        return Err(StorageError::Corrupt("heap file magic mismatch".into()));
    }
    let version_bytes: [u8; 4] = header
        .get(8..12)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| StorageError::Corrupt("header version width".into()))?;
    let version = u32::from_le_bytes(version_bytes);
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported heap file version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let count_bytes: [u8; 4] = header
        .get(12..16)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| StorageError::Corrupt("header page count width".into()))?;
    Ok(u32::from_le_bytes(count_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aib-filebackend-{}-{tag}.heap", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn write_survives_sync_and_reopen() {
        let path = temp_path("roundtrip");
        {
            let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
            let p0 = disk.allocate().unwrap();
            let p1 = disk.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 0xAB;
            disk.write(p1, &buf).unwrap();
            // Unsynced writes are readable through the overlay.
            let mut out = [0u8; PAGE_SIZE];
            disk.read(p1, &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
            disk.read(p0, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0));
            disk.sync().unwrap();
        }
        let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
        assert_eq!(disk.num_pages(), 2);
        let mut out = [0u8; PAGE_SIZE];
        disk.read(PageId(1), &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unsynced_writes_do_not_reach_the_file() {
        let path = temp_path("nosteal");
        {
            let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
            let p = disk.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 1;
            disk.write(p, &buf).unwrap();
            disk.sync().unwrap();
            buf[0] = 2;
            disk.write(p, &buf).unwrap();
            // Dropped without sync: overlay contents are lost.
        }
        let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 1, "file still holds the checkpointed state");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_page_rejected() {
        let path = temp_path("unknown");
        let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert_eq!(
            disk.read(PageId(0), &mut buf),
            Err(StorageError::UnknownPage(PageId(0)))
        );
        assert_eq!(
            disk.write(PageId(3), &buf),
            Err(StorageError::UnknownPage(PageId(3)))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_corruption_detected() {
        let path = temp_path("corrupt");
        {
            let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
            disk.allocate().unwrap();
            disk.sync().unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            FileBackend::open(&path, CostModel::free()),
            Err(StorageError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_sync_failure_keeps_old_header() {
        let path = temp_path("failsync");
        {
            let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
            for i in 0..4u8 {
                let p = disk.allocate().unwrap();
                let mut buf = [0u8; PAGE_SIZE];
                buf[0] = i + 1;
                disk.write(p, &buf).unwrap();
            }
            disk.sync().unwrap();
            // Second round of writes, then a failed sync.
            for i in 0..4u32 {
                let mut buf = [0u8; PAGE_SIZE];
                buf[0] = 10 + i as u8;
                disk.write(PageId(i), &buf).unwrap();
            }
            disk.fail_next_sync();
            assert!(matches!(disk.sync(), Err(StorageError::Io(_))));
        }
        // Reopen: header still names 4 pages; some pages may hold new data
        // (partial flush), which is exactly the state WAL replay converges.
        let mut disk = FileBackend::open(&path, CostModel::free()).unwrap();
        assert_eq!(disk.num_pages(), 4);
        let mut out = [0u8; PAGE_SIZE];
        disk.read(PageId(3), &mut out).unwrap();
        assert_eq!(out[0], 4, "unflushed page keeps checkpointed contents");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn charges_match_simulation() {
        let cost = CostModel {
            read_us: 5,
            write_us: 7,
        };
        let path = temp_path("parity");
        let mut disk = FileBackend::open(&path, cost).unwrap();
        let p0 = disk.allocate().unwrap();
        let p1 = disk.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        disk.write(p0, &buf).unwrap();
        disk.write(p1, &buf).unwrap();
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        disk.read_batch(&mut [(p0, &mut a), (p1, &mut b)]).unwrap();
        disk.read(p0, &mut a).unwrap();
        let before_sync = disk.stats().snapshot();
        disk.sync().unwrap();
        let s = disk.stats().snapshot();
        assert_eq!(s, before_sync, "sync flush I/O is never charged");
        assert_eq!(s.page_reads, 3);
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.simulated_us, 3 * 5 + 2 * 7);
        let _ = std::fs::remove_file(&path);
    }
}
