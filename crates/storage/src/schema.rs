//! Table schemas: ordered, named, typed columns.

use std::fmt;

use crate::error::StorageError;
use crate::value::Value;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length string.
    Str,
}

impl ColumnType {
    /// Whether `value` inhabits this type (NULL inhabits every nullable column).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (ColumnType::Int, Value::Int(_)) | (ColumnType::Str, Value::Str(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INTEGER"),
            ColumnType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Whether NULL values are admitted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable integer column.
    pub fn int(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Int,
            nullable: false,
        }
    }

    /// A non-nullable string column.
    pub fn str(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Str,
            nullable: false,
        }
    }

    /// Makes the column nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema, panicking on duplicate column names (a catalog-level
    /// programming error, not a runtime condition).
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns.iter().take(i).any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Schema { columns }
    }

    /// The paper's evaluation schema: three INTEGER key columns `A`, `B`, `C`
    /// plus a VARCHAR payload column.
    pub fn paper_eval() -> Self {
        Schema::new(vec![
            Column::int("A"),
            Column::int("B"),
            Column::int("C"),
            Column::str("payload"),
        ])
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in declaration order.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Checks that `values` conforms to this schema.
    pub fn validate(&self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(values) {
            if v.is_null() {
                if !col.nullable {
                    return Err(StorageError::SchemaMismatch(format!(
                        "NULL in non-nullable column {:?}",
                        col.name
                    )));
                }
            } else if !col.ty.admits(v) {
                return Err(StorageError::SchemaMismatch(format!(
                    "value {v} does not fit column {:?} of type {}",
                    col.name, col.ty
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_shape() {
        let s = Schema::paper_eval();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_index("A"), Some(0));
        assert_eq!(s.column_index("C"), Some(2));
        assert_eq!(s.column_index("payload"), Some(3));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn validate_accepts_conforming_tuple() {
        let s = Schema::paper_eval();
        let t = vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::from("p"),
        ];
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let s = Schema::paper_eval();
        assert!(s.validate(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let s = Schema::paper_eval();
        let t = vec![
            Value::from("x"),
            Value::Int(2),
            Value::Int(3),
            Value::from("p"),
        ];
        assert!(s.validate(&t).is_err());
    }

    #[test]
    fn validate_null_rules() {
        let s = Schema::new(vec![Column::int("a").nullable(), Column::int("b")]);
        assert!(s.validate(&[Value::Null, Value::Int(1)]).is_ok());
        assert!(s.validate(&[Value::Int(1), Value::Null]).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::new(vec![Column::int("a"), Column::str("a")]);
    }

    #[test]
    fn column_type_display() {
        assert_eq!(ColumnType::Int.to_string(), "INTEGER");
        assert_eq!(ColumnType::Str.to_string(), "VARCHAR");
    }
}
