//! The value model: typed cell values with a total order and a compact
//! byte serialization.
//!
//! The paper's evaluation table has `INTEGER` key columns and a
//! `VARCHAR(512)` payload; [`Value`] covers both plus `NULL`.

use std::cmp::Ordering;
use std::fmt;

use crate::error::StorageError;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// 64-bit signed integer (covers the paper's INTEGER columns).
    Int(i64),
    /// Variable-length string (covers the paper's VARCHAR payload).
    Str(String),
}

impl Value {
    /// Serialization tag for NULL.
    const TAG_NULL: u8 = 0;
    /// Serialization tag for integers.
    const TAG_INT: u8 = 1;
    /// Serialization tag for strings.
    const TAG_STR: u8 = 2;

    /// Returns the integer payload, if this value is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this value is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Number of bytes [`Value::encode`] will append.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Appends the compact binary encoding of the value to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(Self::TAG_NULL),
            Value::Int(v) => {
                out.push(Self::TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(Self::TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Advances `pos` past one encoded value without materialising it.
    pub fn skip(buf: &[u8], pos: &mut usize) -> Result<(), StorageError> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("value tag past end of buffer".into()))?;
        *pos += 1;
        match tag {
            Self::TAG_NULL => Ok(()),
            Self::TAG_INT => {
                if buf.len() < *pos + 8 {
                    return Err(StorageError::Corrupt("truncated int value".into()));
                }
                *pos += 8;
                Ok(())
            }
            Self::TAG_STR => {
                let len_bytes: [u8; 4] = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| StorageError::Corrupt("truncated string length".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("string length width".into()))?;
                *pos += 4;
                let len = u32::from_le_bytes(len_bytes) as usize;
                if buf.len() < *pos + len {
                    return Err(StorageError::Corrupt("truncated string payload".into()));
                }
                *pos += len;
                Ok(())
            }
            other => Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        }
    }

    /// Decodes a *borrowing* view of the value at `buf[*pos..]`, advancing
    /// `pos` — the zero-copy counterpart of [`Value::decode`].
    ///
    /// Performs the exact validation sequence of `decode` (tag, payload
    /// bounds, UTF-8), so the two fail identically on corrupt input; the
    /// only difference is that string payloads are borrowed, not copied.
    pub fn decode_ref<'a>(buf: &'a [u8], pos: &mut usize) -> Result<ColumnRef<'a>, StorageError> {
        let start = *pos;
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("value tag past end of buffer".into()))?;
        *pos += 1;
        let view = match tag {
            Self::TAG_NULL => ColumnView::Null,
            Self::TAG_INT => {
                let bytes: [u8; 8] = buf
                    .get(*pos..*pos + 8)
                    .ok_or_else(|| StorageError::Corrupt("truncated int value".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("int payload width".into()))?;
                *pos += 8;
                ColumnView::Int(i64::from_le_bytes(bytes))
            }
            Self::TAG_STR => {
                let len_bytes: [u8; 4] = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| StorageError::Corrupt("truncated string length".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("string length width".into()))?;
                *pos += 4;
                let len = u32::from_le_bytes(len_bytes) as usize;
                let bytes = buf
                    .get(*pos..*pos + len)
                    .ok_or_else(|| StorageError::Corrupt("truncated string payload".into()))?;
                *pos += len;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| StorageError::Corrupt(format!("invalid utf-8 in string: {e}")))?;
                ColumnView::Str(s)
            }
            other => return Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        };
        let raw = buf
            .get(start..*pos)
            .ok_or_else(|| StorageError::Corrupt("column extent out of bounds".into()))?;
        Ok(ColumnRef { raw, view })
    }

    /// Decodes a value from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value, StorageError> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("value tag past end of buffer".into()))?;
        *pos += 1;
        match tag {
            Self::TAG_NULL => Ok(Value::Null),
            Self::TAG_INT => {
                let bytes: [u8; 8] = buf
                    .get(*pos..*pos + 8)
                    .ok_or_else(|| StorageError::Corrupt("truncated int value".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("int payload width".into()))?;
                *pos += 8;
                Ok(Value::Int(i64::from_le_bytes(bytes)))
            }
            Self::TAG_STR => {
                let len_bytes: [u8; 4] = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| StorageError::Corrupt("truncated string length".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("string length width".into()))?;
                *pos += 4;
                let len = u32::from_le_bytes(len_bytes) as usize;
                let bytes = buf
                    .get(*pos..*pos + len)
                    .ok_or_else(|| StorageError::Corrupt("truncated string payload".into()))?;
                *pos += len;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| StorageError::Corrupt(format!("invalid utf-8 in string: {e}")))?;
                Ok(Value::Str(s.to_owned()))
            }
            other => Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        }
    }
}

/// A borrowed view of one encoded column value: the exact encoded byte
/// extent plus the decoded payload, with nothing copied or allocated.
///
/// Produced by [`Value::decode_ref`] / `Tuple::read_column_raw`; this is what
/// the scan fast path compares instead of materialising a [`Value`]. Because
/// the encoding is canonical (one byte sequence per value), raw-byte equality
/// of two well-formed extents is exactly [`Value`] equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnRef<'a> {
    raw: &'a [u8],
    view: ColumnView<'a>,
}

/// The decoded payload of a [`ColumnRef`], borrowing string bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnView<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Borrowed UTF-8 string payload.
    Str(&'a str),
}

impl<'a> ColumnRef<'a> {
    /// The encoded bytes of this value (tag + payload), exactly as
    /// [`Value::encode`] would produce them.
    #[inline]
    pub fn raw(&self) -> &'a [u8] {
        self.raw
    }

    /// The decoded, borrowing payload.
    #[inline]
    pub fn view(&self) -> ColumnView<'a> {
        self.view
    }

    /// Materialises an owned [`Value`] (allocates for strings).
    pub fn to_value(&self) -> Value {
        match self.view {
            ColumnView::Null => Value::Null,
            ColumnView::Int(v) => Value::Int(v),
            ColumnView::Str(s) => Value::Str(s.to_owned()),
        }
    }

    /// Compares against an owned [`Value`] under the same total order as
    /// [`Value::cmp`] (`Null < Int(_) < Str(_)`), without allocating.
    #[inline]
    pub fn cmp_value(&self, other: &Value) -> Ordering {
        match (self.view, other) {
            (ColumnView::Null, Value::Null) => Ordering::Equal,
            (ColumnView::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            (ColumnView::Int(a), Value::Int(b)) => a.cmp(b),
            (ColumnView::Int(_), Value::Str(_)) => Ordering::Less,
            (ColumnView::Str(_), Value::Int(_)) => Ordering::Greater,
            (ColumnView::Str(a), Value::Str(b)) => a.cmp(b.as_str()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: `Null < Int(_) < Str(_)`; same-variant values compare by
    /// payload. Cross-type comparisons never happen for well-typed columns
    /// but must still be total so values can key a B+-tree.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut pos = 0;
        let out = Value::decode(&buf, &mut pos).expect("decode");
        assert_eq!(pos, buf.len());
        out
    }

    #[test]
    fn roundtrip_null() {
        assert_eq!(roundtrip(&Value::Null), Value::Null);
    }

    #[test]
    fn roundtrip_int_extremes() {
        for v in [0, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(roundtrip(&Value::Int(v)), Value::Int(v));
        }
    }

    #[test]
    fn roundtrip_strings() {
        for s in ["", "a", "ORD", "Frankfurt Airport", "日本語"] {
            assert_eq!(roundtrip(&Value::from(s)), Value::from(s));
        }
    }

    #[test]
    fn order_null_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::from(""));
        assert!(Value::Int(i64::MAX) < Value::from(""));
    }

    #[test]
    fn order_within_types() {
        assert!(Value::Int(3) < Value::Int(4));
        assert!(Value::from("FRA") < Value::from("ORD"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Value::Int(12345).encode(&mut buf);
        buf.truncate(5);
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let buf = vec![9u8];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let buf = vec![Value::TAG_STR, 2, 0, 0, 0, 0xff, 0xfe];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_ref_matches_decode() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::from(""),
            Value::from("Frankfurt Airport"),
            Value::from("日本語"),
        ] {
            let mut buf = vec![0xAAu8; 3]; // leading garbage: extents must be exact
            let start = buf.len();
            v.encode(&mut buf);
            let mut pos = start;
            let col = Value::decode_ref(&buf, &mut pos).expect("decode_ref");
            assert_eq!(pos, buf.len());
            assert_eq!(col.raw(), &buf[start..]);
            assert_eq!(col.to_value(), v);
        }
    }

    #[test]
    fn decode_ref_rejects_what_decode_rejects() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![9u8],
            vec![Value::TAG_INT, 1, 2, 3],
            vec![Value::TAG_STR, 2, 0, 0, 0, 0xff, 0xfe],
            vec![Value::TAG_STR, 5, 0, 0, 0, b'a'],
        ];
        for buf in cases {
            let mut p1 = 0;
            let mut p2 = 0;
            assert_eq!(
                Value::decode(&buf, &mut p1).is_err(),
                Value::decode_ref(&buf, &mut p2).is_err()
            );
            assert!(Value::decode_ref(&buf, &mut p2).is_err());
        }
    }

    #[test]
    fn cmp_value_mirrors_ord() {
        let values = [
            Value::Null,
            Value::Int(-7),
            Value::Int(42),
            Value::from(""),
            Value::from("ORD"),
        ];
        for a in &values {
            let mut buf = Vec::new();
            a.encode(&mut buf);
            let col = Value::decode_ref(&buf, &mut 0).expect("decode_ref");
            for b in &values {
                assert_eq!(col.cmp_value(b), a.cmp(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::from("x").to_string(), "'x'");
    }
}
