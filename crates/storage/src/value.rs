//! The value model: typed cell values with a total order and a compact
//! byte serialization.
//!
//! The paper's evaluation table has `INTEGER` key columns and a
//! `VARCHAR(512)` payload; [`Value`] covers both plus `NULL`.

use std::cmp::Ordering;
use std::fmt;

use crate::error::StorageError;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// 64-bit signed integer (covers the paper's INTEGER columns).
    Int(i64),
    /// Variable-length string (covers the paper's VARCHAR payload).
    Str(String),
}

impl Value {
    /// Serialization tag for NULL.
    const TAG_NULL: u8 = 0;
    /// Serialization tag for integers.
    const TAG_INT: u8 = 1;
    /// Serialization tag for strings.
    const TAG_STR: u8 = 2;

    /// Returns the integer payload, if this value is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this value is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Number of bytes [`Value::encode`] will append.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Appends the compact binary encoding of the value to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(Self::TAG_NULL),
            Value::Int(v) => {
                out.push(Self::TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(Self::TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Advances `pos` past one encoded value without materialising it.
    pub fn skip(buf: &[u8], pos: &mut usize) -> Result<(), StorageError> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("value tag past end of buffer".into()))?;
        *pos += 1;
        match tag {
            Self::TAG_NULL => Ok(()),
            Self::TAG_INT => {
                if buf.len() < *pos + 8 {
                    return Err(StorageError::Corrupt("truncated int value".into()));
                }
                *pos += 8;
                Ok(())
            }
            Self::TAG_STR => {
                let len_bytes: [u8; 4] = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| StorageError::Corrupt("truncated string length".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("string length width".into()))?;
                *pos += 4;
                let len = u32::from_le_bytes(len_bytes) as usize;
                if buf.len() < *pos + len {
                    return Err(StorageError::Corrupt("truncated string payload".into()));
                }
                *pos += len;
                Ok(())
            }
            other => Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        }
    }

    /// Decodes a value from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value, StorageError> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("value tag past end of buffer".into()))?;
        *pos += 1;
        match tag {
            Self::TAG_NULL => Ok(Value::Null),
            Self::TAG_INT => {
                let bytes: [u8; 8] = buf
                    .get(*pos..*pos + 8)
                    .ok_or_else(|| StorageError::Corrupt("truncated int value".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("int payload width".into()))?;
                *pos += 8;
                Ok(Value::Int(i64::from_le_bytes(bytes)))
            }
            Self::TAG_STR => {
                let len_bytes: [u8; 4] = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| StorageError::Corrupt("truncated string length".into()))?
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("string length width".into()))?;
                *pos += 4;
                let len = u32::from_le_bytes(len_bytes) as usize;
                let bytes = buf
                    .get(*pos..*pos + len)
                    .ok_or_else(|| StorageError::Corrupt("truncated string payload".into()))?;
                *pos += len;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| StorageError::Corrupt(format!("invalid utf-8 in string: {e}")))?;
                Ok(Value::Str(s.to_owned()))
            }
            other => Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: `Null < Int(_) < Str(_)`; same-variant values compare by
    /// payload. Cross-type comparisons never happen for well-typed columns
    /// but must still be total so values can key a B+-tree.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut pos = 0;
        let out = Value::decode(&buf, &mut pos).expect("decode");
        assert_eq!(pos, buf.len());
        out
    }

    #[test]
    fn roundtrip_null() {
        assert_eq!(roundtrip(&Value::Null), Value::Null);
    }

    #[test]
    fn roundtrip_int_extremes() {
        for v in [0, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(roundtrip(&Value::Int(v)), Value::Int(v));
        }
    }

    #[test]
    fn roundtrip_strings() {
        for s in ["", "a", "ORD", "Frankfurt Airport", "日本語"] {
            assert_eq!(roundtrip(&Value::from(s)), Value::from(s));
        }
    }

    #[test]
    fn order_null_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::from(""));
        assert!(Value::Int(i64::MAX) < Value::from(""));
    }

    #[test]
    fn order_within_types() {
        assert!(Value::Int(3) < Value::Int(4));
        assert!(Value::from("FRA") < Value::from("ORD"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Value::Int(12345).encode(&mut buf);
        buf.truncate(5);
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let buf = vec![9u8];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let buf = vec![Value::TAG_STR, 2, 0, 0, 0, 0xff, 0xfe];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::from("x").to_string(), "'x'");
    }
}
