//! Tuples: rows of [`Value`]s with a compact binary encoding.

use std::fmt;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::{ColumnRef, Value};

/// A row of values. Tuples are schema-agnostic containers; validation against
/// a [`Schema`] happens at table boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Wraps a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Borrows all values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Borrows the value at column position `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Number of values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Consumes the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Size of [`Tuple::to_bytes`] output.
    pub fn encoded_len(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_len).sum::<usize>()
    }

    /// Serializes the tuple: a little-endian u16 arity, then each value.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            v.encode(&mut out);
        }
        out
    }

    /// Deserializes a tuple previously produced by [`Tuple::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, StorageError> {
        let arity_bytes: [u8; 2] = buf
            .get(..2)
            .ok_or_else(|| StorageError::Corrupt("tuple shorter than arity header".into()))?
            .try_into()
            .map_err(|_| StorageError::Corrupt("arity header width".into()))?;
        let arity = u16::from_le_bytes(arity_bytes) as usize;
        let mut pos = 2;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(buf, &mut pos)?);
        }
        if pos != buf.len() {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after tuple",
                buf.len() - pos
            )));
        }
        Ok(Tuple { values })
    }

    /// Serializes after validating against `schema`.
    pub fn to_bytes_checked(&self, schema: &Schema) -> Result<Vec<u8>, StorageError> {
        schema.validate(&self.values)?;
        Ok(self.to_bytes())
    }

    /// Decodes only the value at column position `idx` from serialized tuple
    /// bytes, skipping earlier columns without materialising them.
    ///
    /// This is the table-scan hot path: paper Algorithm 1 evaluates the
    /// query predicate `q(t)` against a single column, so decoding the
    /// payload column (a up-to-512-byte string) for every visited tuple
    /// would dominate the scan cost.
    pub fn read_column(buf: &[u8], idx: usize) -> Result<Value, StorageError> {
        let arity_bytes: [u8; 2] = buf
            .get(..2)
            .ok_or_else(|| StorageError::Corrupt("tuple shorter than arity header".into()))?
            .try_into()
            .map_err(|_| StorageError::Corrupt("arity header width".into()))?;
        let arity = u16::from_le_bytes(arity_bytes) as usize;
        if idx >= arity {
            return Err(StorageError::Corrupt(format!(
                "column {idx} out of range for arity {arity}"
            )));
        }
        let mut pos = 2;
        for _ in 0..idx {
            Value::skip(buf, &mut pos)?;
        }
        Value::decode(buf, &mut pos)
    }

    /// Borrows `len` bytes starting at column `idx`'s encoded extent, or
    /// `None` when fewer than `len` bytes remain — the cheapest possible
    /// column access, for equality fast paths that compare a pre-encoded
    /// key against the stored bytes in place.
    ///
    /// Columns before `idx` are structurally validated (same as
    /// [`Tuple::read_column`]); the target column itself is *not* decoded,
    /// so corruption inside it surfaces as a non-match rather than an error.
    /// Because the value encoding is self-describing (tag first, then an
    /// explicit length for strings), a window equal to a well-formed key's
    /// encoding identifies exactly that value — a longer column cannot
    /// collide, its tag or length bytes differ inside the window.
    #[inline]
    pub fn read_column_window(
        buf: &[u8],
        idx: usize,
        len: usize,
    ) -> Result<Option<&[u8]>, StorageError> {
        let arity_bytes: [u8; 2] = buf
            .get(..2)
            .ok_or_else(|| StorageError::Corrupt("tuple shorter than arity header".into()))?
            .try_into()
            .map_err(|_| StorageError::Corrupt("arity header width".into()))?;
        let arity = u16::from_le_bytes(arity_bytes) as usize;
        if idx >= arity {
            return Err(StorageError::Corrupt(format!(
                "column {idx} out of range for arity {arity}"
            )));
        }
        let mut pos = 2;
        for _ in 0..idx {
            Value::skip(buf, &mut pos)?;
        }
        Ok(pos.checked_add(len).and_then(|end| buf.get(pos..end)))
    }

    /// Zero-copy variant of [`Tuple::read_column`]: borrows the encoded
    /// extent of column `idx` as a [`ColumnRef`] instead of materialising a
    /// [`Value`], so the scan fast path evaluates predicates without
    /// allocating. Validation and failure modes match `read_column` exactly.
    pub fn read_column_raw(buf: &[u8], idx: usize) -> Result<ColumnRef<'_>, StorageError> {
        let arity_bytes: [u8; 2] = buf
            .get(..2)
            .ok_or_else(|| StorageError::Corrupt("tuple shorter than arity header".into()))?
            .try_into()
            .map_err(|_| StorageError::Corrupt("arity header width".into()))?;
        let arity = u16::from_le_bytes(arity_bytes) as usize;
        if idx >= arity {
            return Err(StorageError::Corrupt(format!(
                "column {idx} out of range for arity {arity}"
            )));
        }
        let mut pos = 2;
        for _ in 0..idx {
            Value::skip(buf, &mut pos)?;
        }
        Value::decode_ref(buf, &mut pos)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![Value::Int(7), Value::from("ORD"), Value::Null])
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(Tuple::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        assert_eq!(Tuple::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(Tuple::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        assert!(Tuple::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Tuple::from_bytes(&[1]).is_err());
    }

    #[test]
    fn checked_serialization_respects_schema() {
        use crate::schema::{Column, Schema};
        let schema = Schema::new(vec![Column::int("k"), Column::str("v")]);
        let good = Tuple::new(vec![Value::Int(1), Value::from("x")]);
        let bad = Tuple::new(vec![Value::from("x"), Value::Int(1)]);
        assert!(good.to_bytes_checked(&schema).is_ok());
        assert!(bad.to_bytes_checked(&schema).is_err());
    }

    #[test]
    fn display_form() {
        assert_eq!(sample().to_string(), "(7, 'ORD', NULL)");
    }

    #[test]
    fn read_column_projects_without_full_decode() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(Tuple::read_column(&bytes, 0).unwrap(), Value::Int(7));
        assert_eq!(Tuple::read_column(&bytes, 1).unwrap(), Value::from("ORD"));
        assert_eq!(Tuple::read_column(&bytes, 2).unwrap(), Value::Null);
        assert!(Tuple::read_column(&bytes, 3).is_err());
        assert!(Tuple::read_column(&[1], 0).is_err());
    }

    #[test]
    fn read_column_raw_agrees_with_read_column() {
        let t = sample();
        let bytes = t.to_bytes();
        for idx in 0..4 {
            let owned = Tuple::read_column(&bytes, idx);
            let raw = Tuple::read_column_raw(&bytes, idx);
            match (owned, raw) {
                (Ok(v), Ok(c)) => {
                    assert_eq!(c.to_value(), v);
                    let mut enc = Vec::new();
                    v.encode(&mut enc);
                    assert_eq!(c.raw(), &enc[..]);
                }
                (Err(_), Err(_)) => {}
                (o, r) => panic!("column {idx}: owned={o:?} raw={r:?}"),
            }
        }
        assert!(Tuple::read_column_raw(&[1], 0).is_err());
    }

    #[test]
    fn read_column_rejects_truncation_mid_skip() {
        let t = Tuple::new(vec![Value::from("long string payload"), Value::Int(1)]);
        let bytes = t.to_bytes();
        assert!(Tuple::read_column(&bytes[..5], 1).is_err());
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(7)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.clone().into_values().len(), 3);
    }
}
