//! Byte-accurate memory governor shared by the buffer pool and the Index
//! Buffer Space.
//!
//! The paper bounds the Index Buffer with an entry count `L` (§IV) because
//! its prototype lived inside H2's heap. A production Adaptive Index Buffer
//! by definition lives *inside* the database buffer, so this crate accounts
//! real bytes instead: every memory-resident structure implements
//! [`MemoryUsage`], and one [`MemoryBudget`] arbitrates between the two
//! components that compete for the same pool — page frames
//! ([`BudgetComponent::BufferPool`]) and index-buffer partitions
//! ([`BudgetComponent::IndexSpace`]).
//!
//! The budget supports three limits, all optional:
//!
//! * a **total** cap shared by both components — growth on one side denies
//!   reservations on the other;
//! * a per-component cap for [`BufferPool`](BudgetComponent::BufferPool);
//! * a per-component cap for [`IndexSpace`](BudgetComponent::IndexSpace) —
//!   this is what the paper's `L` compiles down to, via
//!   [`entry_footprint`]-derived bytes.
//!
//! Accounting is atomic (reservation loops CAS the component counter), and
//! the governor tracks a high-water mark, denied reservations, and
//! displacement counts for `engine::metrics`.

// aib-lint: allow-file(no-index) — per-component counters are fixed-size
// arrays indexed by `BudgetComponent as usize`, a closed enum whose
// discriminants are the array's definition.

use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use crate::value::Value;

/// Types that can report their resident memory footprint in bytes.
///
/// Footprints are *logical*: they count the bytes the structure holds on
/// behalf of the budget (entry payloads, page images), not allocator
/// overhead, so that accounting stays deterministic across platforms.
pub trait MemoryUsage {
    /// Resident bytes currently held by this structure.
    fn footprint(&self) -> usize;
}

/// Fixed per-entry bookkeeping bytes charged on top of the encoded value:
/// an 8-byte rid, an 8-byte next pointer, a 4-byte page id, a 2-byte slot,
/// and a 1-byte tag — the per-entry overhead of the in-memory index node.
pub const ENTRY_BASE_BYTES: usize = 23;

/// Footprint of one index-buffer entry holding `value`.
///
/// An `Int` entry is exactly [`DEFAULT_ENTRY_FOOTPRINT`] bytes, which makes
/// the paper's entry bound `L` translate losslessly into a byte budget for
/// integer key columns (all of the paper's evaluation columns are INTEGER).
pub fn entry_footprint(value: &Value) -> usize {
    ENTRY_BASE_BYTES + value.encoded_len()
}

/// Bytes assumed per entry when only an entry *count* is known: the exact
/// footprint of an integer entry (`ENTRY_BASE_BYTES + 9`).
pub const DEFAULT_ENTRY_FOOTPRINT: usize = ENTRY_BASE_BYTES + 9;

/// The two consumers sharing one [`MemoryBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetComponent {
    /// Buffer-pool page frames.
    BufferPool,
    /// Index Buffer Space partitions.
    IndexSpace,
}

const COMPONENTS: usize = 2;

impl BudgetComponent {
    fn idx(self) -> usize {
        match self {
            BudgetComponent::BufferPool => 0,
            BudgetComponent::IndexSpace => 1,
        }
    }
}

/// Sentinel for "no limit" (a limit of `usize::MAX` bytes is unreachable).
const UNLIMITED: usize = usize::MAX;

/// Shared byte budget with atomic reservation/release accounting.
///
/// Owned by the engine and handed (via `Arc`) to both the buffer pool and
/// the Index Buffer Space. A reservation succeeds only if it fits the
/// requesting component's own cap *and* the shared total; either side can
/// therefore starve the other of headroom, which is exactly the production
/// constraint the paper's standalone `L` ignores.
///
/// # Atomics ordering audit
///
/// This is the written audit `aib-lint`'s `atomics-order` allowlist points
/// at (the Acquire/Release edges are also tabulated in DESIGN §7 and
/// model-checked by `aib-model`'s `budget_cross_pressure` protocol). Two
/// classes of atomics live here, with different ordering needs:
///
/// * **Admission state** (`used`, `total`, `high_water`): every load that
///   feeds a reserve/charge decision is `Acquire` and every successful
///   `compare_exchange_weak`/`fetch_add`/`store` that publishes a new
///   charge is `AcqRel`/`Release`. Same-component racing reservations
///   serialise on the per-component CAS loop; **cross**-component racing
///   reservations serialise on the `total` CAS in stage 2 of
///   [`try_reserve`](MemoryBudget::try_reserve) — the single
///   linearization point for the shared cap, which is what guarantees two
///   components can never jointly overshoot `total_limit` (each admission
///   atomically claims its bytes out of the remaining total or rolls its
///   component claim back). These sites must **never** be relaxed; they
///   are deliberately absent from the lint allowlist.
/// * **Telemetry** (`denials`, `displacements`): monotonic event tallies
///   read only by [`snapshot`](MemoryBudget::snapshot) and the metrics
///   accessors, for reporting. They guard no decision and order no other
///   memory access, so `Ordering::Relaxed` is sound — atomicity alone
///   gives an exact count, and a reader observing a slightly stale tally
///   is indistinguishable from having read a moment earlier. These are
///   the only `Relaxed` sites in this file, and the only ones the lint
///   allowlist admits (substrings `denials` / `displacements`).
#[derive(Debug)]
pub struct MemoryBudget {
    total_limit: usize,
    component_limits: [usize; COMPONENTS],
    used: [AtomicUsize; COMPONENTS],
    /// Combined admitted bytes — kept as its own atomic (not the sum of
    /// `used`) so cross-component admission has one word to CAS.
    total: AtomicUsize,
    high_water: AtomicUsize,
    denials: AtomicU64,
    displacements: AtomicU64,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MemoryBudget {
    /// A budget with no caps: every reservation succeeds, usage is still
    /// tracked. This is the default wiring and preserves the pre-governor
    /// behaviour of both components.
    pub fn unlimited() -> Self {
        MemoryBudget {
            total_limit: UNLIMITED,
            component_limits: [UNLIMITED; COMPONENTS],
            used: [AtomicUsize::new(0), AtomicUsize::new(0)],
            total: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            denials: AtomicU64::new(0),
            displacements: AtomicU64::new(0),
        }
    }

    /// A budget whose *combined* usage may not exceed `total` bytes.
    pub fn with_total(total: usize) -> Self {
        let mut b = Self::unlimited();
        b.total_limit = total;
        b
    }

    /// Caps `component` at `limit` bytes (builder-style).
    pub fn with_component_limit(mut self, component: BudgetComponent, limit: usize) -> Self {
        self.component_limits[component.idx()] = limit;
        self
    }

    /// The shared total cap, if any.
    pub fn total_limit(&self) -> Option<usize> {
        (self.total_limit != UNLIMITED).then_some(self.total_limit)
    }

    /// The per-component cap, if any.
    pub fn component_limit(&self, component: BudgetComponent) -> Option<usize> {
        let limit = self.component_limits[component.idx()];
        (limit != UNLIMITED).then_some(limit)
    }

    /// True when neither the total nor `component` carries a cap.
    pub fn is_unlimited(&self, component: BudgetComponent) -> bool {
        self.total_limit == UNLIMITED && self.component_limits[component.idx()] == UNLIMITED
    }

    /// Bytes currently charged to `component`.
    pub fn used(&self, component: BudgetComponent) -> usize {
        self.used[component.idx()].load(Ordering::Acquire)
    }

    /// Combined bytes charged to both components.
    pub fn total_used(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// Bytes `component` may still reserve before a cap denies it
    /// (`usize::MAX` when unlimited).
    pub fn headroom(&self, component: BudgetComponent) -> usize {
        let mine = self.used(component);
        let component_room = self.component_limits[component.idx()].saturating_sub(mine);
        let total_room = self.total_limit.saturating_sub(self.total_used());
        component_room.min(total_room)
    }

    /// Atomically reserves `bytes` for `component`. Returns `false` (and
    /// counts a denial) when the reservation would exceed the component cap
    /// or the shared total.
    ///
    /// Admission is two CAS stages: claim under the component cap, then
    /// claim under the shared total (rolling the component claim back on
    /// denial). The `total` CAS is the cross-component linearization
    /// point — without it, two components racing the shared cap could each
    /// read the other's pre-claim usage and *both* admit (check-then-act),
    /// jointly overshooting `total_limit`. A claim that loses stage 2 is
    /// briefly visible in its component slot, so a concurrent
    /// same-component reservation can be denied conservatively; it can
    /// never cause an over-admission. Model test: `budget_cross_pressure`.
    pub fn try_reserve(&self, component: BudgetComponent, bytes: usize) -> bool {
        let slot = &self.used[component.idx()];
        let mut mine = slot.load(Ordering::Acquire);
        loop {
            let fits = mine
                .checked_add(bytes)
                .is_some_and(|new| new <= self.component_limits[component.idx()]);
            if !fits {
                self.denials.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match slot.compare_exchange_weak(
                mine,
                mine + bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => mine = actual,
            }
        }
        #[cfg(not(model_seeded_bug = "budget_check_then_act"))]
        {
            let mut cur = self.total.load(Ordering::Acquire);
            loop {
                let fits = cur
                    .checked_add(bytes)
                    .is_some_and(|t| t <= self.total_limit);
                if !fits {
                    self.release_slot(component, bytes);
                    self.denials.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                match self.total.compare_exchange_weak(
                    cur,
                    cur + bytes,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.note_high_water();
                        return true;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
        #[cfg(model_seeded_bug = "budget_check_then_act")]
        {
            // WRONG: check-then-act on the shared total — two components
            // racing the cap both read the pre-claim total and both admit.
            let cur = self.total.load(Ordering::Acquire);
            let fits = cur
                .checked_add(bytes)
                .is_some_and(|t| t <= self.total_limit);
            if !fits {
                self.release_slot(component, bytes);
                self.denials.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            self.total.store(cur + bytes, Ordering::Release);
            self.note_high_water();
            return true;
        }
    }

    /// Charges `bytes` to `component` unconditionally (no cap check). Used
    /// for transient overshoot during maintenance, where denying would lose
    /// updates; the caller is expected to displace back under budget.
    pub fn charge(&self, component: BudgetComponent, bytes: usize) {
        self.used[component.idx()].fetch_add(bytes, Ordering::AcqRel);
        self.total.fetch_add(bytes, Ordering::AcqRel);
        self.note_high_water();
    }

    /// Decrements `component`'s slot by `bytes`, saturating at zero;
    /// returns the bytes actually removed.
    #[cfg(not(model_seeded_bug = "budget_release_lost"))]
    fn release_slot(&self, component: BudgetComponent, bytes: usize) -> usize {
        let slot = &self.used[component.idx()];
        let mut cur = slot.load(Ordering::Acquire);
        loop {
            let new = cur.saturating_sub(bytes);
            match slot.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return cur - new,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Seeded bug: load-then-store "release" — a charge or release landing
    /// between the two is silently overwritten (lost update), leaving the
    /// slot permanently inflated or deflated.
    #[cfg(model_seeded_bug = "budget_release_lost")]
    fn release_slot(&self, component: BudgetComponent, bytes: usize) -> usize {
        let slot = &self.used[component.idx()];
        let cur = slot.load(Ordering::Acquire);
        let new = cur.saturating_sub(bytes);
        slot.store(new, Ordering::Release);
        cur - new
    }

    /// Decrements the shared total by `bytes`, saturating at zero.
    fn release_total(&self, bytes: usize) {
        let mut cur = self.total.load(Ordering::Acquire);
        loop {
            let new = cur.saturating_sub(bytes);
            match self
                .total
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `bytes` previously reserved or charged to `component`,
    /// saturating at zero.
    pub fn release(&self, component: BudgetComponent, bytes: usize) {
        let freed = self.release_slot(component, bytes);
        self.release_total(freed);
    }

    /// Reconciles `component`'s charge with an externally computed
    /// footprint (components that mutate structures in place report their
    /// true [`MemoryUsage::footprint`] here after the fact).
    pub fn set_component_usage(&self, component: BudgetComponent, bytes: usize) {
        let prev = self.used[component.idx()].swap(bytes, Ordering::AcqRel);
        if bytes >= prev {
            self.total.fetch_add(bytes - prev, Ordering::AcqRel);
        } else {
            self.release_total(prev - bytes);
        }
        self.note_high_water();
    }

    /// Highest combined usage ever observed, in bytes.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    /// Reservations denied so far.
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Displacements recorded so far (partition drops + frame evictions).
    pub fn displacements(&self) -> u64 {
        self.displacements.load(Ordering::Relaxed)
    }

    /// Counts `n` displacements performed to make room under this budget.
    pub fn record_displacements(&self, n: u64) {
        self.displacements.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every governor counter.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            buffer_pool_bytes: self.used(BudgetComponent::BufferPool),
            index_bytes: self.used(BudgetComponent::IndexSpace),
            total_limit: self.total_limit(),
            high_water: self.high_water(),
            denials: self.denials(),
            displacements: self.displacements(),
        }
    }

    fn note_high_water(&self) {
        let total = self.total_used();
        self.high_water.fetch_max(total, Ordering::AcqRel);
    }
}

/// Point-in-time governor counters, surfaced through `engine::metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSnapshot {
    /// Bytes resident in buffer-pool frames.
    pub buffer_pool_bytes: usize,
    /// Bytes resident in index-buffer partitions.
    pub index_bytes: usize,
    /// The shared total cap, if any.
    pub total_limit: Option<usize>,
    /// Highest combined usage observed.
    pub high_water: usize,
    /// Reservations denied.
    pub denials: u64,
    /// Displacements performed.
    pub displacements: u64,
}

impl BudgetSnapshot {
    /// Combined resident bytes across both components.
    pub fn total_bytes(&self) -> usize {
        self.buffer_pool_bytes + self.index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BudgetComponent::{BufferPool, IndexSpace};

    #[test]
    fn unlimited_budget_accepts_everything() {
        let b = MemoryBudget::unlimited();
        assert!(b.is_unlimited(BufferPool));
        assert!(b.try_reserve(BufferPool, usize::MAX / 2));
        assert!(b.try_reserve(IndexSpace, usize::MAX / 2));
        assert_eq!(b.denials(), 0);
        assert_eq!(b.total_limit(), None);
    }

    #[test]
    fn component_cap_denies_and_counts() {
        let b = MemoryBudget::unlimited().with_component_limit(IndexSpace, 100);
        assert!(b.try_reserve(IndexSpace, 60));
        assert!(
            !b.try_reserve(IndexSpace, 41),
            "61..=100 leaves room for 40"
        );
        assert!(b.try_reserve(IndexSpace, 40));
        assert_eq!(b.used(IndexSpace), 100);
        assert_eq!(b.denials(), 1);
        assert_eq!(b.headroom(IndexSpace), 0);
        // The other component is unaffected by a per-component cap.
        assert!(b.try_reserve(BufferPool, 1_000_000));
    }

    #[test]
    fn shared_total_lets_one_component_starve_the_other() {
        let b = MemoryBudget::with_total(1_000);
        assert!(b.try_reserve(IndexSpace, 900));
        assert!(
            !b.try_reserve(BufferPool, 200),
            "index growth denies the pool"
        );
        assert_eq!(b.headroom(BufferPool), 100);
        b.release(IndexSpace, 500);
        assert!(
            b.try_reserve(BufferPool, 200),
            "released bytes free the pool"
        );
    }

    #[test]
    fn release_saturates_and_reconcile_overwrites() {
        let b = MemoryBudget::unlimited();
        b.charge(IndexSpace, 10);
        b.release(IndexSpace, 25);
        assert_eq!(b.used(IndexSpace), 0);
        b.set_component_usage(IndexSpace, 77);
        assert_eq!(b.used(IndexSpace), 77);
    }

    #[test]
    fn high_water_tracks_combined_peak() {
        let b = MemoryBudget::unlimited();
        b.charge(BufferPool, 300);
        b.charge(IndexSpace, 200);
        b.release(BufferPool, 300);
        b.charge(IndexSpace, 50);
        assert_eq!(b.high_water(), 500);
        let snap = b.snapshot();
        assert_eq!(snap.buffer_pool_bytes, 0);
        assert_eq!(snap.index_bytes, 250);
        assert_eq!(snap.total_bytes(), 250);
        assert_eq!(snap.high_water, 500);
    }

    #[test]
    fn displacement_counter_accumulates() {
        let b = MemoryBudget::unlimited();
        b.record_displacements(2);
        b.record_displacements(3);
        assert_eq!(b.displacements(), 5);
        assert_eq!(b.snapshot().displacements, 5);
    }

    #[test]
    fn entry_footprint_is_exact_for_integers() {
        assert_eq!(entry_footprint(&Value::Int(42)), DEFAULT_ENTRY_FOOTPRINT);
        assert_eq!(entry_footprint(&Value::Null), ENTRY_BASE_BYTES + 1);
        assert_eq!(
            entry_footprint(&Value::from("ORD")),
            ENTRY_BASE_BYTES + 5 + 3
        );
    }
}
