//! Free-space map: approximate per-page free bytes, so inserts find a page
//! without probing every page.

/// Tracks free bytes per heap-page ordinal. Values are advisory — the page
/// itself is authoritative — so a stale overestimate merely costs one probe.
#[derive(Debug, Default, Clone)]
pub struct FreeSpaceMap {
    free: Vec<u16>,
}

impl FreeSpaceMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True if no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Registers a new page with `free` bytes, returning its ordinal.
    pub fn push(&mut self, free: usize) -> u32 {
        let ord = self.free.len() as u32;
        self.free.push(free.min(u16::MAX as usize) as u16);
        ord
    }

    /// Updates the recorded free bytes of page `ordinal`.
    pub fn set(&mut self, ordinal: u32, free: usize) {
        if let Some(slot) = self.free.get_mut(ordinal as usize) {
            *slot = free.min(u16::MAX as usize) as u16;
        }
    }

    /// Recorded free bytes of page `ordinal`.
    pub fn get(&self, ordinal: u32) -> usize {
        self.free.get(ordinal as usize).copied().unwrap_or(0) as usize
    }

    /// Finds a page with at least `needed` recorded free bytes, preferring
    /// the latest pages (fresh pages live at the tail, and recent pages are
    /// most likely resident in the buffer pool).
    pub fn find(&self, needed: usize) -> Option<u32> {
        self.free
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &f)| f as usize >= needed)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_find() {
        let mut fsm = FreeSpaceMap::new();
        assert!(fsm.is_empty());
        assert_eq!(fsm.find(1), None);
        let a = fsm.push(100);
        let b = fsm.push(500);
        assert_eq!((a, b), (0, 1));
        assert_eq!(fsm.len(), 2);
        assert_eq!(fsm.find(200), Some(1));
        assert_eq!(fsm.find(50), Some(1), "prefers the latest page");
        assert_eq!(fsm.find(501), None);
    }

    #[test]
    fn set_and_get() {
        let mut fsm = FreeSpaceMap::new();
        let a = fsm.push(100);
        fsm.set(a, 10);
        assert_eq!(fsm.get(a), 10);
        assert_eq!(fsm.find(50), None);
        fsm.set(99, 1000); // out of range: ignored
        assert_eq!(fsm.get(99), 0);
    }

    #[test]
    fn clamps_to_u16() {
        let mut fsm = FreeSpaceMap::new();
        let a = fsm.push(1_000_000);
        assert_eq!(fsm.get(a), u16::MAX as usize);
    }
}
