//! The disk seam: the [`DiskBackend`] trait plus the default simulated
//! in-memory backend with deterministic I/O cost accounting.
//!
//! **Substitution note (see DESIGN.md §4).** The paper ran on a physical SSD;
//! the *default* backend replaces it with an in-memory simulation so that
//! (a) experiments are reproducible bit-for-bit and (b) page-level I/O — the
//! quantity the Index Buffer actually optimises — is observable directly
//! rather than inferred from wall time. Since PR 7 the simulation is one of
//! two [`DiskBackend`] implementations: [`crate::FileBackend`] persists the
//! same page space to a real heap file (see `file_backend.rs`) for the
//! durability/recovery path, while [`DiskManager`] remains the bench default.

use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;
use crate::rid::PageId;
use crate::stats::IoStats;

/// Size of every disk page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// The storage layer's disk seam: a page store addressed by dense
/// [`PageId`]s with batched reads, plus cost/statistics accounting.
///
/// Two implementations exist:
///
/// * [`DiskManager`] — the in-memory simulation (bench default, bit-for-bit
///   deterministic, no durability).
/// * [`crate::FileBackend`] — one heap file with a versioned header page and
///   page-aligned I/O; [`DiskBackend::sync`] makes writes durable (no-steal:
///   until `sync`, writes live in an in-memory overlay and the file stays
///   checkpoint-consistent).
///
/// Both charge *identical* [`IoStats`] counts and simulated-time costs for
/// the same operation sequence (enforced by
/// `crates/storage/tests/backend_parity.rs`), so the paper's page-I/O
/// economics are backend-independent.
pub trait DiskBackend: Send {
    /// Allocates a fresh zeroed page and returns its id. Allocation itself
    /// is not charged; the first write is.
    fn allocate(&mut self) -> Result<PageId, StorageError>;

    /// Reads page `id` into `buf`, charging one page read.
    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError>;

    /// Fills every `(id, buf)` request in one disk operation — the sweep
    /// read's "one request per run" path. Each page is charged the same
    /// per-page cost as [`DiskBackend::read`], but the statistics sink is
    /// touched once for the whole batch. Pages copied before a failure are
    /// still charged.
    fn read_batch(
        &mut self,
        reqs: &mut [(PageId, &mut [u8; PAGE_SIZE])],
    ) -> Result<(), StorageError>;

    /// Writes `buf` to page `id`, charging one page write.
    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), StorageError>;

    /// Number of allocated pages.
    fn num_pages(&self) -> usize;

    /// Makes all writes since the previous `sync` durable (fsync for
    /// file-backed implementations; a no-op for the simulation). Flush I/O
    /// performed here is *not* charged to [`IoStats`] in either backend —
    /// the simulated-time axis tracks the paper's read/write economics, not
    /// checkpoint background I/O.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// The shared statistics sink; clones of this `Arc` observe all I/O.
    fn stats(&self) -> Arc<IoStats>;

    /// The active cost model.
    fn cost_model(&self) -> CostModel;

    /// Test hook: makes the next `sync` fail *after* data has partially
    /// reached the medium, emulating a crash mid-checkpoint. The default
    /// (and the simulation's) implementation ignores it.
    fn fail_next_sync(&mut self) {}
}

/// Simulated cost of physical page accesses, in microseconds.
///
/// Defaults approximate the paper's SATA SSD era hardware: ~100 µs per random
/// page read/write. Absolute values only scale the simulated-time axis; the
/// figures' shapes are invariant to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simulated microseconds per page read.
    pub read_us: u64,
    /// Simulated microseconds per page write.
    pub write_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_us: 100,
            write_us: 120,
        }
    }
}

impl CostModel {
    /// A zero-cost model, useful for tests that only count operations.
    pub fn free() -> Self {
        CostModel {
            read_us: 0,
            write_us: 0,
        }
    }
}

/// In-memory page store standing in for a disk.
pub struct DiskManager {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    cost: CostModel,
    stats: Arc<IoStats>,
}

impl fmt::Debug for DiskManager {
    /// Compact summary — a derived impl would dump every 8 KiB page buffer.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskManager")
            .field("num_pages", &self.pages.len())
            .field("cost", &self.cost)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl DiskManager {
    /// Creates an empty disk with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        DiskManager {
            pages: Vec::new(),
            cost,
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The shared statistics sink; clones of this `Arc` observe all I/O.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The active cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocates a fresh zeroed page. Allocation itself is not charged; the
    /// first write is.
    pub fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Box::new([0; PAGE_SIZE]));
        id
    }

    /// Reads page `id` into `buf`, charging one page read.
    pub fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        let page = self
            .pages
            .get(id.index())
            .ok_or(StorageError::UnknownPage(id))?;
        buf.copy_from_slice(&page[..]);
        self.stats.record_reads(1, self.cost.read_us);
        Ok(())
    }

    /// Fills every `(id, buf)` request in one disk operation — the sweep
    /// read's "one request per run" path. Each page is charged the same
    /// per-page cost as [`DiskManager::read`] (so simulated time is identical
    /// to page-at-a-time reads), but the statistics sink is touched once for
    /// the whole batch. Pages copied before an unknown-id failure are still
    /// charged.
    pub fn read_batch(
        &mut self,
        reqs: &mut [(PageId, &mut [u8; PAGE_SIZE])],
    ) -> Result<(), StorageError> {
        let mut copied = 0u64;
        let mut failure = None;
        for (id, buf) in reqs.iter_mut() {
            match self.pages.get(id.index()) {
                Some(page) => {
                    buf.copy_from_slice(&page[..]);
                    copied += 1;
                }
                None => {
                    failure = Some(StorageError::UnknownPage(*id));
                    break;
                }
            }
        }
        if copied > 0 {
            self.stats.record_reads(copied, self.cost.read_us);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Writes `buf` to page `id`, charging one page write.
    pub fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), StorageError> {
        let page = self
            .pages
            .get_mut(id.index())
            .ok_or(StorageError::UnknownPage(id))?;
        page.copy_from_slice(buf);
        self.stats.record_writes(1, self.cost.write_us);
        Ok(())
    }
}

impl DiskBackend for DiskManager {
    fn allocate(&mut self) -> Result<PageId, StorageError> {
        Ok(DiskManager::allocate(self))
    }

    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        DiskManager::read(self, id, buf)
    }

    fn read_batch(
        &mut self,
        reqs: &mut [(PageId, &mut [u8; PAGE_SIZE])],
    ) -> Result<(), StorageError> {
        DiskManager::read_batch(self, reqs)
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), StorageError> {
        DiskManager::write(self, id, buf)
    }

    fn num_pages(&self) -> usize {
        DiskManager::num_pages(self)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        // Nothing to persist: the simulation *is* its own medium.
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        DiskManager::stats(self)
    }

    fn cost_model(&self) -> CostModel {
        DiskManager::cost_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let mut disk = DiskManager::new(CostModel::default());
        let p0 = disk.allocate();
        let p1 = disk.allocate();
        assert_eq!(disk.num_pages(), 2);

        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write(p1, &buf).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        disk.read(p1, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        disk.read(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "fresh pages are zeroed");
    }

    #[test]
    fn unknown_page_rejected() {
        let mut disk = DiskManager::new(CostModel::default());
        let mut buf = [0u8; PAGE_SIZE];
        assert_eq!(
            disk.read(PageId(0), &mut buf),
            Err(StorageError::UnknownPage(PageId(0)))
        );
        assert_eq!(
            disk.write(PageId(7), &buf),
            Err(StorageError::UnknownPage(PageId(7)))
        );
    }

    #[test]
    fn read_batch_fills_all_pages_and_charges_once_per_page() {
        let mut disk = DiskManager::new(CostModel {
            read_us: 5,
            write_us: 7,
        });
        let p0 = disk.allocate();
        let p1 = disk.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 1;
        disk.write(p0, &buf).unwrap();
        buf[0] = 2;
        disk.write(p1, &buf).unwrap();

        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        let before = disk.stats().snapshot();
        disk.read_batch(&mut [(p0, &mut a), (p1, &mut b)]).unwrap();
        let d = disk.stats().snapshot().since(&before);
        assert_eq!((a[0], b[0]), (1, 2));
        assert_eq!(d.page_reads, 2);
        assert_eq!(d.simulated_us, 2 * 5, "same per-page cost as read()");

        let mut c = [0u8; PAGE_SIZE];
        assert_eq!(
            disk.read_batch(&mut [(p0, &mut a), (PageId(9), &mut c)]),
            Err(StorageError::UnknownPage(PageId(9)))
        );
    }

    #[test]
    fn debug_is_compact() {
        let mut disk = DiskManager::new(CostModel::default());
        for _ in 0..64 {
            disk.allocate();
        }
        let dbg = format!("{disk:?}");
        assert!(dbg.contains("num_pages: 64"), "{dbg}");
        assert!(
            dbg.len() < 512,
            "manual Debug must not dump page buffers: {} chars",
            dbg.len()
        );
    }

    #[test]
    fn trait_object_roundtrip() {
        let mut disk: Box<dyn DiskBackend> = Box::new(DiskManager::new(CostModel::free()));
        let p = disk.allocate().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        buf[7] = 77;
        disk.write(p, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read(p, &mut out).unwrap();
        assert_eq!(out[7], 77);
        assert_eq!(disk.num_pages(), 1);
        disk.fail_next_sync(); // no-op for the simulation
        disk.sync().unwrap();
    }

    #[test]
    fn io_is_charged_to_stats() {
        let mut disk = DiskManager::new(CostModel {
            read_us: 5,
            write_us: 7,
        });
        let p = disk.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        disk.write(p, &buf).unwrap();
        disk.read(p, &mut buf).unwrap();
        disk.read(p, &mut buf).unwrap();
        let s = disk.stats().snapshot();
        assert_eq!(s.page_reads, 2);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.simulated_us, 2 * 5 + 7);
    }
}
