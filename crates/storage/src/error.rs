//! Error type shared by all storage-layer operations.

use std::fmt;

use crate::rid::{PageId, Rid};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id that was never allocated by the disk manager.
    UnknownPage(PageId),
    /// A record id whose page exists but whose slot is empty or out of range.
    UnknownRid(Rid),
    /// The record is too large to ever fit in a page.
    TupleTooLarge {
        /// Serialized tuple size in bytes.
        size: usize,
        /// Largest payload a fresh page can hold.
        max: usize,
    },
    /// The buffer pool has no evictable frame left (everything is pinned).
    PoolExhausted,
    /// A tuple's bytes do not deserialize under the given schema.
    Corrupt(String),
    /// A tuple does not conform to the schema it is being stored under.
    SchemaMismatch(String),
    /// An operating-system I/O failure from a file-backed component (heap
    /// file, WAL). Carries the formatted `std::io::Error` message, because
    /// `io::Error` itself is neither `Clone` nor `Eq`.
    Io(String),
}

impl StorageError {
    /// Wraps a `std::io::Error` with a short context label, e.g.
    /// `StorageError::io("wal append", e)`.
    pub fn io(context: &str, err: std::io::Error) -> Self {
        StorageError::Io(format!("{context}: {err}"))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownPage(p) => write!(f, "unknown page {p:?}"),
            StorageError::UnknownRid(r) => write!(f, "unknown rid {r:?}"),
            StorageError::TupleTooLarge { size, max } => {
                write!(
                    f,
                    "tuple of {size} bytes exceeds page capacity of {max} bytes"
                )
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}
