//! Slotted-page layout for variable-length tuples.
//!
//! ```text
//! 0        2           4           6           8
//! +--------+-----------+-----------+-----------+------------------ - - -
//! | nslots | data_start| frag_bytes| live_count| slot dir (4 B each) ...
//! +--------+-----------+-----------+-----------+------------------ - - -
//!                        ... free space ...
//!            - - - ------------------------------------------------+
//!                         tuple data, packed towards the page end   |
//!            - - - ------------------------------------------------+
//! ```
//!
//! Each slot is `(offset: u16, len: u16)`; `len == 0` marks a deleted slot
//! whose id can be reused. Tuple data grows downward from the page end,
//! the slot directory upward from the header. Deletes and shrinking updates
//! leave `frag_bytes` of reclaimable space; compaction repacks the data
//! region when contiguous space runs out.
//!
//! Slot ids are **stable across compaction**, which is essential here: record
//! ids are stored in partial indexes and in the Index Buffer, and Table I
//! maintenance relies on a tuple keeping its `Rid` unless an update moves it.

// aib-lint: allow-file(no-index) — every offset below is read from the
// header or the slot directory and bounds-checked against PAGE_SIZE at
// decode time (`slot`, `data_start`); indexing after those checks is the
// point of the layout, and `.get()` noise would hide the arithmetic that
// the checks protect.

use crate::disk::PAGE_SIZE;
use crate::rid::SlotId;

const HEADER: usize = 8;
const SLOT_BYTES: usize = 4;

/// Largest tuple a fresh page can store (one slot entry + the payload).
pub const MAX_TUPLE_BYTES: usize = PAGE_SIZE - HEADER - SLOT_BYTES;

#[inline]
fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

#[inline]
fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Shared read-only accessors over a raw page image.
///
/// Free functions so both [`SlottedPage`] (mutable) and [`PageView`]
/// (read-only) can use them without borrowing tricks.
mod raw {
    use super::*;

    pub fn nslots(buf: &[u8]) -> usize {
        get_u16(buf, 0) as usize
    }

    pub fn data_start(buf: &[u8]) -> usize {
        let v = get_u16(buf, 2) as usize;
        // A zeroed (freshly allocated) page reads as data_start == 0, which
        // means "uninitialised"; treat it as an empty page.
        if v == 0 {
            PAGE_SIZE
        } else {
            v
        }
    }

    pub fn frag_bytes(buf: &[u8]) -> usize {
        get_u16(buf, 4) as usize
    }

    pub fn live_count(buf: &[u8]) -> usize {
        get_u16(buf, 6) as usize
    }

    pub fn slot(buf: &[u8], idx: usize) -> (usize, usize) {
        let at = HEADER + idx * SLOT_BYTES;
        (get_u16(buf, at) as usize, get_u16(buf, at + 2) as usize)
    }

    pub fn tuple(buf: &[u8], slot_id: SlotId) -> Option<&[u8]> {
        let idx = slot_id.0 as usize;
        if idx >= nslots(buf) {
            return None;
        }
        let (off, len) = slot(buf, idx);
        if len == 0 {
            return None;
        }
        Some(&buf[off..off + len])
    }

    /// Contiguous free bytes between the slot directory and the data region.
    pub fn contiguous_free(buf: &[u8]) -> usize {
        data_start(buf).saturating_sub(HEADER + nslots(buf) * SLOT_BYTES)
    }
}

/// Read-only view over a page image.
#[derive(Debug, Clone, Copy)]
pub struct PageView<'a> {
    buf: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wraps a page-sized byte slice.
    ///
    /// # Panics
    /// If `buf` is not exactly [`PAGE_SIZE`] bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        assert_eq!(buf.len(), PAGE_SIZE, "page view requires a full page image");
        PageView { buf }
    }

    /// Number of slot directory entries (live or deleted).
    pub fn slot_count(&self) -> usize {
        raw::nslots(self.buf)
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        raw::live_count(self.buf)
    }

    /// Bytes of the tuple in `slot`, if live.
    pub fn get(&self, slot: SlotId) -> Option<&'a [u8]> {
        raw::tuple(self.buf, slot)
    }

    /// Iterates `(slot, tuple bytes)` over live tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &'a [u8])> + '_ {
        let buf = self.buf;
        (0..raw::nslots(buf)).filter_map(move |i| {
            let id = SlotId(i as u16);
            raw::tuple(buf, id).map(|t| (id, t))
        })
    }

    /// Drives `f` over every live tuple in slot order — the scan hot path.
    /// Same visits as [`PageView::iter`] on a well-formed page, but the slot
    /// count is read once and each directory entry costs one decode, instead
    /// of `iter`'s per-slot re-validation through [`PageView::get`]; a
    /// directory entry pointing past the page is skipped rather than
    /// panicking.
    #[inline]
    pub fn for_each_live(&self, mut f: impl FnMut(SlotId, &'a [u8])) {
        let buf = self.buf;
        let n = raw::nslots(buf).min((PAGE_SIZE - HEADER) / SLOT_BYTES);
        let Some(dir) = buf.get(HEADER..HEADER + n * SLOT_BYTES) else {
            return;
        };
        // chunks_exact gives fixed-width entries, so the per-entry decodes
        // compile without bounds checks — the row loop stays branch-lean.
        for (i, entry) in dir.chunks_exact(SLOT_BYTES).enumerate() {
            let off = u16::from_le_bytes([entry[0], entry[1]]) as usize;
            let len = u16::from_le_bytes([entry[2], entry[3]]) as usize;
            if len == 0 {
                continue;
            }
            if let Some(bytes) = buf.get(off..off + len) {
                f(SlotId(i as u16), bytes);
            }
        }
    }

    /// Free bytes usable by an insert after compaction (excluding a possible
    /// new slot entry).
    pub fn free_bytes(&self) -> usize {
        raw::contiguous_free(self.buf) + raw::frag_bytes(self.buf)
    }
}

/// Mutable slotted-page editor over a page image.
#[derive(Debug)]
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wraps a page-sized byte slice for editing. Zeroed (fresh) pages are
    /// valid empty pages.
    ///
    /// # Panics
    /// If `buf` is not exactly [`PAGE_SIZE`] bytes.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert_eq!(
            buf.len(),
            PAGE_SIZE,
            "slotted page requires a full page image"
        );
        SlottedPage { buf }
    }

    /// Re-initialises the page to empty.
    pub fn init(&mut self) {
        put_u16(self.buf, 0, 0);
        put_u16(self.buf, 2, PAGE_SIZE as u16);
        put_u16(self.buf, 4, 0);
        put_u16(self.buf, 6, 0);
    }

    /// Read-only view of the same page.
    pub fn view(&self) -> PageView<'_> {
        PageView { buf: self.buf }
    }

    /// Number of slot directory entries (live or deleted).
    pub fn slot_count(&self) -> usize {
        raw::nslots(self.buf)
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        raw::live_count(self.buf)
    }

    /// Bytes of the tuple in `slot`, if live.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        raw::tuple(self.buf, slot)
    }

    /// Free bytes available to an insert that reuses a deleted slot
    /// (compaction included).
    pub fn free_bytes(&self) -> usize {
        raw::contiguous_free(self.buf) + raw::frag_bytes(self.buf)
    }

    /// Whether an insert of `len` bytes would succeed.
    pub fn fits(&self, len: usize) -> bool {
        let needs_new_slot = self.first_dead_slot().is_none();
        let slot_cost = if needs_new_slot { SLOT_BYTES } else { 0 };
        self.free_bytes() >= len + slot_cost
    }

    fn first_dead_slot(&self) -> Option<usize> {
        (0..raw::nslots(self.buf)).find(|&i| raw::slot(self.buf, i).1 == 0)
    }

    fn set_slot(&mut self, idx: usize, off: usize, len: usize) {
        let at = HEADER + idx * SLOT_BYTES;
        put_u16(self.buf, at, off as u16);
        put_u16(self.buf, at + 2, len as u16);
    }

    fn set_header(&mut self, nslots: usize, data_start: usize, frag: usize, live: usize) {
        put_u16(self.buf, 0, nslots as u16);
        // data_start == PAGE_SIZE (8192) fits in u16.
        put_u16(self.buf, 2, data_start as u16);
        put_u16(self.buf, 4, frag as u16);
        put_u16(self.buf, 6, live as u16);
    }

    /// Repacks live tuples towards the page end, zeroing `frag_bytes`.
    /// Slot ids and tuple contents are unchanged.
    fn compact(&mut self) {
        let n = raw::nslots(self.buf);
        let mut live: Vec<(usize, Vec<u8>)> = Vec::with_capacity(raw::live_count(self.buf));
        for i in 0..n {
            let (off, len) = raw::slot(self.buf, i);
            if len > 0 {
                live.push((i, self.buf[off..off + len].to_vec()));
            }
        }
        let mut cursor = PAGE_SIZE;
        let live_n = live.len();
        for (idx, bytes) in live {
            cursor -= bytes.len();
            self.buf[cursor..cursor + bytes.len()].copy_from_slice(&bytes);
            self.set_slot(idx, cursor, bytes.len());
        }
        self.set_header(n, cursor, 0, live_n);
    }

    /// Inserts a tuple, returning its slot id, or `None` if it cannot fit.
    /// Deleted slot ids are reused before the directory grows.
    pub fn insert(&mut self, bytes: &[u8]) -> Option<SlotId> {
        if bytes.is_empty() || bytes.len() > MAX_TUPLE_BYTES || !self.fits(bytes.len()) {
            return None;
        }
        let reuse = self.first_dead_slot();
        let slot_cost = if reuse.is_none() { SLOT_BYTES } else { 0 };
        if raw::contiguous_free(self.buf) < bytes.len() + slot_cost {
            self.compact();
        }
        debug_assert!(raw::contiguous_free(self.buf) >= bytes.len() + slot_cost);

        let idx = reuse.unwrap_or_else(|| raw::nslots(self.buf));
        let new_nslots = raw::nslots(self.buf).max(idx + 1);
        let data_start = raw::data_start(self.buf) - bytes.len();
        self.buf[data_start..data_start + bytes.len()].copy_from_slice(bytes);
        let frag = raw::frag_bytes(self.buf);
        let live = raw::live_count(self.buf) + 1;
        self.set_header(new_nslots, data_start, frag, live);
        self.set_slot(idx, data_start, bytes.len());
        Some(SlotId(idx as u16))
    }

    /// Deletes the tuple in `slot`. Returns `false` if the slot is already
    /// empty or out of range.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        let idx = slot.0 as usize;
        if idx >= raw::nslots(self.buf) {
            return false;
        }
        let (_, len) = raw::slot(self.buf, idx);
        if len == 0 {
            return false;
        }
        self.set_slot(idx, 0, 0);
        let frag = raw::frag_bytes(self.buf) + len;
        let live = raw::live_count(self.buf) - 1;
        let n = raw::nslots(self.buf);
        let ds = raw::data_start(self.buf);
        self.set_header(n, ds, frag, live);
        true
    }

    /// Replaces the tuple in `slot` with `bytes`, keeping the slot id.
    /// Returns `false` if the slot is empty or the new bytes cannot fit.
    pub fn update(&mut self, slot: SlotId, bytes: &[u8]) -> bool {
        let idx = slot.0 as usize;
        if idx >= raw::nslots(self.buf) || bytes.is_empty() || bytes.len() > MAX_TUPLE_BYTES {
            return false;
        }
        let (off, len) = raw::slot(self.buf, idx);
        if len == 0 {
            return false;
        }
        if bytes.len() <= len {
            // Shrink or same size: rewrite in place at the tail of the old
            // region so offsets stay within the data area.
            let new_off = off + (len - bytes.len());
            self.buf[new_off..new_off + bytes.len()].copy_from_slice(bytes);
            self.set_slot(idx, new_off, bytes.len());
            let frag = raw::frag_bytes(self.buf) + (len - bytes.len());
            let n = raw::nslots(self.buf);
            let ds = raw::data_start(self.buf);
            let live = raw::live_count(self.buf);
            self.set_header(n, ds, frag, live);
            return true;
        }
        // Grow: the old region plus free space must cover the new bytes.
        if raw::contiguous_free(self.buf) + raw::frag_bytes(self.buf) + len < bytes.len() {
            return false;
        }
        // Free the old region, then place the new bytes (compacting if
        // needed). The capacity check above guarantees success. The tuple
        // stays logically live throughout, but compaction recounts live
        // slots while ours is transiently zeroed — so restore the live
        // count explicitly at the end.
        let live_before = raw::live_count(self.buf);
        self.set_slot(idx, 0, 0);
        let frag = raw::frag_bytes(self.buf) + len;
        let n = raw::nslots(self.buf);
        let ds = raw::data_start(self.buf);
        self.set_header(n, ds, frag, live_before);
        if raw::contiguous_free(self.buf) < bytes.len() {
            self.compact();
        }
        let data_start = raw::data_start(self.buf) - bytes.len();
        self.buf[data_start..data_start + bytes.len()].copy_from_slice(bytes);
        self.set_slot(idx, data_start, bytes.len());
        let n = raw::nslots(self.buf);
        let frag = raw::frag_bytes(self.buf);
        self.set_header(n, data_start, frag, live_before);
        true
    }

    /// WAL-replay primitive: places `bytes` at exactly slot `slot`, growing
    /// the slot directory with dead slots as needed and overwriting any
    /// previous occupant (replay is last-write-wins). Returns `false` when
    /// the bytes cannot fit even after compaction — which recovery treats as
    /// corruption, since every logged state fit when it was first written.
    ///
    /// Sound because slot ids are stable across compaction:
    /// replaying a log prefix always reproduces the slot assignments the
    /// original execution made.
    pub fn replay_insert(&mut self, slot: SlotId, bytes: &[u8]) -> bool {
        let idx = slot.0 as usize;
        if bytes.is_empty() || bytes.len() > MAX_TUPLE_BYTES {
            return false;
        }
        // Grow the directory through `idx`, initialising new slots dead.
        let n = raw::nslots(self.buf);
        if idx >= n {
            let grow = (idx + 1 - n) * SLOT_BYTES;
            if raw::contiguous_free(self.buf) < grow {
                self.compact();
            }
            if raw::contiguous_free(self.buf) < grow {
                return false;
            }
            let ds = raw::data_start(self.buf);
            let frag = raw::frag_bytes(self.buf);
            let live = raw::live_count(self.buf);
            self.set_header(idx + 1, ds, frag, live);
            for i in n..=idx {
                self.set_slot(i, 0, 0);
            }
        }
        // An occupied slot is an overwrite; update() keeps the slot id.
        if raw::slot(self.buf, idx).1 != 0 {
            return self.update(slot, bytes);
        }
        if self.free_bytes() < bytes.len() {
            return false;
        }
        if raw::contiguous_free(self.buf) < bytes.len() {
            self.compact();
        }
        let data_start = raw::data_start(self.buf) - bytes.len();
        self.buf[data_start..data_start + bytes.len()].copy_from_slice(bytes);
        let n = raw::nslots(self.buf);
        let frag = raw::frag_bytes(self.buf);
        let live = raw::live_count(self.buf) + 1;
        self.set_header(n, data_start, frag, live);
        self.set_slot(idx, data_start, bytes.len());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let a = page.insert(b"hello").unwrap();
        let b = page.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(page.get(a), Some(&b"hello"[..]));
        assert_eq!(page.get(b), Some(&b"world!"[..]));
        assert_eq!(page.live_count(), 2);
    }

    #[test]
    fn zeroed_page_is_valid_and_empty() {
        let buf = fresh();
        let view = PageView::new(&buf[..]);
        assert_eq!(view.live_count(), 0);
        assert_eq!(view.slot_count(), 0);
        assert_eq!(view.iter().count(), 0);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let a = page.insert(b"abc").unwrap();
        let _b = page.insert(b"def").unwrap();
        assert!(page.delete(a));
        assert!(!page.delete(a), "double delete rejected");
        assert_eq!(page.get(a), None);
        assert_eq!(page.live_count(), 1);
        let c = page.insert(b"xyz").unwrap();
        assert_eq!(c, a, "deleted slot id is reused");
        assert_eq!(page.slot_count(), 2, "directory did not grow");
    }

    #[test]
    fn fill_page_to_capacity() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let tuple = [7u8; 100];
        let mut n = 0;
        while page.insert(&tuple).is_some() {
            n += 1;
        }
        // 100 payload + 4 slot bytes each within PAGE_SIZE - HEADER.
        assert_eq!(n, (PAGE_SIZE - HEADER) / (100 + SLOT_BYTES));
        assert!(!page.fits(100));
        assert!(page.fits(page.free_bytes().saturating_sub(SLOT_BYTES)));
    }

    #[test]
    fn replay_insert_targets_exact_slot() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        assert!(page.replay_insert(SlotId(5), b"hello"));
        assert_eq!(page.slot_count(), 6);
        assert_eq!(page.live_count(), 1);
        assert_eq!(page.get(SlotId(5)), Some(&b"hello"[..]));
        for i in 0..5 {
            assert_eq!(page.get(SlotId(i)), None, "slots below stay dead");
        }
        // A normal insert reuses the dead slots replay left behind.
        assert_eq!(page.insert(b"x"), Some(SlotId(0)));
    }

    #[test]
    fn replay_insert_overwrites_occupied_slot() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let s = page.insert(b"old contents").unwrap();
        assert!(page.replay_insert(s, b"new and much longer contents"));
        assert_eq!(page.get(s), Some(&b"new and much longer contents"[..]));
        assert_eq!(page.live_count(), 1);
        // Shrinking overwrite too.
        assert!(page.replay_insert(s, b"n"));
        assert_eq!(page.get(s), Some(&b"n"[..]));
    }

    #[test]
    fn replay_insert_compacts_when_fragmented() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let tuple = [1u8; 512];
        let mut slots = Vec::new();
        while let Some(s) = page.insert(&tuple) {
            slots.push(s);
        }
        for s in slots.iter().step_by(2) {
            assert!(page.delete(*s));
        }
        let big = [2u8; 1000];
        assert!(page.replay_insert(slots[0], &big));
        assert_eq!(page.get(slots[0]), Some(&big[..]));
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(page.get(*s), Some(&tuple[..]), "survivors intact");
        }
    }

    #[test]
    fn replay_insert_rejects_impossible() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        assert!(!page.replay_insert(SlotId(0), b""));
        assert!(!page.replay_insert(SlotId(0), &vec![0u8; MAX_TUPLE_BYTES + 1]));
        // Fill the page, then ask for a slot beyond the directory.
        let tuple = [7u8; 100];
        while page.insert(&tuple).is_some() {}
        let n = page.slot_count() as u16;
        assert!(!page.replay_insert(SlotId(n), &tuple), "page is full");
    }

    #[test]
    fn compaction_reclaims_fragmentation() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let tuple = [1u8; 512];
        let mut slots = Vec::new();
        while let Some(s) = page.insert(&tuple) {
            slots.push(s);
        }
        // Delete every other tuple: frees space, but only fragmented.
        for s in slots.iter().step_by(2) {
            assert!(page.delete(*s));
        }
        // A larger tuple than any hole must still fit via compaction.
        let big = [2u8; 1000];
        let s = page.insert(&big).expect("compaction makes room");
        assert_eq!(page.get(s), Some(&big[..]));
        // Survivors are intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(page.get(*s), Some(&tuple[..]));
        }
    }

    #[test]
    fn update_in_place_shrink_and_grow() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let s = page.insert(&[9u8; 300]).unwrap();
        assert!(page.update(s, &[8u8; 100]), "shrink");
        assert_eq!(page.get(s), Some(&[8u8; 100][..]));
        assert!(page.update(s, &[7u8; 600]), "grow");
        assert_eq!(page.get(s), Some(&[7u8; 600][..]));
        assert_eq!(page.live_count(), 1);
    }

    #[test]
    fn update_grow_uses_compaction() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let victim = page.insert(&[1u8; 2000]).unwrap();
        let keep = page.insert(&[2u8; 2000]).unwrap();
        let target = page.insert(&[3u8; 2000]).unwrap();
        page.delete(victim);
        // Contiguous space (~2 KB minus headers) is too small; old region +
        // fragmentation suffices after compaction.
        assert!(page.update(target, &[4u8; 4000]));
        assert_eq!(page.get(target), Some(&[4u8; 4000][..]));
        assert_eq!(page.get(keep), Some(&[2u8; 2000][..]));
    }

    #[test]
    fn update_grow_with_compaction_keeps_live_count() {
        // Regression (found by proptest): a growing update that triggers
        // compaction transiently zeroes its own slot; compaction's recount
        // must not permanently lose the tuple from live_count.
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let a = page.insert(&[1u8; 3000]).unwrap();
        let b = page.insert(&[2u8; 3000]).unwrap();
        page.delete(a);
        let live_before = page.live_count();
        // Growing b requires compaction (contiguous space is fragmented).
        assert!(page.update(b, &[3u8; 5000]));
        assert_eq!(page.live_count(), live_before);
        assert_eq!(page.get(b), Some(&[3u8; 5000][..]));
    }

    #[test]
    fn update_too_large_fails_and_preserves_tuple() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let filler = page.insert(&[5u8; 4000]).unwrap();
        let s = page.insert(&[6u8; 3000]).unwrap();
        assert!(!page.update(s, &[7u8; 5000]));
        assert_eq!(
            page.get(s),
            Some(&[6u8; 3000][..]),
            "failed update is a no-op"
        );
        assert_eq!(page.get(filler), Some(&[5u8; 4000][..]));
    }

    #[test]
    fn oversized_and_empty_inserts_rejected() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        assert!(page.insert(&[]).is_none());
        assert!(page.insert(&vec![0u8; MAX_TUPLE_BYTES + 1]).is_none());
        assert!(page.insert(&vec![1u8; MAX_TUPLE_BYTES]).is_some());
    }

    #[test]
    fn iter_yields_live_in_slot_order() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        let a = page.insert(b"a").unwrap();
        let b = page.insert(b"bb").unwrap();
        let c = page.insert(b"ccc").unwrap();
        page.delete(b);
        let view = PageView::new(&buf[..]);
        let got: Vec<_> = view.iter().collect();
        assert_eq!(got, vec![(a, &b"a"[..]), (c, &b"ccc"[..])]);
    }

    #[test]
    fn out_of_range_slot_ops() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        assert_eq!(page.get(SlotId(0)), None);
        assert!(!page.delete(SlotId(5)));
        assert!(!page.update(SlotId(5), b"x"));
    }

    #[test]
    fn init_resets_page() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf[..]);
        page.insert(b"data").unwrap();
        page.init();
        assert_eq!(page.live_count(), 0);
        assert_eq!(page.slot_count(), 0);
        assert!(page.fits(MAX_TUPLE_BYTES));
    }
}
