//! Heap files: unordered collections of tuples stored in slotted pages, with
//! the **page-granular scan interface** the Index Buffer needs.
//!
//! Paper Algorithm 1 iterates `for p ∈ R with C[p] > 0` — i.e. the scan must
//! be able to *skip whole pages*. [`HeapFile::scan_pages`] exposes exactly
//! that: a skip predicate is consulted per page ordinal before the page is
//! fetched (and thus before any I/O for it happens).
//!
//! Pages are addressed two ways: globally by [`PageId`] (shared buffer pool /
//! disk) and table-locally by *ordinal* `0..num_pages()`. Counters `C[p]` and
//! buffer partitions are keyed by ordinal, matching the paper's
//! "partition covers P pages of the table".

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::RwLock;

use crate::buffer_pool::BufferPool;
use crate::error::StorageError;
use crate::freespace::FreeSpaceMap;
use crate::page::{PageView, SlottedPage, MAX_TUPLE_BYTES};
use crate::rid::{PageId, Rid, SlotId};

struct HeapInner {
    pages: Vec<PageId>,
    ordinal_of: HashMap<PageId, u32>,
    fsm: FreeSpaceMap,
    live_tuples: u64,
}

/// A heap file over a shared buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    inner: RwLock<HeapInner>,
}

impl HeapFile {
    /// Creates an empty heap file.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            inner: RwLock::new(HeapInner {
                pages: Vec::new(),
                ordinal_of: HashMap::new(),
                fsm: FreeSpaceMap::new(),
                live_tuples: 0,
            }),
        }
    }

    /// The buffer pool this heap reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of pages in the heap.
    pub fn num_pages(&self) -> u32 {
        self.inner.read().pages.len() as u32
    }

    /// Number of live tuples.
    pub fn live_tuples(&self) -> u64 {
        self.inner.read().live_tuples
    }

    /// Table-local ordinal of a global page id, if the page belongs to this
    /// heap.
    pub fn ordinal_of(&self, page: PageId) -> Option<u32> {
        self.inner.read().ordinal_of.get(&page).copied()
    }

    /// Global page id of a table-local ordinal.
    pub fn page_id_of(&self, ordinal: u32) -> Option<PageId> {
        self.inner.read().pages.get(ordinal as usize).copied()
    }

    /// Inserts a tuple, returning its record id.
    pub fn insert(&self, bytes: &[u8]) -> Result<Rid, StorageError> {
        if bytes.is_empty() || bytes.len() > MAX_TUPLE_BYTES {
            return Err(StorageError::TupleTooLarge {
                size: bytes.len(),
                max: MAX_TUPLE_BYTES,
            });
        }
        // Probe FSM candidates until one accepts (stale entries are refreshed
        // along the way); fall back to a fresh page.
        loop {
            let candidate = {
                let inner = self.inner.read();
                // +4: a new slot entry may be needed.
                inner
                    .fsm
                    .find(bytes.len() + 4)
                    .and_then(|ord| inner.pages.get(ord as usize).map(|&pid| (ord, pid)))
            };
            match candidate {
                Some((ord, pid)) => {
                    let mut guard = self.pool.fetch_write(pid)?;
                    let mut page = SlottedPage::new(&mut guard[..]);
                    if let Some(slot) = page.insert(bytes) {
                        let free = page.free_bytes();
                        drop(guard);
                        let mut inner = self.inner.write();
                        inner.fsm.set(ord, free.saturating_sub(4));
                        inner.live_tuples += 1;
                        return Ok(Rid { page: pid, slot });
                    }
                    // Stale FSM entry: record the truth and retry.
                    let free = page.free_bytes();
                    drop(guard);
                    self.inner.write().fsm.set(ord, free.saturating_sub(4));
                }
                None => {
                    let (pid, mut guard) = self.pool.new_page()?;
                    let mut page = SlottedPage::new(&mut guard[..]);
                    page.init();
                    let Some(slot) = page.insert(bytes) else {
                        // A fresh page fits any tuple within MAX_TUPLE_BYTES;
                        // failing here means the page header is corrupt.
                        return Err(StorageError::Corrupt(
                            "fresh page rejected a size-validated tuple".into(),
                        ));
                    };
                    let free = page.free_bytes();
                    drop(guard);
                    let mut inner = self.inner.write();
                    let ord = inner.fsm.push(free.saturating_sub(4));
                    debug_assert_eq!(ord as usize, inner.pages.len());
                    inner.pages.push(pid);
                    inner.ordinal_of.insert(pid, ord);
                    inner.live_tuples += 1;
                    return Ok(Rid { page: pid, slot });
                }
            }
        }
    }

    /// Reads the tuple at `rid`.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>, StorageError> {
        self.check_owned(rid.page)?;
        let guard = self.pool.fetch_read(rid.page)?;
        let view = PageView::new(&guard[..]);
        view.get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or(StorageError::UnknownRid(rid))
    }

    /// Deletes the tuple at `rid`.
    pub fn delete(&self, rid: Rid) -> Result<(), StorageError> {
        let ord = self.check_owned(rid.page)?;
        let mut guard = self.pool.fetch_write(rid.page)?;
        let mut page = SlottedPage::new(&mut guard[..]);
        if !page.delete(rid.slot) {
            return Err(StorageError::UnknownRid(rid));
        }
        let free = page.free_bytes();
        drop(guard);
        let mut inner = self.inner.write();
        inner.fsm.set(ord, free.saturating_sub(4));
        inner.live_tuples -= 1;
        Ok(())
    }

    /// Updates the tuple at `rid`, returning its (possibly new) record id.
    /// The tuple moves to another page only when it no longer fits in place —
    /// exactly the `p_old` / `p_new` distinction of the paper's Table I.
    pub fn update(&self, rid: Rid, bytes: &[u8]) -> Result<Rid, StorageError> {
        if bytes.is_empty() || bytes.len() > MAX_TUPLE_BYTES {
            return Err(StorageError::TupleTooLarge {
                size: bytes.len(),
                max: MAX_TUPLE_BYTES,
            });
        }
        let ord = self.check_owned(rid.page)?;
        let mut guard = self.pool.fetch_write(rid.page)?;
        let mut page = SlottedPage::new(&mut guard[..]);
        if page.get(rid.slot).is_none() {
            return Err(StorageError::UnknownRid(rid));
        }
        if page.update(rid.slot, bytes) {
            let free = page.free_bytes();
            drop(guard);
            self.inner.write().fsm.set(ord, free.saturating_sub(4));
            return Ok(rid);
        }
        // Does not fit in place: delete here, insert elsewhere.
        assert!(page.delete(rid.slot), "slot verified live above");
        let free = page.free_bytes();
        drop(guard);
        {
            let mut inner = self.inner.write();
            inner.fsm.set(ord, free.saturating_sub(4));
            inner.live_tuples -= 1; // insert() re-increments
        }
        self.insert(bytes)
    }

    /// Moves the tuple at `rid` to a *different* page (the page with the
    /// most recorded free space, excluding its own), returning the new rid.
    /// Used by vacuum to drain under-utilised pages; unlike
    /// [`HeapFile::update`], the move is unconditional.
    pub fn relocate(&self, rid: Rid) -> Result<Rid, StorageError> {
        let ord = self.check_owned(rid.page)?;
        let bytes = self.get(rid)?;
        // Find a target page other than the source with room.
        let target = {
            let inner = self.inner.read();
            (0..inner.pages.len() as u32)
                .filter(|&o| o != ord)
                .filter(|&o| inner.fsm.get(o) >= bytes.len() + 4)
                .max_by_key(|&o| inner.fsm.get(o))
                .and_then(|o| inner.pages.get(o as usize).map(|&pid| (o, pid)))
        };
        let new_rid = match target {
            Some((tord, tpid)) => {
                let mut guard = self.pool.fetch_write(tpid)?;
                let mut page = SlottedPage::new(&mut guard[..]);
                match page.insert(&bytes) {
                    Some(slot) => {
                        let free = page.free_bytes();
                        drop(guard);
                        self.inner.write().fsm.set(tord, free.saturating_sub(4));
                        Rid { page: tpid, slot }
                    }
                    None => {
                        // Stale FSM: fall back to a fresh insert after
                        // refreshing the entry.
                        let free = page.free_bytes();
                        drop(guard);
                        self.inner.write().fsm.set(tord, free.saturating_sub(4));
                        self.insert_into_fresh_page(&bytes)?
                    }
                }
            }
            None => self.insert_into_fresh_page(&bytes)?,
        };
        // Remove the original (after the copy is durable in the pool).
        let mut guard = self.pool.fetch_write(rid.page)?;
        let mut page = SlottedPage::new(&mut guard[..]);
        assert!(page.delete(rid.slot), "source tuple verified above");
        let free = page.free_bytes();
        drop(guard);
        self.inner.write().fsm.set(ord, free.saturating_sub(4));
        Ok(new_rid)
    }

    /// Appends a brand-new page holding `bytes` (relocation fallback).
    fn insert_into_fresh_page(&self, bytes: &[u8]) -> Result<Rid, StorageError> {
        let (pid, mut guard) = self.pool.new_page()?;
        let mut page = SlottedPage::new(&mut guard[..]);
        page.init();
        let slot = page.insert(bytes).ok_or(StorageError::TupleTooLarge {
            size: bytes.len(),
            max: crate::page::MAX_TUPLE_BYTES,
        })?;
        let free = page.free_bytes();
        drop(guard);
        let mut inner = self.inner.write();
        let ord = inner.fsm.push(free.saturating_sub(4));
        debug_assert_eq!(ord as usize, inner.pages.len());
        inner.pages.push(pid);
        inner.ordinal_of.insert(pid, ord);
        Ok(Rid { page: pid, slot })
    }

    /// Reads all live tuples of the page with table-local `ordinal`.
    /// Exactly one buffer-pool fetch.
    pub fn read_page(&self, ordinal: u32) -> Result<Vec<(Rid, Vec<u8>)>, StorageError> {
        let pid = self
            .page_id_of(ordinal)
            .ok_or(StorageError::UnknownPage(PageId(ordinal)))?;
        let guard = self.pool.fetch_read(pid)?;
        let view = PageView::new(&guard[..]);
        Ok(view
            .iter()
            .map(|(slot, bytes)| (Rid { page: pid, slot }, bytes.to_vec()))
            .collect())
    }

    /// Number of live tuples on the page with table-local `ordinal`.
    pub fn tuples_on_page(&self, ordinal: u32) -> Result<usize, StorageError> {
        let pid = self
            .page_id_of(ordinal)
            .ok_or(StorageError::UnknownPage(PageId(ordinal)))?;
        let guard = self.pool.fetch_read(pid)?;
        Ok(PageView::new(&guard[..]).live_count())
    }

    /// Scans the heap page by page.
    ///
    /// For each page ordinal, `skip` is consulted **before** the page is
    /// fetched; if it returns true the page costs no I/O — this is the
    /// page-skipping primitive of paper Algorithm 1 (line 11). For fetched
    /// pages, `visit` receives every live tuple. Returns
    /// `(pages_read, pages_skipped)`.
    pub fn scan_pages(
        &self,
        skip: impl FnMut(u32) -> bool,
        mut visit: impl FnMut(Rid, &[u8]),
    ) -> Result<(u32, u32), StorageError> {
        self.scan_page_views(skip, |_, pid, view| {
            for (slot, bytes) in view.iter() {
                visit(Rid { page: pid, slot }, bytes);
            }
        })
    }

    /// Page-granular variant of [`HeapFile::scan_pages`]: `visit` receives
    /// each unskipped page as `(ordinal, page_id, view)` so callers can do
    /// per-page work (the Index Buffer indexes *whole pages*, Algorithm 1
    /// lines 15–17). Returns `(pages_read, pages_skipped)`.
    pub fn scan_page_views(
        &self,
        skip: impl FnMut(u32) -> bool,
        visit: impl FnMut(u32, PageId, PageView<'_>),
    ) -> Result<(u32, u32), StorageError> {
        self.scan_page_range_views(0..self.num_pages(), skip, visit)
    }

    /// [`HeapFile::scan_page_views`] restricted to a contiguous ordinal
    /// range — the chunk primitive of the parallel indexing scan. Ordinals
    /// past the current end of the heap are ignored. Returns
    /// `(pages_read, pages_skipped)` for this range only.
    pub fn scan_page_range_views(
        &self,
        range: std::ops::Range<u32>,
        mut skip: impl FnMut(u32) -> bool,
        mut visit: impl FnMut(u32, PageId, PageView<'_>),
    ) -> Result<(u32, u32), StorageError> {
        // Snapshot the covered page-id slice in one heap-lock acquisition:
        // the page list is append-only and ordinals are stable, so the copy
        // stays valid for the whole scan and concurrent scanners never
        // contend on the heap lock per page.
        let (start, page_ids) = {
            let inner = self.inner.read();
            let end = range.end.min(inner.pages.len() as u32);
            let start = range.start.min(end);
            (
                start,
                inner
                    .pages
                    .get(start as usize..end as usize)
                    .map(<[_]>::to_vec)
                    .unwrap_or_default(),
            )
        };
        let mut read = 0;
        let mut skipped = 0;
        // Batch size: amortise pool bookkeeping without monopolising frames.
        // A batch pins at most `capacity / 8` pages, so several concurrent
        // scanners plus the miss path always have frames left to claim.
        let batch = (self.pool.capacity() / 8).clamp(1, 64);
        let mut wanted: Vec<(u32, PageId)> = Vec::with_capacity(batch);
        for (i, &pid) in page_ids.iter().enumerate() {
            let ord = start + i as u32;
            if skip(ord) {
                skipped += 1;
                continue;
            }
            wanted.push((ord, pid));
            if wanted.len() == batch {
                read += self.visit_batch(&wanted, &mut visit)?;
                wanted.clear();
            }
        }
        if !wanted.is_empty() {
            read += self.visit_batch(&wanted, &mut visit)?;
        }
        Ok((read, skipped))
    }

    /// Pages per sweep-read batch: a batch pins at most `capacity / 8`
    /// frames so several concurrent scanners plus the miss path always have
    /// frames left to claim. Scan planners use this to predict how many
    /// batched disk requests a sweep will issue.
    pub fn sweep_batch_pages(&self) -> usize {
        (self.pool.capacity() / 8).clamp(1, 64)
    }

    /// The sweep read: drives `visit` over a pre-planned sequence of page
    /// runs instead of asking `skip` per page. `runs` yields ascending,
    /// non-overlapping `(ordinal_range, skippable)` extents — exactly what
    /// a skip-bitset's run iterator produces. Skippable runs cost nothing;
    /// each unskipped run is pinned through [`BufferPool::pin_batch`] in
    /// batches of [`HeapFile::sweep_batch_pages`], so a run costs one
    /// pool-bookkeeping pass and one batched disk request per batch, not
    /// one of each per page. Ordinals past the current end of the heap are
    /// ignored. Returns `(pages_read, pages_skipped)`.
    pub fn sweep_read_runs(
        &self,
        runs: impl IntoIterator<Item = (std::ops::Range<u32>, bool)>,
        mut visit: impl FnMut(u32, PageId, PageView<'_>),
    ) -> Result<(u32, u32), StorageError> {
        let runs: Vec<(std::ops::Range<u32>, bool)> = runs.into_iter().collect();
        let lo = runs.iter().map(|(r, _)| r.start).min().unwrap_or(0);
        let hi = runs.iter().map(|(r, _)| r.end).max().unwrap_or(0);
        // Snapshot the covered page-id slice in one heap-lock acquisition:
        // the page list is append-only and ordinals are stable, so the copy
        // stays valid for the whole sweep.
        let (start, page_ids) = {
            let inner = self.inner.read();
            let end = hi.min(inner.pages.len() as u32);
            let start = lo.min(end);
            (
                start,
                inner
                    .pages
                    .get(start as usize..end as usize)
                    .map(<[_]>::to_vec)
                    .unwrap_or_default(),
            )
        };
        let limit = start + page_ids.len() as u32;
        let batch = self.sweep_batch_pages();
        let mut read = 0;
        let mut skipped = 0;
        let mut wanted: Vec<(u32, PageId)> = Vec::with_capacity(batch);
        for (run, skippable) in runs {
            let run_end = run.end.min(limit);
            let run_start = run.start.min(run_end).max(start);
            if skippable {
                skipped += run_end - run_start;
                continue;
            }
            for ord in run_start..run_end {
                if let Some(&pid) = page_ids.get((ord - start) as usize) {
                    wanted.push((ord, pid));
                }
                if wanted.len() == batch {
                    read += self.visit_sweep_batch(&wanted, &mut visit)?;
                    wanted.clear();
                }
            }
            // Flush at the run boundary: batches never span a skip gap, so
            // every disk request covers one contiguous extent of the heap.
            if !wanted.is_empty() {
                read += self.visit_sweep_batch(&wanted, &mut visit)?;
                wanted.clear();
            }
        }
        Ok((read, skipped))
    }

    /// Visits one sweep batch: every page — resident or not — is pinned by
    /// a single [`BufferPool::pin_batch`] call, then each frame is
    /// read-locked only while its page is being visited.
    fn visit_sweep_batch(
        &self,
        wanted: &[(u32, PageId)],
        visit: &mut impl FnMut(u32, PageId, PageView<'_>),
    ) -> Result<u32, StorageError> {
        let pids: Vec<PageId> = wanted.iter().map(|&(_, pid)| pid).collect();
        let pins = self.pool.pin_batch(&pids)?;
        for (&(ord, pid), pin) in wanted.iter().zip(pins) {
            let guard = pin.read();
            visit(ord, pid, PageView::new(&guard[..]));
        }
        Ok(wanted.len() as u32)
    }

    /// Visits one batch of pages: resident pages are pinned in a single
    /// bookkeeping pass, misses go through the ordinary fetch path. Each
    /// frame is read-locked only while its page is being visited.
    fn visit_batch(
        &self,
        wanted: &[(u32, PageId)],
        visit: &mut impl FnMut(u32, PageId, PageView<'_>),
    ) -> Result<u32, StorageError> {
        let pids: Vec<PageId> = wanted.iter().map(|&(_, pid)| pid).collect();
        let pinned = self.pool.pin_resident(&pids);
        let mut read = 0;
        for (&(ord, pid), pin) in wanted.iter().zip(pinned) {
            let guard = match pin {
                Some(pin) => pin.read(),
                None => self.pool.fetch_read(pid)?,
            };
            read += 1;
            visit(ord, pid, PageView::new(&guard[..]));
        }
        Ok(read)
    }

    fn check_owned(&self, page: PageId) -> Result<u32, StorageError> {
        self.ordinal_of(page).ok_or(StorageError::UnknownPage(page))
    }

    /// Adopts an existing backend page into this heap, returning its
    /// ordinal. If the page is already owned this is a no-op. Otherwise the
    /// backend is extended until `pid` exists, the page joins the ordinal
    /// map at the next free ordinal, and FSM / live-tuple bookkeeping is
    /// rebuilt from the page's **current contents** (a zeroed page reads as
    /// a valid empty page). Recovery uses this for checkpoint page lists
    /// and for pages first mentioned by a WAL record.
    pub fn adopt_page(&self, pid: PageId) -> Result<u32, StorageError> {
        if let Some(ord) = self.ordinal_of(pid) {
            return Ok(ord);
        }
        self.pool.ensure_page(pid)?;
        let (free, live) = {
            let guard = self.pool.fetch_read(pid)?;
            let view = PageView::new(&guard[..]);
            (view.free_bytes(), view.live_count())
        };
        let mut inner = self.inner.write();
        if let Some(&ord) = inner.ordinal_of.get(&pid) {
            return Ok(ord);
        }
        let ord = inner.fsm.push(free.saturating_sub(4));
        inner.pages.push(pid);
        inner.ordinal_of.insert(pid, ord);
        inner.live_tuples += live as u64;
        Ok(ord)
    }

    /// Adopts a checkpoint's page list in order, so ordinals match the list
    /// positions when the heap starts empty.
    pub fn adopt_pages(&self, pids: &[PageId]) -> Result<(), StorageError> {
        for &pid in pids {
            self.adopt_page(pid)?;
        }
        Ok(())
    }

    /// WAL-replay entry point: forces a set of slots on one page to their
    /// logged **final** state — `Some(bytes)` is the slot's last logged
    /// contents, `None` means dead. The page is adopted first if unknown.
    ///
    /// Slots whose target is dead or not larger than their current contents
    /// are applied before growing ones. Slots untouched by the log hold the
    /// same bytes in the checkpoint image and in the final state, so with
    /// shrinks applied first every intermediate mixture of
    /// {checkpoint, final} slot values fits whenever the final page state
    /// fits — replay converges regardless of how much of a later
    /// checkpoint reached the heap file before a crash.
    pub fn replay_page(
        &self,
        pid: PageId,
        ops: &[(SlotId, Option<&[u8]>)],
    ) -> Result<(), StorageError> {
        let ord = self.adopt_page(pid)?;
        let mut guard = self.pool.fetch_write(pid)?;
        let mut page = SlottedPage::new(&mut guard[..]);
        let mut live_delta: i64 = 0;
        let (shrinks, grows): (Vec<_>, Vec<_>) =
            ops.iter().partition(|&&(slot, bytes)| match bytes {
                None => true,
                Some(b) => page.get(slot).is_some_and(|cur| b.len() <= cur.len()),
            });
        for &(slot, bytes) in shrinks.iter().chain(grows.iter()) {
            match bytes {
                None => {
                    if page.delete(slot) {
                        live_delta -= 1;
                    }
                }
                Some(b) => {
                    let was_live = page.get(slot).is_some();
                    if !page.replay_insert(slot, b) {
                        return Err(StorageError::Corrupt(format!(
                            "wal replay cannot place a {}-byte tuple at page {} slot {}",
                            b.len(),
                            pid.0,
                            slot.0
                        )));
                    }
                    if !was_live {
                        live_delta += 1;
                    }
                }
            }
        }
        let free = page.free_bytes();
        drop(guard);
        let mut inner = self.inner.write();
        inner.fsm.set(ord, free.saturating_sub(4));
        inner.live_tuples = inner.live_tuples.saturating_add_signed(live_delta);
        Ok(())
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("HeapFile")
            .field("pages", &inner.pages.len())
            .field("live_tuples", &inner.live_tuples)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_pool::BufferPoolConfig;
    use crate::disk::{CostModel, DiskManager};

    fn heap(frames: usize) -> HeapFile {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(frames),
        );
        HeapFile::new(pool)
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap(4);
        let rid = h.insert(b"hello").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"hello");
        assert_eq!(h.live_tuples(), 1);
        assert_eq!(h.num_pages(), 1);
    }

    #[test]
    fn inserts_spill_to_new_pages() {
        let h = heap(4);
        let tuple = vec![7u8; 1000];
        for _ in 0..20 {
            h.insert(&tuple).unwrap();
        }
        assert!(h.num_pages() >= 3, "8 KiB pages hold at most 8 such tuples");
        assert_eq!(h.live_tuples(), 20);
    }

    #[test]
    fn delete_then_get_fails() {
        let h = heap(4);
        let rid = h.insert(b"x").unwrap();
        h.delete(rid).unwrap();
        assert_eq!(h.get(rid), Err(StorageError::UnknownRid(rid)));
        assert_eq!(h.delete(rid), Err(StorageError::UnknownRid(rid)));
        assert_eq!(h.live_tuples(), 0);
    }

    #[test]
    fn deleted_space_is_reused() {
        let h = heap(4);
        let big = vec![1u8; 2000];
        let mut rids = Vec::new();
        for _ in 0..12 {
            rids.push(h.insert(&big).unwrap());
        }
        let pages_before = h.num_pages();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        for _ in 0..12 {
            h.insert(&big).unwrap();
        }
        assert_eq!(h.num_pages(), pages_before, "space from deletes was reused");
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = heap(4);
        let rid = h.insert(&[1u8; 500]).unwrap();
        let rid2 = h.update(rid, &[2u8; 400]).unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(h.get(rid).unwrap(), vec![2u8; 400]);
    }

    #[test]
    fn update_that_moves_changes_rid() {
        let h = heap(8);
        // Fill one page almost completely.
        let rid = h.insert(&[1u8; 100]).unwrap();
        while h.num_pages() == 1 {
            h.insert(&[3u8; 1000]).unwrap();
        }
        // Target page is now too full for a 5000-byte version of the tuple.
        let rid2 = h.update(rid, &[2u8; 5000]).unwrap();
        assert_ne!(rid.page, rid2.page, "tuple moved to a different page");
        assert_eq!(h.get(rid2).unwrap(), vec![2u8; 5000]);
        assert_eq!(h.get(rid), Err(StorageError::UnknownRid(rid)));
    }

    #[test]
    fn scan_visits_all_live_tuples() {
        let h = heap(4);
        let mut expect = Vec::new();
        for i in 0..100u8 {
            let rid = h.insert(&[i; 200]).unwrap();
            expect.push((rid, i));
        }
        h.delete(expect[10].0).unwrap();
        h.delete(expect[50].0).unwrap();
        let mut seen = Vec::new();
        let (read, skipped) = h
            .scan_pages(|_| false, |rid, bytes| seen.push((rid, bytes[0])))
            .unwrap();
        assert_eq!(read, h.num_pages());
        assert_eq!(skipped, 0);
        assert_eq!(seen.len(), 98);
        assert!(!seen.iter().any(|&(rid, _)| rid == expect[10].0));
    }

    #[test]
    fn scan_skip_predicate_avoids_io() {
        let h = heap(2); // tiny pool: every fetched page is a miss
        for i in 0..100u8 {
            h.insert(&[i; 500]).unwrap();
        }
        let n = h.num_pages();
        assert!(n > 4);
        h.pool().flush_all().unwrap();

        // Skip every page: zero reads.
        let before = h.pool().stats().snapshot();
        let (read, skipped) = h.scan_pages(|_| true, |_, _| {}).unwrap();
        assert_eq!((read, skipped), (0, n));
        let delta = h.pool().stats().snapshot().since(&before);
        assert_eq!(delta.page_reads, 0, "skipped pages cost no disk I/O");

        // Skip the first half.
        let (read, skipped) = h.scan_pages(|ord| ord < n / 2, |_, _| {}).unwrap();
        assert_eq!(read, n - n / 2);
        assert_eq!(skipped, n / 2);
    }

    #[test]
    fn range_scans_tile_into_the_full_scan() {
        let h = heap(8);
        for i in 0..120u8 {
            h.insert(&[i; 300]).unwrap();
        }
        let n = h.num_pages();
        assert!(n >= 4);
        let mut full = Vec::new();
        h.scan_page_views(
            |_| false,
            |ord, _, view| full.push((ord, view.live_count())),
        )
        .unwrap();
        // Any tiling of 0..n by ranges reproduces the full scan in order.
        let mid = n / 2;
        let mut tiled = Vec::new();
        for range in [0..mid, mid..n] {
            let (read, skipped) = h
                .scan_page_range_views(
                    range.clone(),
                    |_| false,
                    |ord, _, view| tiled.push((ord, view.live_count())),
                )
                .unwrap();
            assert_eq!(read, range.end - range.start);
            assert_eq!(skipped, 0);
        }
        assert_eq!(tiled, full);
        // Out-of-bounds ordinals are ignored, and skips count per range.
        let (read, skipped) = h
            .scan_page_range_views(n..n + 10, |_| false, |_, _, _| panic!("no pages here"))
            .unwrap();
        assert_eq!((read, skipped), (0, 0));
        let (read, skipped) = h
            .scan_page_range_views(0..n, |ord| ord % 2 == 0, |_, _, _| {})
            .unwrap();
        assert_eq!(read + skipped, n);
        assert_eq!(skipped, n.div_ceil(2));
    }

    #[test]
    fn sweep_read_runs_matches_per_page_scan() {
        // 16 frames -> sweep batches of 2 pages; ~39 pages of tuples, so
        // the sweep mixes resident hits with batched misses.
        let h = heap(16);
        for i in 0..1000u16 {
            h.insert(&[(i % 251) as u8; 300]).unwrap();
        }
        let n = h.num_pages();
        assert!(n >= 12);
        h.pool().flush_all().unwrap();

        // Alternating skip pattern as a per-page predicate...
        let skip = |ord: u32| (ord / 3).is_multiple_of(2);
        let mut per_page = Vec::new();
        let (read_a, skipped_a) = h
            .scan_page_views(skip, |ord, _, view| per_page.push((ord, view.live_count())))
            .unwrap();
        // ...and the same pattern expressed as runs for the sweep read.
        let mut runs = Vec::new();
        let mut at = 0;
        while at < n {
            let end = (at + 3).min(n);
            runs.push((at..end, skip(at)));
            at = end;
        }
        let before = h.pool().stats().snapshot();
        let mut swept = Vec::new();
        let (read_b, skipped_b) = h
            .sweep_read_runs(runs, |ord, _, view| swept.push((ord, view.live_count())))
            .unwrap();
        assert_eq!((read_a, skipped_a), (read_b, skipped_b));
        assert_eq!(per_page, swept);
        let d = h.pool().stats().snapshot().since(&before);
        assert_eq!(d.page_reads + d.buffer_hits, u64::from(read_b));

        // Runs past the end of the heap are ignored entirely.
        let (read, skipped) = h
            .sweep_read_runs(vec![(n..n + 4, false), (n + 4..n + 8, true)], |_, _, _| {
                panic!("no pages here")
            })
            .unwrap();
        assert_eq!((read, skipped), (0, 0));
    }

    #[test]
    fn read_page_returns_page_locals() {
        let h = heap(4);
        let mut by_page: HashMap<PageId, usize> = HashMap::new();
        for i in 0..50u8 {
            let rid = h.insert(&[i; 300]).unwrap();
            *by_page.entry(rid.page).or_default() += 1;
        }
        for ord in 0..h.num_pages() {
            let pid = h.page_id_of(ord).unwrap();
            let tuples = h.read_page(ord).unwrap();
            assert_eq!(tuples.len(), by_page[&pid]);
            assert!(tuples.iter().all(|(rid, _)| rid.page == pid));
            assert_eq!(h.tuples_on_page(ord).unwrap(), tuples.len());
        }
    }

    #[test]
    fn ordinal_mapping_is_bijective() {
        let h = heap(4);
        for _ in 0..30 {
            h.insert(&[0u8; 1500]).unwrap();
        }
        for ord in 0..h.num_pages() {
            let pid = h.page_id_of(ord).unwrap();
            assert_eq!(h.ordinal_of(pid), Some(ord));
        }
        assert_eq!(h.page_id_of(h.num_pages()), None);
        assert_eq!(h.ordinal_of(PageId(9999)), None);
    }

    #[test]
    fn relocate_moves_to_another_page() {
        let h = heap(8);
        // Two pages: one nearly full, one nearly empty.
        let mut first_page_rids = Vec::new();
        while h.num_pages() <= 1 {
            first_page_rids.push(h.insert(&[1u8; 700]).unwrap());
        }
        let victim = *first_page_rids.first().unwrap();
        // Free space on page 0 by deleting some tuples.
        for rid in first_page_rids.iter().skip(6) {
            if h.ordinal_of(rid.page) == Some(0) {
                h.delete(*rid).unwrap();
            }
        }
        let lone = h.insert(&[2u8; 700]).unwrap(); // lands somewhere with space
        let before = h.live_tuples();
        let new_rid = h.relocate(victim).unwrap();
        assert_ne!(new_rid.page, victim.page, "relocation must change pages");
        assert_eq!(h.get(new_rid).unwrap(), vec![1u8; 700]);
        assert_eq!(h.get(victim), Err(StorageError::UnknownRid(victim)));
        assert_eq!(h.live_tuples(), before, "relocation preserves tuple count");
        let _ = lone;
    }

    #[test]
    fn relocate_falls_back_to_fresh_page() {
        let h = heap(8);
        // A single almost-full page: no other page can take the tuple.
        let rid = h.insert(&[3u8; 4000]).unwrap();
        h.insert(&[4u8; 4000]).unwrap();
        let pages_before = h.num_pages();
        let new_rid = h.relocate(rid).unwrap();
        assert_ne!(new_rid.page, rid.page);
        assert_eq!(h.num_pages(), pages_before + 1, "fresh page allocated");
        assert_eq!(h.get(new_rid).unwrap(), vec![3u8; 4000]);
    }

    #[test]
    fn foreign_rids_rejected() {
        let h = heap(4);
        let other = heap(4);
        let foreign = other.insert(b"alien").unwrap();
        assert!(matches!(h.get(foreign), Err(StorageError::UnknownPage(_))));
        assert!(matches!(
            h.delete(foreign),
            Err(StorageError::UnknownPage(_))
        ));
        assert!(matches!(
            h.update(foreign, b"z"),
            Err(StorageError::UnknownPage(_))
        ));
    }

    #[test]
    fn oversized_tuple_rejected() {
        let h = heap(4);
        assert!(matches!(
            h.insert(&vec![0u8; MAX_TUPLE_BYTES + 1]),
            Err(StorageError::TupleTooLarge { .. })
        ));
        assert!(matches!(
            h.insert(&[]),
            Err(StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn adopt_pages_rebuilds_bookkeeping() {
        // Populate a heap, then adopt its pages into a *fresh* heap sharing
        // the same pool — the recovery situation after a checkpoint restore.
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(8),
        );
        let h = HeapFile::new(Arc::clone(&pool));
        let mut rids = Vec::new();
        for i in 0..20u8 {
            rids.push(h.insert(&vec![i; 1000]).unwrap());
        }
        h.delete(rids[3]).unwrap();
        let pids: Vec<PageId> = (0..h.num_pages())
            .map(|o| h.page_id_of(o).unwrap())
            .collect();
        let live = h.live_tuples();
        pool.flush_all().unwrap();

        let fresh = HeapFile::new(pool);
        fresh.adopt_pages(&pids).unwrap();
        assert_eq!(fresh.num_pages(), pids.len() as u32);
        assert_eq!(fresh.live_tuples(), live);
        for (o, &pid) in pids.iter().enumerate() {
            assert_eq!(
                fresh.page_id_of(o as u32),
                Some(pid),
                "ordinals match list order"
            );
        }
        // Adoption is idempotent.
        fresh.adopt_pages(&pids).unwrap();
        assert_eq!(fresh.live_tuples(), live);
        // The FSM was rebuilt: inserts land on adopted pages, not fresh ones.
        fresh.insert(b"small").unwrap();
        assert_eq!(fresh.num_pages(), pids.len() as u32);
    }

    #[test]
    fn replay_page_forces_final_slot_states() {
        let h = heap(8);
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(a.page, b.page);
        let pid = a.page;
        // Final state: slot A dead, slot B rewritten, slot 7 born.
        h.replay_page(
            pid,
            &[
                (a.slot, None),
                (b.slot, Some(b"beta-two")),
                (SlotId(7), Some(b"late")),
            ],
        )
        .unwrap();
        assert_eq!(h.get(a), Err(StorageError::UnknownRid(a)));
        assert_eq!(h.get(b).unwrap(), b"beta-two");
        assert_eq!(
            h.get(Rid {
                page: pid,
                slot: SlotId(7)
            })
            .unwrap(),
            b"late"
        );
        assert_eq!(h.live_tuples(), 2);
        // Replaying the same final state again is a no-op (idempotent).
        h.replay_page(
            pid,
            &[
                (a.slot, None),
                (b.slot, Some(b"beta-two")),
                (SlotId(7), Some(b"late")),
            ],
        )
        .unwrap();
        assert_eq!(h.live_tuples(), 2);
    }

    #[test]
    fn replay_page_adopts_unknown_pages() {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(8),
        );
        let h = HeapFile::new(pool);
        // Page id 2 does not exist anywhere yet: adoption must allocate
        // backend pages 0..=2 and register only page 2 with the heap.
        let pid = PageId(2);
        h.replay_page(pid, &[(SlotId(0), Some(b"recovered"))])
            .unwrap();
        assert_eq!(h.num_pages(), 1);
        assert_eq!(h.live_tuples(), 1);
        assert_eq!(
            h.get(Rid {
                page: pid,
                slot: SlotId(0)
            })
            .unwrap(),
            b"recovered"
        );
    }

    #[test]
    fn replay_page_applies_shrinks_before_grows() {
        // Fill a page so tight that naive in-order application would
        // overflow: growing slot 1 before shrinking slot 0 cannot fit.
        let h = heap(4);
        let a = h.insert(&[1u8; 4000]).unwrap();
        let b = h.insert(&[2u8; 3000]).unwrap();
        assert_eq!(a.page, b.page);
        // Final state swaps the sizes: a shrinks to 3000, b grows to 4000.
        h.replay_page(
            a.page,
            &[(b.slot, Some(&[4u8; 4000])), (a.slot, Some(&[3u8; 3000]))],
        )
        .unwrap();
        assert_eq!(h.get(a).unwrap(), vec![3u8; 3000]);
        assert_eq!(h.get(b).unwrap(), vec![4u8; 4000]);
        assert_eq!(h.live_tuples(), 2);
    }
}
