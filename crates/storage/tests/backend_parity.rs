//! Accounting parity between the two [`DiskBackend`] implementations.
//!
//! The paper's economics are expressed in page I/O counts and simulated
//! time, so swapping the simulated [`DiskManager`] for the durable
//! [`FileBackend`] must not change a single counter: the same operation
//! sequence run against both backends has to produce identical
//! [`IoSnapshot`]s, and checkpoint flush I/O (`sync`) must be charged in
//! neither.

use aib_storage::{CostModel, DiskBackend, DiskManager, FileBackend, IoSnapshot, PAGE_SIZE};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("aib-parity-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One mixed workload, phrased purely through the trait: allocations,
/// single reads/writes, a batched sweep read, a sync, and post-sync
/// traffic. Returns the accounting snapshot at the end.
fn drive(disk: &mut dyn DiskBackend) -> IoSnapshot {
    let mut pages = Vec::new();
    for _ in 0..8 {
        pages.push(disk.allocate().unwrap());
    }
    let mut buf = [0u8; PAGE_SIZE];
    for (i, &p) in pages.iter().enumerate() {
        buf[0] = i as u8;
        buf[PAGE_SIZE - 1] = 0xA0 | i as u8;
        disk.write(p, &buf).unwrap();
    }
    // Page-at-a-time reads, including a repeat.
    for &p in pages.iter().take(3) {
        disk.read(p, &mut buf).unwrap();
    }
    disk.read(pages[0], &mut buf).unwrap();
    // A sweep run: one batched request over five consecutive pages.
    let mut bufs = [[0u8; PAGE_SIZE]; 5];
    {
        let mut reqs: Vec<_> = bufs
            .iter_mut()
            .zip(pages.iter().skip(2))
            .map(|(b, &p)| (p, b))
            .collect();
        disk.read_batch(&mut reqs).unwrap();
    }
    for (i, b) in bufs.iter().enumerate() {
        assert_eq!(b[0] as usize, i + 2, "batch read returned wrong page");
    }
    // Checkpoint-style flush: any file I/O here is *not* charged.
    disk.sync().unwrap();
    // Post-sync traffic still is.
    buf[0] = 0xEE;
    disk.write(pages[5], &buf).unwrap();
    disk.read(pages[5], &mut buf).unwrap();
    assert_eq!(buf[0], 0xEE);
    assert_eq!(disk.num_pages(), 8);
    disk.stats().snapshot()
}

#[test]
fn identical_op_sequence_charges_identical_stats() {
    let cost = CostModel {
        read_us: 100,
        write_us: 120,
    };
    let mut simulated = DiskManager::new(cost);
    let sim = drive(&mut simulated);

    let dir = TempDir::new("stats");
    let mut file = FileBackend::open(&dir.0.join("heap.db"), cost).unwrap();
    let durable = drive(&mut file);

    assert_eq!(
        sim, durable,
        "file backend must charge exactly what the simulation charges"
    );
    // Sanity-pin the shared expectation rather than only comparing the two:
    // 8 writes + 1 post-sync write, 4 reads + 5 batched + 1 post-sync read.
    assert_eq!(sim.page_writes, 9);
    assert_eq!(sim.page_reads, 10);
    assert_eq!(sim.simulated_us, 10 * 100 + 9 * 120);
}

#[test]
fn zero_cost_model_still_counts_operations() {
    let mut simulated = DiskManager::new(CostModel::free());
    let sim = drive(&mut simulated);

    let dir = TempDir::new("free");
    let mut file = FileBackend::open(&dir.0.join("heap.db"), CostModel::free()).unwrap();
    let durable = drive(&mut file);

    assert_eq!(sim, durable);
    assert_eq!(sim.simulated_us, 0);
    assert_eq!(sim.total_io(), 19);
}

#[test]
fn reopen_preserves_pages_and_starts_fresh_stats() {
    let dir = TempDir::new("reopen");
    let path = dir.0.join("heap.db");
    let cost = CostModel::default();
    {
        let mut file = FileBackend::open(&path, cost).unwrap();
        drive(&mut file);
        file.sync().unwrap();
    }
    let mut file = FileBackend::open(&path, cost).unwrap();
    assert_eq!(file.num_pages(), 8, "synced pages survive reopen");
    assert_eq!(
        file.stats().snapshot(),
        IoSnapshot::default(),
        "recovery reads are not charged as workload I/O"
    );
    let mut buf = [0u8; PAGE_SIZE];
    file.read(aib_storage::PageId(5), &mut buf).unwrap();
    assert_eq!(buf[0], 0xEE, "post-sync write was made durable by sync()");
    assert_eq!(file.stats().snapshot().page_reads, 1);
}
