//! Engine-side payloads of the write-ahead log: the codec for
//! [`WalRecord::Snapshot`](aib_storage::WalRecord::Snapshot) and
//! [`WalRecord::Ddl`](aib_storage::WalRecord::Ddl) bodies, which the storage
//! crate treats as opaque bytes.
//!
//! The paper's recovery contract keeps these payloads small: a snapshot is
//! **catalog metadata only** — table names, schemas, heap page lists, and
//! the DDL-time definition of every partial index. It never contains tuple
//! data (the heap file plus the DML records carry that), never contains
//! partial-index *entries* or tuner state (rebuilt/reverted by rescan), and
//! never contains Index Buffer contents or `C[p]` counters (rebuilt for
//! free from the same rescan — the whole point of §V's "no recovery cost"
//! argument).
//!
//! Wire format: little-endian integers, strings and byte blobs are
//! `u32` length + bytes, [`Value`]s reuse the tuple codec
//! ([`Value::encode`]/[`Value::decode`]). Decoding is strict — trailing
//! bytes or truncation surface as [`StorageError::Corrupt`], because a
//! snapshot that passed the WAL's CRC yet fails to decode means a version
//! mismatch or a bug, not a torn write.

use std::collections::BTreeSet;

use aib_core::BufferConfig;
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, ColumnType, PageId, Schema, StorageError, Value};

/// Snapshot payload format version.
const SNAPSHOT_VERSION: u32 = 1;

/// The DDL-time definition of one partial index, as logged. Recovery
/// rebuilds the index from this and a heap rescan; runtime tuner
/// adaptations are deliberately absent.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct IndexDef {
    /// Column position in the table schema.
    pub column: u32,
    /// DDL-time coverage (set by create/redefine, never by the tuner).
    pub coverage: Coverage,
    /// Backing structure for an in-memory partial index.
    pub backend: IndexBackend,
    /// Index Buffer configuration, when the column has one.
    pub buffer: Option<BufferConfig>,
    /// Whether the index is disk-resident ([`aib_index::PagedIndex`]).
    pub paged: bool,
}

/// Catalog image of one table inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TableImage {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// Heap page ids in ordinal order at checkpoint time.
    pub pages: Vec<PageId>,
    /// Partial-index definitions.
    pub indexes: Vec<IndexDef>,
}

/// The decoded body of a [`WalRecord::Snapshot`](aib_storage::WalRecord).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SnapshotImage {
    /// Tables in catalog-ordinal order.
    pub tables: Vec<TableImage>,
}

/// The decoded body of a [`WalRecord::Ddl`](aib_storage::WalRecord): one
/// catalog mutation, replayed in log order during recovery.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DdlOp {
    /// `create_table`.
    CreateTable {
        /// Table name.
        name: String,
        /// Table schema.
        schema: Schema,
    },
    /// `create_partial_index` / `create_paged_partial_index`.
    CreateIndex {
        /// Catalog ordinal of the table.
        table: u32,
        /// The logged definition.
        def: IndexDef,
    },
    /// `drop_partial_index`.
    DropIndex {
        /// Catalog ordinal of the table.
        table: u32,
        /// Column position of the dropped index.
        column: u32,
    },
    /// `redefine_coverage`.
    RedefineCoverage {
        /// Catalog ordinal of the table.
        table: u32,
        /// Column position of the redefined index.
        column: u32,
        /// The new DDL-time coverage.
        coverage: Coverage,
    },
}

mod ddl_tag {
    pub const CREATE_TABLE: u8 = 1;
    pub const CREATE_INDEX: u8 = 2;
    pub const DROP_INDEX: u8 = 3;
    pub const REDEFINE: u8 = 4;
}

// ------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.columns().len() as u32);
    for col in schema.columns() {
        put_str(out, &col.name);
        out.push(match col.ty {
            ColumnType::Int => 0,
            ColumnType::Str => 1,
        });
        out.push(u8::from(col.nullable));
    }
}

fn put_coverage(out: &mut Vec<u8>, coverage: &Coverage) {
    match coverage {
        Coverage::None => out.push(0),
        Coverage::All => out.push(1),
        Coverage::IntRange { lo, hi } => {
            out.push(2);
            put_i64(out, *lo);
            put_i64(out, *hi);
        }
        Coverage::Set(values) => {
            out.push(3);
            put_u32(out, values.len() as u32);
            for v in values {
                v.encode(out);
            }
        }
    }
}

fn put_backend(out: &mut Vec<u8>, backend: IndexBackend) {
    out.push(match backend {
        IndexBackend::BTree => 0,
        IndexBackend::Hash => 1,
    });
}

fn put_index_def(out: &mut Vec<u8>, def: &IndexDef) {
    put_u32(out, def.column);
    put_coverage(out, &def.coverage);
    put_backend(out, def.backend);
    match &def.buffer {
        None => out.push(0),
        Some(cfg) => {
            out.push(1);
            put_u32(out, cfg.partition_pages);
            put_u64(out, cfg.history_k as u64);
            put_backend(out, cfg.backend);
        }
    }
    out.push(u8::from(def.paged));
}

impl SnapshotImage {
    /// Serializes the snapshot body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, self.tables.len() as u32);
        for t in &self.tables {
            put_str(&mut out, &t.name);
            put_schema(&mut out, &t.schema);
            put_u32(&mut out, t.pages.len() as u32);
            for &pid in &t.pages {
                put_u32(&mut out, pid.0);
            }
            put_u32(&mut out, t.indexes.len() as u32);
            for def in &t.indexes {
                put_index_def(&mut out, def);
            }
        }
        out
    }

    /// Deserializes a snapshot body produced by [`SnapshotImage::encode`].
    pub fn decode(payload: &[u8]) -> Result<SnapshotImage, StorageError> {
        let mut r = Reader::new(payload);
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "snapshot version {version}, expected {SNAPSHOT_VERSION}"
            )));
        }
        let ntables = r.u32()? as usize;
        let mut tables = Vec::with_capacity(ntables.min(1024));
        for _ in 0..ntables {
            let name = r.str()?;
            let schema = r.schema()?;
            let npages = r.u32()? as usize;
            let mut pages = Vec::with_capacity(npages.min(1 << 16));
            for _ in 0..npages {
                pages.push(PageId(r.u32()?));
            }
            let nindexes = r.u32()? as usize;
            let mut indexes = Vec::with_capacity(nindexes.min(64));
            for _ in 0..nindexes {
                indexes.push(r.index_def()?);
            }
            tables.push(TableImage {
                name,
                schema,
                pages,
                indexes,
            });
        }
        r.finish()?;
        Ok(SnapshotImage { tables })
    }
}

impl DdlOp {
    /// Serializes the DDL body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            DdlOp::CreateTable { name, schema } => {
                out.push(ddl_tag::CREATE_TABLE);
                put_str(&mut out, name);
                put_schema(&mut out, schema);
            }
            DdlOp::CreateIndex { table, def } => {
                out.push(ddl_tag::CREATE_INDEX);
                put_u32(&mut out, *table);
                put_index_def(&mut out, def);
            }
            DdlOp::DropIndex { table, column } => {
                out.push(ddl_tag::DROP_INDEX);
                put_u32(&mut out, *table);
                put_u32(&mut out, *column);
            }
            DdlOp::RedefineCoverage {
                table,
                column,
                coverage,
            } => {
                out.push(ddl_tag::REDEFINE);
                put_u32(&mut out, *table);
                put_u32(&mut out, *column);
                put_coverage(&mut out, coverage);
            }
        }
        out
    }

    /// Deserializes a DDL body produced by [`DdlOp::encode`].
    pub fn decode(payload: &[u8]) -> Result<DdlOp, StorageError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let op = match tag {
            ddl_tag::CREATE_TABLE => DdlOp::CreateTable {
                name: r.str()?,
                schema: r.schema()?,
            },
            ddl_tag::CREATE_INDEX => DdlOp::CreateIndex {
                table: r.u32()?,
                def: r.index_def()?,
            },
            ddl_tag::DROP_INDEX => DdlOp::DropIndex {
                table: r.u32()?,
                column: r.u32()?,
            },
            ddl_tag::REDEFINE => DdlOp::RedefineCoverage {
                table: r.u32()?,
                column: r.u32()?,
                coverage: r.coverage()?,
            },
            other => {
                return Err(StorageError::Corrupt(format!("unknown ddl tag {other}")));
            }
        };
        r.finish()?;
        Ok(op)
    }
}

// ------------------------------------------------------------- decoding

/// Strict cursor over a payload; every read error is a
/// [`StorageError::Corrupt`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| StorageError::Corrupt("truncated wal payload".into()))?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| StorageError::Corrupt("wal payload u32".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| StorageError::Corrupt("wal payload u64".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(self.u64()? as i64)
    }

    fn str(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| StorageError::Corrupt("wal payload string".into()))
    }

    fn schema(&mut self) -> Result<Schema, StorageError> {
        let ncols = self.u32()? as usize;
        let mut cols = Vec::with_capacity(ncols.min(256));
        for _ in 0..ncols {
            let name = self.str()?;
            let ty = match self.u8()? {
                0 => ColumnType::Int,
                1 => ColumnType::Str,
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "unknown column type tag {other}"
                    )));
                }
            };
            let nullable = self.u8()? != 0;
            let mut col = match ty {
                ColumnType::Int => Column::int(name),
                ColumnType::Str => Column::str(name),
            };
            if nullable {
                col = col.nullable();
            }
            cols.push(col);
        }
        Ok(Schema::new(cols))
    }

    fn coverage(&mut self) -> Result<Coverage, StorageError> {
        match self.u8()? {
            0 => Ok(Coverage::None),
            1 => Ok(Coverage::All),
            2 => Ok(Coverage::IntRange {
                lo: self.i64()?,
                hi: self.i64()?,
            }),
            3 => {
                let n = self.u32()? as usize;
                let mut values = BTreeSet::new();
                for _ in 0..n {
                    let v = Value::decode(self.buf, &mut self.pos)?;
                    values.insert(v);
                }
                Ok(Coverage::Set(values))
            }
            other => Err(StorageError::Corrupt(format!(
                "unknown coverage tag {other}"
            ))),
        }
    }

    fn backend(&mut self) -> Result<IndexBackend, StorageError> {
        match self.u8()? {
            0 => Ok(IndexBackend::BTree),
            1 => Ok(IndexBackend::Hash),
            other => Err(StorageError::Corrupt(format!(
                "unknown index backend tag {other}"
            ))),
        }
    }

    fn index_def(&mut self) -> Result<IndexDef, StorageError> {
        let column = self.u32()?;
        let coverage = self.coverage()?;
        let backend = self.backend()?;
        let buffer = match self.u8()? {
            0 => None,
            1 => {
                let partition_pages = self.u32()?;
                let history_k = self.u64()? as usize;
                let backend = self.backend()?;
                Some(BufferConfig {
                    partition_pages,
                    history_k,
                    backend,
                })
            }
            other => {
                return Err(StorageError::Corrupt(format!(
                    "unknown buffer-config tag {other}"
                )));
            }
        };
        let paged = self.u8()? != 0;
        Ok(IndexDef {
            column,
            coverage,
            backend,
            buffer,
            paged,
        })
    }

    fn finish(self) -> Result<(), StorageError> {
        if self.pos != self.buf.len() {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes in wal payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SnapshotImage {
        SnapshotImage {
            tables: vec![
                TableImage {
                    name: "orders".into(),
                    schema: Schema::new(vec![Column::int("k"), Column::str("pad").nullable()]),
                    pages: vec![PageId(0), PageId(2), PageId(5)],
                    indexes: vec![
                        IndexDef {
                            column: 0,
                            coverage: Coverage::IntRange { lo: -5, hi: 99 },
                            backend: IndexBackend::BTree,
                            buffer: Some(BufferConfig {
                                partition_pages: 128,
                                history_k: 4,
                                backend: IndexBackend::Hash,
                            }),
                            paged: false,
                        },
                        IndexDef {
                            column: 1,
                            coverage: Coverage::Set(
                                [Value::from("a"), Value::Int(3), Value::Null]
                                    .into_iter()
                                    .collect(),
                            ),
                            backend: IndexBackend::Hash,
                            buffer: None,
                            paged: true,
                        },
                    ],
                },
                TableImage {
                    name: "empty".into(),
                    schema: Schema::new(vec![Column::int("x")]),
                    pages: vec![],
                    indexes: vec![],
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = sample_snapshot();
        assert_eq!(SnapshotImage::decode(&snap.encode()).unwrap(), snap);
        let empty = SnapshotImage::default();
        assert_eq!(SnapshotImage::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn ddl_roundtrip() {
        let ops = vec![
            DdlOp::CreateTable {
                name: "t".into(),
                schema: Schema::new(vec![Column::int("k")]),
            },
            DdlOp::CreateIndex {
                table: 7,
                def: IndexDef {
                    column: 0,
                    coverage: Coverage::All,
                    backend: IndexBackend::BTree,
                    buffer: Some(BufferConfig::default()),
                    paged: false,
                },
            },
            DdlOp::DropIndex {
                table: 0,
                column: 1,
            },
            DdlOp::RedefineCoverage {
                table: 1,
                column: 0,
                coverage: Coverage::None,
            },
        ];
        for op in ops {
            assert_eq!(DdlOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(SnapshotImage::decode(&[]).is_err());
        assert!(
            SnapshotImage::decode(&99u32.to_le_bytes()).is_err(),
            "bad version"
        );
        assert!(DdlOp::decode(&[]).is_err());
        assert!(DdlOp::decode(&[99]).is_err());
        // Trailing garbage after a valid op is corruption, not ignored.
        let mut bytes = DdlOp::DropIndex {
            table: 0,
            column: 0,
        }
        .encode();
        bytes.push(0);
        assert!(DdlOp::decode(&bytes).is_err());
        // Truncation anywhere inside a snapshot is corruption.
        let full = sample_snapshot().encode();
        for cut in 1..full.len() {
            assert!(SnapshotImage::decode(&full[..cut]).is_err(), "cut {cut}");
        }
    }
}
